//! Cross-set diversification (the paper's future-work item i): diversify
//! a candidate set `A` by its dominance relationships over *another*
//! set `B`, where `A` need not be Pareto-optimal.
//!
//! Scenario: a vendor shortlists 3 of its 12 draft products for launch.
//! A draft's dominated set is measured against the **competitor
//! catalogue** — Γ_B(a) = the rival products that `a` beats outright —
//! and the shortlist should beat *different parts* of the competition,
//! not pile onto the same rivals. Note the drafts themselves may
//! dominate each other; that's fine in the cross-set setting.
//!
//! ```sh
//! cargo run --release --example competitor_analysis
//! ```

use rand::{rngs::StdRng, Rng, SeedableRng};
use skydiver::core::{cross_gamma_sets, diversify_cross};
use skydiver::data::dominance::MinDominance;
use skydiver::Dataset;

fn main() {
    // Competitor catalogue: 5 000 rival products over (price, weight,
    // response time) — all minimised, anticorrelated-ish.
    let mut rng = StdRng::seed_from_u64(2026);
    let mut rivals = Dataset::new(3);
    for _ in 0..5000 {
        let budget: f64 = rng.gen_range(0.8..2.2);
        let a = rng.gen_range(0.1..1.0);
        let b = rng.gen_range(0.1..(budget - a).max(0.2));
        let c = (budget - a - b).clamp(0.1, 1.0);
        rivals.push(&[a, b, c]);
    }

    // Our 12 drafts: some aggressive in one dimension, some balanced,
    // a couple dominated by sibling drafts (allowed here!).
    let drafts = Dataset::from_rows(
        3,
        &[
            [0.15, 0.90, 0.90], // price killer
            [0.90, 0.15, 0.90], // ultralight
            [0.90, 0.90, 0.15], // speed demon
            [0.40, 0.40, 0.40], // balanced
            [0.45, 0.45, 0.45], // balanced (dominated by the above)
            [0.20, 0.50, 0.80],
            [0.80, 0.50, 0.20],
            [0.30, 0.30, 0.85],
            [0.85, 0.30, 0.30],
            [0.30, 0.85, 0.30],
            [0.60, 0.20, 0.60],
            [0.25, 0.70, 0.45],
        ],
    );

    let k = 3;
    let picks = diversify_cross(&drafts, &rivals, &MinDominance, k, 200, 7)
        .expect("cross-set shortlist");

    let gamma = cross_gamma_sets(&drafts, &rivals, &MinDominance);
    println!("competitors: {}   drafts: {}\n", rivals.len(), drafts.len());
    println!("draft    (price, weight, resp)   rivals beaten");
    for j in 0..drafts.len() {
        let p = drafts.point(j);
        let marker = if picks.contains(&j) { "=> " } else { "   " };
        println!(
            "{marker}#{j:<4} ({:.2}, {:.2}, {:.2})      {:>5}",
            p[0],
            p[1],
            p[2],
            gamma.score(j)
        );
    }
    println!("\nshortlist {:?} — pairwise overlap of beaten-rival sets:", picks);
    for (a, &i) in picks.iter().enumerate() {
        for &j in &picks[a + 1..] {
            println!(
                "  drafts #{i} vs #{j}: Jaccard distance {:.3}",
                gamma.jaccard_distance(i, j)
            );
        }
    }
    println!("\neach pick attacks a different region of the competitor catalogue.");
}
