//! The classic skyline motivation, end to end: hotels with price
//! (minimise), rating (maximise) and distance to the beach (minimise).
//!
//! Shows why diversification matters: the skyline alone is a wall of
//! near-duplicates, a max-coverage pick is redundant, and the SkyDiver
//! pick spans the cheap / luxury / close trade-offs.
//!
//! ```sh
//! cargo run --release --example hotel_finder
//! ```

use rand::{rngs::StdRng, Rng, SeedableRng};
use skydiver::core::{
    coverage_fraction, greedy_max_coverage, min_pairwise, ExactJaccardDistance, GammaSets,
};
use skydiver::data::dominance::MinDominance;
use skydiver::{Dataset, Preference, SkyDiver};

fn main() {
    // Synthesise 20 000 hotels: price correlates with rating (you get
    // what you pay for) and anticorrelates with beach distance.
    let mut rng = StdRng::seed_from_u64(2013);
    let mut hotels = Dataset::new(3);
    for _ in 0..20_000 {
        let quality: f64 = rng.gen();
        let price = 40.0 + 360.0 * quality + 60.0 * rng.gen::<f64>();
        let rating = (2.0 + 3.0 * quality + rng.gen::<f64>()).min(5.0);
        let beach_km = (8.0 * (1.0 - quality) * rng.gen::<f64>()).max(0.05);
        hotels.push(&[price, rating, beach_km]);
    }
    let prefs = vec![Preference::Min, Preference::Max, Preference::Min];

    let k = 4;
    let result = SkyDiver::new(k)
        .signature_size(100)
        .hash_seed(3)
        .run(&hotels, &prefs)
        .expect("diversified hotels");

    println!("{} hotels, {} on the skyline\n", hotels.len(), result.skyline.len());
    println!("SkyDiver's {k} most diverse skyline hotels:");
    print_hotels(&hotels, &result.selected);

    // Compare with the k-max-coverage pick (Lin et al.) on exact Γ sets.
    let canon = skydiver::core::canonicalise(&hotels, &prefs).unwrap();
    let gamma = GammaSets::build(canon.as_ref(), &MinDominance, &result.skyline);
    let cov_sel = greedy_max_coverage(&gamma, k).expect("coverage baseline");
    let cov_hotels: Vec<usize> = cov_sel.iter().map(|&p| result.skyline[p]).collect();
    println!("\nk-max-coverage would pick:");
    print_hotels(&hotels, &cov_hotels);

    let mut exact = ExactJaccardDistance::new(&gamma);
    let div_skydiver = min_pairwise(&mut exact, &result.selected_positions);
    let div_coverage = min_pairwise(&mut exact, &cov_sel);
    println!("\ndiversity (min pairwise Jaccard distance of dominated sets):");
    println!("  SkyDiver     {div_skydiver:.3}   coverage {:.1}%",
        100.0 * coverage_fraction(&gamma, &result.selected_positions));
    println!("  max-coverage {div_coverage:.3}   coverage {:.1}%",
        100.0 * coverage_fraction(&gamma, &cov_sel));
    println!("\nSkyDiver trades a little coverage for a far more varied short-list.");
}

fn print_hotels(hotels: &Dataset, sel: &[usize]) {
    for &i in sel {
        let h = hotels.point(i);
        println!(
            "  hotel #{i:<6} ${:>6.0}/night  {:.1}★  {:.2} km to beach",
            h[0], h[1], h[2]
        );
    }
}
