//! Max–min vs max–sum dispersion (paper Example 1 / Figure 2).
//!
//! SkyDiver formulates k-diversification as k-MMDP (max–min) rather than
//! k-MSDP (max–sum) because max–sum "compensates" a close pair with long
//! edges, while max–min never tolerates one. This demo solves both
//! exactly on a small 2-D instance and prints the two solutions.
//!
//! ```sh
//! cargo run --release --example dispersion_demo
//! ```

use skydiver::core::{brute_force_mmdp, brute_force_msdp, DiversityDistance};

/// Euclidean distances over fixed 2-D points.
struct Euclid(Vec<(f64, f64)>);

impl DiversityDistance for Euclid {
    fn num_points(&self) -> usize {
        self.0.len()
    }
    fn distance(&mut self, i: usize, j: usize) -> f64 {
        let (dx, dy) = (self.0[i].0 - self.0[j].0, self.0[i].1 - self.0[j].1);
        (dx * dx + dy * dy).sqrt()
    }
}

fn main() {
    // Figure-2-like layout: a and b far apart, c near a (vertically
    // offset, so its long edge to b inflates the sum), d well-separated
    // from everything.
    let labels = ["a", "b", "c", "d"];
    let pts = vec![(0.0, 0.0), (10.0, 0.0), (0.0, 3.0), (5.0, 3.0)];
    let k = 3;

    let mut d = Euclid(pts.clone());
    let (mmdp, mmdp_val) = brute_force_mmdp(&mut d, k, 1 << 20).expect("tiny instance");
    let (msdp, msdp_val) = brute_force_msdp(&mut d, k, 1 << 20).expect("tiny instance");

    println!("points:");
    for (l, (x, y)) in labels.iter().zip(&pts) {
        println!("  {l} = ({x:.1}, {y:.1})");
    }
    let names = |sel: &[usize]| {
        sel.iter().map(|&i| labels[i]).collect::<Vec<_>>().join(", ")
    };
    println!("\n{k}-MMDP (max-min, SkyDiver's objective): {{{}}}", names(&mmdp));
    println!("   minimum pairwise distance = {mmdp_val:.2}");
    println!("{k}-MSDP (max-sum):                       {{{}}}", names(&msdp));
    println!("   sum of pairwise distances = {msdp_val:.2}");
    println!(
        "\nmax-sum keeps the close pair (a, c) because the long edges\n\
         compensate; max-min replaces c with d and spreads out — the\n\
         reason SkyDiver optimises k-MMDP (and gets a 2-approximation\n\
         instead of max-sum's 4-approximation)."
    );
}
