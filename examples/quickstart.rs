//! Quickstart: generate a dataset, diversify its skyline, inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use skydiver::data::generators;
use skydiver::{Preference, SkyDiver};

fn main() {
    // 100 K anticorrelated points in 3-D: good products are good at one
    // thing and bad at another, so the skyline is large.
    let data = generators::anticorrelated(100_000, 3, 42);

    // Ask for the 5 most diverse skyline points. MinHash signatures of
    // 100 slots (the paper's default) stand in for the exact dominated
    // sets, so the whole run is one pass over the data plus an O(k²m)
    // greedy selection.
    let result = SkyDiver::new(5)
        .signature_size(100)
        .hash_seed(7)
        .run(&data, &Preference::all_min(3))
        .expect("k=5 diverse skyline points");

    println!(
        "skyline has {} points; inspecting all of them is impractical",
        result.skyline.len()
    );
    println!("the 5 most diverse skyline points:");
    for (&idx, &pos) in result.selected.iter().zip(&result.selected_positions) {
        let p = data.point(idx);
        println!(
            "  point #{idx:<7} coords ({:.3}, {:.3}, {:.3})  dominates {:>6} points",
            p[0], p[1], p[2], result.scores[pos]
        );
    }
    println!(
        "fingerprinting took {:.1} ms, selection {:.3} ms, {} bytes of signatures",
        result.fingerprint_ms, result.selection_ms, result.memory_bytes
    );
}
