//! Continuous diversification over a stream of arriving offers — the
//! dynamic setting of the paper's reference [13] (Drosou & Pitoura),
//! built from SkyDiver's pieces: arriving skyline points carry MinHash
//! signatures, and a `DynamicDiversifier` maintains the k most diverse
//! ones with interchange updates instead of recomputation.
//!
//! ```sh
//! cargo run --release --example continuous_monitoring
//! ```

use skydiver::core::dynamic::DynamicDiversifier;
use skydiver::core::{sig_gen_if, ExactJaccardDistance, GammaSets, min_pairwise};
use skydiver::data::dominance::MinDominance;
use skydiver::data::generators;
use skydiver::skyline::sfs;
use skydiver::HashFamily;

fn main() {
    // A day of marketplace offers, in batches of 10 000.
    let k = 4;
    let t = 128;
    let batches = 6;
    let per_batch = 10_000;

    let all = generators::anticorrelated(batches * per_batch, 3, 99);
    println!("streaming {batches} batches × {per_batch} offers, maintaining the {k} most diverse\n");

    let mut diversifier = DynamicDiversifier::new(k, t);
    let fam = HashFamily::new(t, 7);

    let mut seen = skydiver::Dataset::new(3);
    let mut skyline_ids: Vec<usize> = Vec::new(); // dataset ids per inserted column

    for b in 0..batches {
        // Ingest the batch.
        for i in 0..per_batch {
            seen.push(all.point(b * per_batch + i));
        }
        // Recompute the skyline of everything seen and fingerprint the
        // *new* skyline points (in production the skyline itself would
        // also be maintained incrementally).
        let skyline = sfs(&seen, &MinDominance);
        let out = sig_gen_if(&seen, &MinDominance, &skyline, &fam);
        // Retire archived points that newer offers have dominated,
        // refresh the signatures of survivors (their dominated sets
        // grew), and insert the newly arrived skyline points.
        for (col, &id) in skyline_ids.iter().enumerate() {
            match skyline.iter().position(|&s| s == id) {
                None => diversifier.remove(col),
                Some(pos) => {
                    diversifier.update(col, out.matrix.column(pos).to_vec(), out.scores[pos])
                }
            }
        }
        for (pos, &id) in skyline.iter().enumerate() {
            if !skyline_ids.contains(&id) {
                skyline_ids.push(id);
                diversifier.insert(out.matrix.column(pos).to_vec(), out.scores[pos]);
            }
        }
        diversifier.reselect();
        println!(
            "after batch {}: {:>6} offers, {:>4} skyline, archive {:>4}, est. diversity {:.3}",
            b + 1,
            seen.len(),
            skyline.len(),
            diversifier.archive_len(),
            diversifier.min_diversity()
        );
    }

    // Final report: the maintained picks, re-scored exactly.
    let picks: Vec<usize> = diversifier
        .current()
        .iter()
        .map(|&c| skyline_ids[c])
        .collect();
    println!("\nmaintained selection:");
    for &id in &picks {
        let p = seen.point(id);
        println!("  offer #{id:<6} ({:.3}, {:.3}, {:.3})", p[0], p[1], p[2]);
    }
    let final_sky = sfs(&seen, &MinDominance);
    let positions: Vec<usize> = picks
        .iter()
        .map(|id| final_sky.iter().position(|s| s == id).unwrap_or(usize::MAX))
        .collect();
    let still_skyline = positions.iter().filter(|&&p| p != usize::MAX).count();
    println!("\n{still_skyline}/{k} picks are still on the final skyline");
    if still_skyline == k {
        let gamma = GammaSets::build(&seen, &MinDominance, &final_sky);
        let mut exact = ExactJaccardDistance::new(&gamma);
        println!(
            "exact diversity of the maintained set: {:.3}",
            min_pairwise(&mut exact, &positions)
        );
    }
}
