//! Diversification with nothing but a dominance graph (paper Fig. 1).
//!
//! Scenario: a search engine logged which result users clicked when
//! shown alternatives — "a user preferred some documents over the rest,
//! without explicitly knowing why". There are no coordinates, no index,
//! no Lp distance; only the bipartite relation "document X was chosen
//! over document Y". SkyDiver diversifies straight from that relation.
//!
//! ```sh
//! cargo run --release --example dominance_graph
//! ```

use skydiver::{DominanceGraph, SkyDiver};

fn main() {
    // The paper's Figure 1: skyline documents a–d over dominated
    // documents p1..p11.
    let names = ["a", "b", "c", "d"];
    let graph = DominanceGraph::from_edges(
        11,
        vec![
            vec![0],                       // a: fresh topic, one win
            vec![0, 1, 2, 3, 4, 5],        // b: broad
            vec![3, 4, 5, 6, 7, 8, 9, 10], // c: broadest
            vec![6, 7, 8, 9],              // d: subset of c
        ],
    );

    let result = SkyDiver::new(2)
        .signature_size(256)
        .run_graph(&graph)
        .expect("2 diverse documents");

    println!("dominance graph: 4 skyline documents over 11 dominated ones");
    for (j, &name) in names.iter().enumerate() {
        println!("  {name}: dominates {} documents", graph.score(j));
    }
    let picked: Vec<&str> = result.selected.iter().map(|&j| names[j]).collect();
    println!("\nSkyDiver picks ({}, {}):", picked[0], picked[1]);
    println!("  {} covers the bulk of the corpus;", picked[0]);
    println!("  {} contributes information no other document has.", picked[1]);

    // Max-coverage would have picked (c, b) instead — highly redundant.
    let gamma = graph.gamma_sets();
    let cov = skydiver::core::greedy_max_coverage(&gamma, 2).unwrap();
    println!(
        "\nmax-coverage would pick ({}, {}), whose dominated sets overlap: Jd = {:.2}",
        names[cov[0]],
        names[cov[1]],
        gamma.jaccard_distance(cov[0], cov[1])
    );
    println!(
        "SkyDiver's pair is fully disjoint: Jd = {:.2}",
        gamma.jaccard_distance(result.selected[0], result.selected[1])
    );
}
