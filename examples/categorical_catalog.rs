//! Diversifying a skyline over categorical, partially-ordered
//! attributes — the setting where Lp-norm techniques are "infeasible or
//! even inapplicable" (paper §2) but SkyDiver works untouched.
//!
//! Scenario: a laptop catalogue with three categorical attributes:
//! * CPU tier — total order (flagship ≺ performance ≺ mainstream ≺ budget),
//! * build quality — a *diamond* partial order: premium beats both
//!   "rugged" and "slim", which are incomparable, and both beat basic,
//! * warranty — total order (3y ≺ 2y ≺ 1y).
//!
//! ```sh
//! cargo run --release --example categorical_catalog
//! ```

use rand::{rngs::StdRng, Rng, SeedableRng};
use skydiver::core::{
    min_pairwise, select_diverse, ExactJaccardDistance, SeedRule, TieBreak,
};
use skydiver::DominanceGraph;
use skydiver::data::categorical::{CategoricalDominance, PartialOrderAttr};
use skydiver::data::DominanceOrd;
use skydiver::skyline::bnl_generic;

fn main() {
    // Attribute domains (value 0 is always best).
    let cpu = PartialOrderAttr::total_order(4);
    let mut build = PartialOrderAttr::new(4); // 0=premium 1=rugged 2=slim 3=basic
    build.add_preference(0, 1);
    build.add_preference(0, 2);
    build.add_preference(1, 3);
    build.add_preference(2, 3);
    let build = build.close().expect("diamond order is acyclic");
    let warranty = PartialOrderAttr::total_order(3);
    let ord = CategoricalDominance::new(vec![cpu, build, warranty]);

    // A catalogue of 5 000 laptops. Real catalogues are anticorrelated:
    // no SKU is top-tier on everything, so reject configurations whose
    // total "goodness" exceeds the build budget. This leaves a genuine
    // antichain frontier instead of one dominating super-product.
    let mut rng = StdRng::seed_from_u64(99);
    let mut laptops: Vec<Vec<u32>> = Vec::with_capacity(5000);
    while laptops.len() < 5000 {
        let l = vec![
            rng.gen_range(0..4u32),
            rng.gen_range(0..4u32),
            rng.gen_range(0..3u32),
        ];
        if l.iter().sum::<u32>() >= 4 {
            laptops.push(l);
        }
    }

    // Skyline over the partial orders (generic BNL — no index possible).
    let skyline = bnl_generic(&laptops, &ord);
    println!("{} laptops, {} skyline configurations", laptops.len(), skyline.len());

    // Dominated sets come straight from the dominance relation; feed
    // them to SkyDiver as a dominance graph.
    let mut graph = DominanceGraph::new(laptops.len());
    for &s in &skyline {
        let dominated: Vec<usize> = laptops
            .iter()
            .enumerate()
            .filter(|(_, q)| ord.dominates(&laptops[s], q))
            .map(|(i, _)| i)
            .collect();
        graph.add_skyline_node(dominated);
    }

    // Exact selection (the skyline is small enough here).
    let gamma = graph.gamma_sets();
    let scores = graph.scores();
    let mut dist = ExactJaccardDistance::new(&gamma);
    let k = 3.min(skyline.len());
    let sel = select_diverse(&mut dist, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
        .expect("diverse categorical skyline");

    let cpu_names = ["flagship", "performance", "mainstream", "budget"];
    let build_names = ["premium", "rugged", "slim", "basic"];
    let warranty_names = ["3y", "2y", "1y"];
    println!("\nthe {k} most diverse skyline configurations:");
    for &pos in &sel {
        let l = &laptops[skyline[pos]];
        println!(
            "  {} CPU, {} build, {} warranty (dominates {} laptops)",
            cpu_names[l[0] as usize],
            build_names[l[1] as usize],
            warranty_names[l[2] as usize],
            scores[pos]
        );
    }
    println!(
        "\nmin pairwise Jaccard distance of the pick: {:.3}",
        min_pairwise(&mut dist, &sel)
    );
}
