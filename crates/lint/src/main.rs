//! The `skydiver-lint` binary: lints a tree and exits non-zero on any
//! finding, so CI can gate on it.
//!
//! ```text
//! skydiver-lint [--root DIR] [--config FILE] [--rules R1,R2] [--json] \
//!               [--strict-allows] [--github] [--list-rules]
//! ```
//!
//! `--strict-allows` (on in CI) additionally reports reasoned allow
//! comments that suppressed nothing. `--github` emits one
//! `::error file=…` workflow annotation per finding alongside the
//! normal rendering, so findings surface inline on the PR diff.
//!
//! Exit codes: `0` clean, `1` diagnostics reported, `2` usage or
//! configuration error.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use skydiver_lint::config::Config;
use skydiver_lint::rules::all_rules;

const USAGE: &str = "usage: skydiver-lint [--root DIR] [--config FILE] [--rules R1,R2,...] \
                     [--json] [--strict-allows] [--github] [--list-rules]\n\
                     \n\
                     Checks the SkyDiver workspace invariants (determinism, cancellation,\n\
                     lock discipline, panic-freedom, SAFETY comments, STATS wire spec,\n\
                     lock order, event-loop blocking, wire-verb conformance).\n\
                     Scope lives in lint.toml at the root; exit 1 on any diagnostic.\n\
                     --strict-allows also reports reasoned allows that suppress nothing;\n\
                     --github emits ::error workflow annotations for CI.";

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    rules: Option<Vec<String>>,
    json: bool,
    strict_allows: bool,
    github: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        rules: None,
        json: false,
        strict_allows: false,
        github: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--rules" => {
                let list = it.next().ok_or("--rules needs a comma-separated list")?;
                args.rules = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--json" => args.json = true,
            "--strict-allows" => args.strict_allows = true,
            "--github" => args.github = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("skydiver-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in all_rules() {
            println!("{}  {}", r.id(), r.summary());
            println!("    fix: {}", r.fix_hint());
        }
        return ExitCode::SUCCESS;
    }
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let mut cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("skydiver-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(rules) = args.rules {
        for r in &rules {
            if !skydiver_lint::config::ALL_RULES.contains(&r.as_str()) {
                eprintln!("skydiver-lint: unknown rule id `{r}`");
                return ExitCode::from(2);
            }
        }
        cfg.rules = rules;
    }
    if args.strict_allows {
        cfg.strict_allows = true;
    }
    let report = match skydiver_lint::run(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("skydiver-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.github {
        for d in &report.diagnostics {
            println!(
                "::error file={},line={},title={}::{}",
                annotation_escape(&d.file),
                d.line,
                annotation_escape(&d.rule),
                annotation_escape(&d.message)
            );
        }
    }
    if args.json {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
        println!(
            "skydiver-lint: {} file(s), rules [{}], {} diagnostic(s)",
            report.files_checked,
            report.rules_run.join(", "),
            report.diagnostics.len()
        );
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Escapes a value for a GitHub `::error` workflow command: `%`, CR
/// and LF are the command syntax's only metacharacters.
fn annotation_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}
