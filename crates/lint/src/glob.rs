//! A small glob matcher over forward-slash relative paths.
//!
//! Supported syntax: `*` (any run of non-separator characters), `?`
//! (one non-separator character) and `**` (any run of characters,
//! separators included — i.e. zero or more path segments). This is the
//! subset `lint.toml` scopes use; anything fancier (character classes,
//! braces) is out of scope on purpose.

/// Whether `path` (forward-slash relative) matches `pattern`.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    matches(pattern.as_bytes(), path.as_bytes())
}

fn matches(p: &[u8], s: &[u8]) -> bool {
    if p.is_empty() {
        return s.is_empty();
    }
    match p[0] {
        b'*' => {
            if p.len() >= 2 && p[1] == b'*' {
                // `**`: swallow any prefix (separators included). A
                // following `/` may match zero segments.
                let rest = if p.len() >= 3 && p[2] == b'/' { &p[3..] } else { &p[2..] };
                (0..=s.len()).any(|i| matches(rest, &s[i..]))
                    || (p.len() >= 3 && p[2] == b'/' && matches(&p[2..], s))
            } else {
                // `*`: any run of non-separator bytes.
                (0..=s.len())
                    .take_while(|&i| i == 0 || s[i - 1] != b'/')
                    .any(|i| matches(&p[1..], &s[i..]))
            }
        }
        b'?' => !s.is_empty() && s[0] != b'/' && matches(&p[1..], &s[1..]),
        c => !s.is_empty() && s[0] == c && matches(&p[1..], &s[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::glob_match;

    #[test]
    fn literals_and_stars() {
        assert!(glob_match("a/b.rs", "a/b.rs"));
        assert!(glob_match("a/*.rs", "a/b.rs"));
        assert!(!glob_match("a/*.rs", "a/b/c.rs"));
        assert!(glob_match("a/?.rs", "a/b.rs"));
        assert!(!glob_match("a/?.rs", "a/bb.rs"));
    }

    #[test]
    fn double_star_spans_segments() {
        assert!(glob_match("crates/core/src/**", "crates/core/src/minhash/mod.rs"));
        assert!(glob_match("crates/*/src/**", "crates/serve/src/server.rs"));
        assert!(glob_match("**/*.rs", "deep/tree/file.rs"));
        assert!(glob_match("**/*.rs", "file.rs"), "`**/` matches zero segments");
        assert!(!glob_match("crates/core/src/**", "crates/data/src/io.rs"));
    }

    #[test]
    fn exact_file_patterns() {
        assert!(glob_match("crates/core/src/dispersion.rs", "crates/core/src/dispersion.rs"));
        assert!(!glob_match("crates/core/src/dispersion.rs", "crates/core/src/lsh.rs"));
    }
}
