//! The workspace semantic model: a symbol table of `fn` items, an
//! approximate intra-workspace call graph, and a lock-site model with
//! guard live ranges. R7 (lock order), R8 (no blocking in the event
//! loop) and R9 (verb conformance) reason over this instead of raw
//! tokens.
//!
//! This is *name resolution by heuristic*, not rustc. The documented
//! approximations (DESIGN.md §17):
//!
//! * A call resolves only when its target is unambiguous: a `self.m()`
//!   receiver resolves within the caller's own `impl` block first; a
//!   `Type::f()` path resolves against `impl Type`; anything else
//!   resolves only if exactly one workspace `fn` bears the name
//!   (preferring a same-file match when several exist).
//! * Ubiquitous trait/std method names (`clone`, `next`, `drop`, …)
//!   are never resolved — treating every `.len()` as a call into the
//!   one local `fn len` would wire the graph to noise.
//! * No trait-object or closure resolution. A call through `dyn
//!   Trait`/`fn()` is invisible; rules built on the graph prefer
//!   false negatives over false positives.
//! * Lock identity is textual: the last field name of the receiver
//!   chain before a no-argument `.lock()`/`.read()`/`.write()`,
//!   qualified by the `impl` type when the receiver is `self.field`
//!   (`Registry::cache`). Two non-`self` locks sharing a field name
//!   collapse into one node — conservative for cycle detection.
//! * A guard's live range is the `let` binding's range (declaration to
//!   `drop(name)` or scope end, as R4 computes it); a guard never
//!   bound by a `let` lives to the end of its statement.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// One `fn` item (free or inherent/trait-impl method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the defining file in the build's file slice.
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The `impl` type the item sits in, if any.
    pub impl_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Byte range of the body including braces; `(0, 0)` for bodiless
    /// trait signatures.
    pub body: (usize, usize),
}

/// One resolved call edge out of a function.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Index of the callee in [`Graph::fns`].
    pub callee: usize,
    /// Byte offset of the call site (the callee name token).
    pub byte: usize,
    /// 1-based line of the call site.
    pub line: u32,
}

/// One guard acquisition: a no-argument `.lock()`/`.read()`/`.write()`.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Index of the file in the build's file slice.
    pub file: usize,
    /// Index of the enclosing function in [`Graph::fns`], if any.
    pub fn_idx: Option<usize>,
    /// The lock's node name (`Type::field` for `self.field`, else the
    /// last receiver ident).
    pub name: String,
    /// The full receiver chain text (`self.cache`), for self-edge
    /// precision.
    pub chain: String,
    /// Whether the receiver chain contains an index expression —
    /// distinct elements of one collection, never a self-deadlock.
    pub indexed: bool,
    /// Byte offset of the taker ident (`lock`/`read`/`write`).
    pub byte: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Byte range over which the guard is live.
    pub live: (usize, usize),
}

/// The workspace model R7–R9 consume.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every `fn` item, in (file, byte) order.
    pub fns: Vec<FnItem>,
    /// Function indices by name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Resolved call edges, indexed by caller (parallel to `fns`).
    pub calls: Vec<Vec<CallEdge>>,
    /// Every lock acquisition outside test code.
    pub locks: Vec<LockSite>,
}

/// Method names never resolved as workspace calls: trait entry points
/// and std vocabulary that would wire the graph to noise.
const SKIP_CALLS: [&str; 63] = [
    "drop", "clone", "fmt", "default", "from", "into", "try_from", "try_into", "eq", "ne",
    "cmp", "partial_cmp", "hash", "next", "len", "is_empty", "iter", "iter_mut", "into_iter",
    "get", "get_mut", "insert", "remove", "push", "pop", "contains", "contains_key", "as_ref",
    "as_mut", "as_str", "as_bytes", "to_string", "to_owned", "to_vec", "unwrap", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "expect", "map", "map_err", "and_then", "or_else",
    "ok", "ok_or", "ok_or_else", "filter", "collect", "extend", "clear", "take", "replace",
    "write", "read", "lock", "join", "new", "send", "min", "max", "abs", "parse", "spawn",
];

/// Atomic intrinsics that collide with workspace `fn` names (`load`,
/// `store`, …); an `Ordering` argument identifies the std atomic call.
const ATOMIC_METHODS: [&str; 11] = [
    "load", "store", "swap", "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange", "compare_exchange_weak", "fetch_update",
];

/// Keywords that can precede `(` without being calls.
const KEYWORDS: [&str; 18] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "fn", "let", "use",
    "pub", "impl", "mod", "where", "unsafe", "move",
];

const GUARD_TAKERS: [&str; 3] = ["lock", "read", "write"];

impl Graph {
    /// Builds the model over the parsed files, in slice order.
    pub fn build(files: &[SourceFile]) -> Graph {
        let mut g = Graph::default();
        for (fi, f) in files.iter().enumerate() {
            scan_fns(f, fi, &mut g.fns);
        }
        for (i, item) in g.fns.iter().enumerate() {
            g.by_name.entry(item.name.clone()).or_default().push(i);
        }
        g.calls = vec![Vec::new(); g.fns.len()];
        for (fi, f) in files.iter().enumerate() {
            scan_calls(f, fi, &mut g);
            scan_locks(f, fi, &mut g);
        }
        g
    }

    /// Index of the innermost `fn` whose body contains `byte` in `file`.
    pub fn enclosing_fn(&self, file: usize, byte: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, it)| it.file == file && it.body.0 < byte && byte < it.body.1)
            .min_by_key(|(_, it)| it.body.1 - it.body.0)
            .map(|(i, _)| i)
    }

    /// Functions reachable from `roots` (inclusive), with the BFS
    /// parent of each reached node for witness paths.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(r) {
                v.insert(None);
                queue.push(r);
            }
        }
        let mut qi = 0usize;
        while qi < queue.len() {
            let u = queue[qi];
            qi += 1;
            for e in &self.calls[u] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e.callee) {
                    v.insert(Some(u));
                    queue.push(e.callee);
                }
            }
        }
        parent
    }

    /// The `entry -> … -> target` name chain out of a BFS parent map.
    pub fn path_names(&self, parent: &BTreeMap<usize, Option<usize>>, target: usize) -> Vec<String> {
        let mut chain = vec![self.fns[target].name.clone()];
        let mut cur = target;
        while let Some(Some(p)) = parent.get(&cur) {
            chain.push(self.fns[*p].name.clone());
            cur = *p;
        }
        chain.reverse();
        chain
    }
}

/// Collects `fn` items and their `impl` context from one file.
#[allow(clippy::needless_range_loop)]
fn scan_fns(f: &SourceFile, fi: usize, out: &mut Vec<FnItem>) {
    // `impl` block extents, innermost-last, found first so methods can
    // be attributed.
    let impls = scan_impls(f);
    let code = &f.code;
    for c in 0..code.len() {
        if ident_at(f, c) != Some("fn") {
            continue;
        }
        let Some(name) = ident_at(f, c + 1) else { continue };
        let tok = f.toks[code[c]];
        // Body: first `{` at paren/bracket depth 0 before a `;` (a `;`
        // first means a bodiless trait signature). `->` makes naive
        // angle tracking wrong, so angles are ignored: no `{` appears
        // inside the generics/return type of this codebase's subset.
        let mut depth = 0i32;
        let mut body = (0usize, 0usize);
        for d in (c + 2)..code.len() {
            let ti = code[d];
            if f.toks[ti].kind == TokKind::Punct {
                match f.text.as_bytes()[f.toks[ti].start] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => {
                        if let Some(close) = brace_close(f, d) {
                            body = (f.toks[ti].start, f.toks[f.code[close]].end);
                        }
                        break;
                    }
                    b';' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        let impl_ty = impls
            .iter()
            .filter(|(_, s, e)| *s < tok.start && tok.start < *e)
            .min_by_key(|(_, s, e)| e - s)
            .map(|(ty, _, _)| ty.clone());
        out.push(FnItem { file: fi, name: name.to_string(), impl_ty, line: tok.line, body });
    }
}

/// `(type name, body byte range)` of each `impl` block.
#[allow(clippy::needless_range_loop)]
fn scan_impls(f: &SourceFile) -> Vec<(String, usize, usize)> {
    let mut impls = Vec::new();
    let code = &f.code;
    for c in 0..code.len() {
        if ident_at(f, c) != Some("impl") {
            continue;
        }
        // `-> impl Trait` / `impl Trait` in argument position is not an
        // item: an item-position `impl` follows `}`/`;`/`]` or file
        // start or `unsafe`.
        if c > 0 {
            let prev = f.toks[code[c - 1]];
            let ok = match prev.kind {
                TokKind::Punct => matches!(f.text.as_bytes()[prev.start], b'}' | b';' | b']'),
                TokKind::Ident => f.text_of(&prev) == "unsafe",
                _ => false,
            };
            if !ok {
                continue;
            }
        }
        // Header idents at angle depth 0 up to the `{`; `for` splits a
        // trait impl — the type is the segment after it.
        let mut angle = 0i32;
        let mut before: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut open = None;
        for d in (c + 1)..code.len() {
            let ti = code[d];
            let t = f.toks[ti];
            match t.kind {
                TokKind::Punct => match f.text.as_bytes()[t.start] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    b'{' if angle <= 0 => {
                        open = Some(d);
                        break;
                    }
                    b';' => break,
                    _ => {}
                },
                TokKind::Ident if angle == 0 => {
                    let name = f.text_of(&t).to_string();
                    if name == "for" {
                        saw_for = true;
                    } else if saw_for {
                        after_for.push(name);
                    } else {
                        before.push(name);
                    }
                }
                _ => {}
            }
        }
        let (Some(open), Some(close)) = (open, open.and_then(|o| brace_close(f, o))) else {
            continue;
        };
        let segs = if saw_for { &after_for } else { &before };
        if let Some(ty) = segs.last() {
            impls.push((
                ty.clone(),
                f.toks[code[open]].start,
                f.toks[f.code[close]].end,
            ));
        }
    }
    impls
}

/// Resolves call sites in one file against the symbol table.
#[allow(clippy::needless_range_loop)]
fn scan_calls(f: &SourceFile, fi: usize, g: &mut Graph) {
    let code = &f.code;
    for c in 0..code.len() {
        let Some(name) = ident_at(f, c) else { continue };
        if !punct_at(f, c + 1, '(') {
            continue;
        }
        if KEYWORDS.contains(&name) || SKIP_CALLS.contains(&name) {
            continue;
        }
        let tok = f.toks[code[c]];
        if f.in_test(tok.start) {
            continue;
        }
        // `name!(…)` is a macro, `fn name(` a definition.
        if c > 0 && ident_at(f, c - 1) == Some("fn") {
            continue;
        }
        let Some(caller) = g.enclosing_fn(fi, tok.start) else { continue };
        let is_method = c > 0 && punct_at(f, c - 1, '.');
        if is_method && ATOMIC_METHODS.contains(&name) && has_ordering_arg(f, c + 1) {
            continue;
        }
        let qualifier = if c >= 2 && punct_at(f, c - 1, ':') && punct_at(f, c - 2, ':') {
            ident_at(f, c.wrapping_sub(3)).map(|s| s.to_string())
        } else {
            None
        };
        let self_recv = is_method && ident_at(f, c.wrapping_sub(2)) == Some("self");
        let Some(callee) = resolve(g, fi, caller, name, is_method, self_recv, qualifier) else {
            continue;
        };
        g.calls[caller].push(CallEdge { callee, byte: tok.start, line: tok.line });
    }
}

/// Resolution order: `Self`/`self` → caller's impl; `Type::` → that
/// impl; then unique name workspace-wide (same file breaks ties).
fn resolve(
    g: &Graph,
    fi: usize,
    caller: usize,
    name: &str,
    is_method: bool,
    self_recv: bool,
    qualifier: Option<String>,
) -> Option<usize> {
    let cands = g.by_name.get(name)?;
    let caller_ty = g.fns[caller].impl_ty.as_deref();
    if self_recv {
        if let Some(ty) = caller_ty {
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| g.fns[i].file == fi && g.fns[i].impl_ty.as_deref() == Some(ty))
                .collect();
            if same.len() == 1 {
                return Some(same[0]);
            }
        }
    }
    if let Some(q) = &qualifier {
        let want = if q == "Self" { caller_ty.map(|s| s.to_string()) } else { Some(q.clone()) };
        if let Some(want) = want {
            let hits: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| g.fns[i].impl_ty.as_deref() == Some(want.as_str()))
                .collect();
            if hits.len() == 1 {
                return Some(hits[0]);
            }
            if hits.is_empty() && is_qualifier_module_like(q) {
                // `module::free_fn(…)` — fall through to the unique
                // rule below.
            } else if hits.is_empty() {
                return None; // a foreign type's method — not ours
            }
        }
    }
    // A method call on a non-self receiver stays resolvable by unique
    // name: that is exactly the `store.flush()` case the event-loop
    // rule exists for.
    if cands.len() == 1 {
        let target = cands[0];
        if target == caller {
            return None; // self-recursion adds nothing to reachability
        }
        return Some(target);
    }
    let same_file: Vec<usize> = cands.iter().copied().filter(|&i| g.fns[i].file == fi).collect();
    if same_file.len() == 1 && same_file[0] != caller {
        return Some(same_file[0]);
    }
    let _ = is_method;
    None
}

fn is_qualifier_module_like(q: &str) -> bool {
    q.chars().next().is_some_and(|c| c.is_lowercase())
}

/// Whether the argument list opening at code index `open` mentions
/// `Ordering` — the signature of a std atomic operation.
fn has_ordering_arg(f: &SourceFile, open: usize) -> bool {
    let mut depth = 0i32;
    for d in open..f.code.len() {
        if punct_at(f, d, '(') {
            depth += 1;
        } else if punct_at(f, d, ')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if ident_at(f, d) == Some("Ordering") {
            return true;
        }
    }
    false
}

/// Collects guard acquisitions and their live ranges from one file.
#[allow(clippy::needless_range_loop)]
fn scan_locks(f: &SourceFile, fi: usize, g: &mut Graph) {
    let code = &f.code;
    for c in 2..code.len() {
        let Some(name) = ident_at(f, c) else { continue };
        if !GUARD_TAKERS.contains(&name) || !punct_at(f, c - 1, '.') {
            continue;
        }
        // No-argument call: `(` directly followed by `)`.
        if !(punct_at(f, c + 1, '(') && punct_at(f, c + 2, ')')) {
            continue;
        }
        let tok = f.toks[code[c]];
        if f.in_test(tok.start) {
            continue;
        }
        let (chain, indexed) = receiver_chain(f, c - 1);
        let Some(last) = chain.rsplit('.').next().filter(|s| !s.is_empty()) else {
            continue;
        };
        let fn_idx = g.enclosing_fn(fi, tok.start);
        let node = if chain.starts_with("self.") {
            match fn_idx.and_then(|i| g.fns[i].impl_ty.clone()) {
                Some(ty) => format!("{ty}::{last}"),
                None => last.to_string(),
            }
        } else {
            last.to_string()
        };
        let live = live_range(f, tok.start);
        g.locks.push(LockSite {
            file: fi,
            fn_idx,
            name: node,
            chain,
            indexed,
            byte: tok.start,
            line: tok.line,
            live,
        });
    }
}

/// Walks the receiver chain backwards from the `.` before the taker:
/// `self.cache` from `self.cache.lock()`, `partials` (indexed) from
/// `partials[i].lock()`.
fn receiver_chain(f: &SourceFile, dot: usize) -> (String, bool) {
    let mut parts: Vec<String> = Vec::new();
    let mut indexed = false;
    let mut c = dot; // points at the `.`
    loop {
        if c == 0 {
            break;
        }
        let prev = c - 1;
        if punct_at(f, prev, ']') {
            indexed = true;
            // Skip the whole `[…]` group.
            let mut depth = 0i32;
            let mut d = prev;
            loop {
                if punct_at(f, d, ']') {
                    depth += 1;
                } else if punct_at(f, d, '[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if d == 0 {
                    return (parts_join(&parts), indexed);
                }
                d -= 1;
            }
            c = d;
            continue;
        }
        if let Some(id) = ident_at(f, prev) {
            parts.push(id.to_string());
            // Another `.` continues the chain.
            if prev >= 1 && punct_at(f, prev - 1, '.') {
                c = prev - 1;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    (parts.join("."), indexed)
}

fn parts_join(parts: &[String]) -> String {
    let mut p = parts.to_vec();
    p.reverse();
    p.join(".")
}

/// The guard's live byte range: the enclosing `let`'s (R4 semantics —
/// declaration end to `drop(name)` or scope end) when the taker sits
/// at the top level of an initializer, else site to statement end.
fn live_range(f: &SourceFile, site: usize) -> (usize, usize) {
    let binding = f
        .lets
        .iter()
        .filter(|l| l.init.0 <= site && site < l.init.1 && top_level_in(f, l.init.0, site))
        .min_by_key(|l| l.init.1 - l.init.0);
    if let Some(l) = binding {
        return (l.decl_end, drop_point(f, &l.name, l.decl_end, l.scope_end));
    }
    (site, stmt_end(f, site))
}

/// Whether no `{ … }` block opens between `from` and `site` — i.e. the
/// site is at the top level of the initializer, so the guard reaches
/// the binding's value position instead of dying in an inner block.
#[allow(clippy::needless_range_loop)]
fn top_level_in(f: &SourceFile, from: usize, site: usize) -> bool {
    let mut depth = 0i32;
    for &ti in &f.code {
        let t = f.toks[ti];
        if t.start < from || t.start >= site {
            continue;
        }
        if t.kind == TokKind::Punct {
            match f.text.as_bytes()[t.start] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
    }
    depth <= 0
}

/// Byte offset where `drop(name)` releases the guard, else `scope_end`.
#[allow(clippy::needless_range_loop)]
fn drop_point(f: &SourceFile, name: &str, from: usize, scope_end: usize) -> usize {
    let code = &f.code;
    for c in 0..code.len() {
        let tok = f.toks[code[c]];
        if tok.start < from || tok.start >= scope_end {
            continue;
        }
        if ident_at(f, c) == Some("drop")
            && punct_at(f, c + 1, '(')
            && ident_at(f, c + 2) == Some(name)
            && punct_at(f, c + 3, ')')
        {
            return tok.start;
        }
    }
    scope_end
}

/// First `;` at brace/paren depth ≤ 0 after `site` (a temporary guard
/// dies at its statement's end; a guard feeding a block expression is
/// over-approximated to the next statement boundary).
fn stmt_end(f: &SourceFile, site: usize) -> usize {
    let mut depth = 0i32;
    for &ti in &f.code {
        let t = f.toks[ti];
        if t.start <= site {
            continue;
        }
        if t.kind == TokKind::Punct {
            match f.text.as_bytes()[t.start] {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => depth -= 1,
                b';' if depth <= 0 => return t.start,
                _ => {}
            }
            if depth < 0 {
                return t.start; // enclosing block closed first
            }
        }
    }
    f.text.len()
}

/// Code index of the `}` matching the `{` at code index `open`.
fn brace_close(f: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, &ti) in f.code[open..].iter().enumerate() {
        let t = f.toks[ti];
        if t.kind != TokKind::Punct {
            continue;
        }
        match f.text.as_bytes()[t.start] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

fn ident_at(f: &SourceFile, c: usize) -> Option<&str> {
    f.code.get(c).and_then(|&ti| {
        let t = f.toks[ti];
        (t.kind == TokKind::Ident).then(|| f.text_of(&t))
    })
}

fn punct_at(f: &SourceFile, c: usize, ch: char) -> bool {
    f.code.get(c).is_some_and(|&ti| {
        let t = f.toks[ti];
        t.kind == TokKind::Punct && f.text.as_bytes()[t.start] == ch as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, Graph) {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(rel.to_string(), s.to_string())).collect();
        let g = Graph::build(&files);
        (files, g)
    }

    fn fn_idx(g: &Graph, name: &str) -> usize {
        g.by_name[name][0]
    }

    #[test]
    fn fns_and_impl_attribution() {
        let (_, g) = build(&[(
            "a.rs",
            "struct S;\nimpl S {\n  fn m(&self) {}\n}\nimpl Drop for S {\n  fn drop(&mut self) {}\n}\nfn free() {}\n",
        )]);
        let m = &g.fns[fn_idx(&g, "m")];
        assert_eq!(m.impl_ty.as_deref(), Some("S"));
        let d = &g.fns[fn_idx(&g, "drop")];
        assert_eq!(d.impl_ty.as_deref(), Some("S"), "trait impl binds to the type after `for`");
        assert!(g.fns[fn_idx(&g, "free")].impl_ty.is_none());
    }

    #[test]
    fn return_position_impl_is_not_an_impl_block() {
        let (_, g) = build(&[(
            "a.rs",
            "fn make() -> impl Iterator<Item = u8> { [1u8].into_iter() }\nfn other() {}\n",
        )]);
        assert!(g.fns.iter().all(|f| f.impl_ty.is_none()));
    }

    #[test]
    fn unique_name_and_self_receiver_resolution() {
        let (_, g) = build(&[(
            "a.rs",
            "struct S;\nimpl S {\n  fn outer(&self) { self.helper(); other_file(); }\n  fn helper(&self) {}\n}\nfn other_file() { leaf(); }\nfn leaf() {}\n",
        )]);
        let outer = fn_idx(&g, "outer");
        let callees: Vec<&str> =
            g.calls[outer].iter().map(|e| g.fns[e.callee].name.as_str()).collect();
        assert_eq!(callees, vec!["helper", "other_file"]);
        let reach = g.reachable(&[outer]);
        assert!(reach.contains_key(&fn_idx(&g, "leaf")), "transitive closure");
        assert_eq!(
            g.path_names(&reach, fn_idx(&g, "leaf")),
            vec!["outer", "other_file", "leaf"]
        );
    }

    #[test]
    fn atomic_load_with_ordering_is_not_a_call_into_fn_load() {
        let (_, g) = build(&[(
            "a.rs",
            "struct S { total: AtomicU64 }\nimpl S {\n  fn load(&self) {}\n  \
             fn f(&self) { self.total.load(Ordering::Relaxed); store.load(&key); }\n}\n",
        )]);
        let f_ = fn_idx(&g, "f");
        // The atomic op is skipped; the keyed store read still resolves.
        assert_eq!(g.calls[f_].len(), 1, "{:?}", g.calls[f_]);
        assert_eq!(g.fns[g.calls[f_][0].callee].name, "load");
    }

    #[test]
    fn ambiguous_and_skipped_names_do_not_resolve() {
        let (_, g) = build(&[
            ("a.rs", "fn run() {}\nfn caller() { run(); x.clone(); }\n"),
            ("b.rs", "fn run() {}\n"),
        ]);
        // `run` is defined twice across files; the same-file candidate
        // wins for a caller in a.rs.
        let caller = fn_idx(&g, "caller");
        assert_eq!(g.calls[caller].len(), 1);
        assert_eq!(g.fns[g.calls[caller][0].callee].file, 0);
    }

    #[test]
    fn method_on_foreign_type_does_not_resolve() {
        let (_, g) = build(&[(
            "a.rs",
            "struct S;\nimpl S {\n  fn work(&self) {}\n}\nfn f() { Other::work(); }\n",
        )]);
        let f_ = fn_idx(&g, "f");
        assert!(g.calls[f_].is_empty(), "Other:: has no impl here — unresolved");
    }

    #[test]
    fn lock_sites_names_and_live_ranges() {
        let (files, g) = build(&[(
            "a.rs",
            "struct S;\nimpl S {\n  fn f(&self) {\n    let guard = self.cache.lock().unwrap();\n    let x = guard.len();\n    drop(guard);\n    self.other.lock().unwrap();\n  }\n}\n",
        )]);
        assert_eq!(g.locks.len(), 2);
        let cache = &g.locks[0];
        assert_eq!(cache.name, "S::cache");
        assert_eq!(cache.chain, "self.cache");
        let drop_at = files[0].text.find("drop(guard)").unwrap();
        assert_eq!(cache.live.1, drop_at, "drop(name) ends the live range");
        let other = &g.locks[1];
        assert_eq!(other.name, "S::other");
        let semi = files[0].text.find(".unwrap();\n  }\n}").map(|p| p + ".unwrap()".len());
        assert_eq!(Some(other.live.1), semi, "temporary guard dies at its statement");
    }

    #[test]
    fn indexed_receiver_is_marked() {
        let (_, g) = build(&[("a.rs", "fn f(p: &[Mutex<u8>]) { p[0].lock(); }\n")]);
        assert_eq!(g.locks.len(), 1);
        assert!(g.locks[0].indexed);
        assert_eq!(g.locks[0].name, "p");
    }

    #[test]
    fn lock_with_arguments_is_not_a_guard() {
        let (_, g) = build(&[("a.rs", "fn f() { sock.read(&mut buf); file.write(b); }\n")]);
        assert!(g.locks.is_empty());
    }

    #[test]
    fn test_code_is_invisible() {
        let (_, g) = build(&[(
            "a.rs",
            "fn target() {}\n#[cfg(test)]\nmod tests {\n  fn t() { target(); m.lock(); }\n}\n",
        )]);
        assert!(g.locks.is_empty());
        // The test fn exists but its call edge is dropped.
        let t = fn_idx(&g, "t");
        assert!(g.calls[t].is_empty());
    }
}
