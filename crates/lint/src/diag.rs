//! Diagnostics: what a rule reports, and the human / JSON renderers.

/// One finding: rule id, location, message and a fix hint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the lint root (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`R1` … `R6`, or `A0` for malformed allow comments).
    pub rule: String,
    /// One-sentence statement of the violation.
    pub message: String,
    /// How to fix it (or how to justify it with an allow comment).
    pub hint: String,
}

impl Diagnostic {
    /// `file:line: [rule] message` — the terminal form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    hint: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// The outcome of one lint run.
#[derive(Debug)]
pub struct Report {
    /// Findings sorted by (file, line, rule) — deterministic output is
    /// rule R3 applied to ourselves.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_checked: usize,
    /// Rule ids that ran.
    pub rules_run: Vec<String>,
}

impl Report {
    /// Renders the report as a single JSON document (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"}}",
                json_escape(&d.file),
                d.line,
                json_escape(&d.rule),
                json_escape(&d.message),
                json_escape(&d.hint)
            ));
        }
        out.push_str(&format!(
            "],\"files_checked\":{},\"rules_run\":[{}]}}",
            self.files_checked,
            self.rules_run
                .iter()
                .map(|r| format!("\"{}\"", json_escape(r)))
                .collect::<Vec<_>>()
                .join(",")
        ));
        out
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_json() {
        let d = Diagnostic {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: "R1".into(),
            message: "forbidden `.unwrap()`".into(),
            hint: "propagate with `?`".into(),
        };
        assert!(d.render().starts_with("crates/core/src/x.rs:7: [R1]"));
        let r = Report { diagnostics: vec![d], files_checked: 3, rules_run: vec!["R1".into()] };
        let j = r.to_json();
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("\"files_checked\":3"));
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
