//! R8 — nothing reachable from the event loop may block.
//!
//! The PR 9 server core multiplexes every connection over a handful of
//! nonblocking loop threads; one blocking call on that path stalls
//! every connection the thread owns. This rule computes call-graph
//! reachability from the configured entry functions (`lint.toml
//! [rules.R8] entries`, the poll-loop body) and flags any reachable
//! blocking operation:
//!
//! * `thread::sleep`
//! * `JoinHandle::join` (a no-argument `.join()`)
//! * channel `.recv()` without a timeout (`recv_timeout`/`try_recv`
//!   pass)
//! * `TcpStream::connect` without a timeout (`connect_timeout` passes)
//! * `std::fs` writes (`fs::write`/`rename`/`create_dir…`,
//!   `File::create`, `.sync_all()`/`.sync_data()`)
//!
//! Such work belongs on the write-behind/worker threads. Reads are
//! deliberately not flagged: the cold query path loads artefacts
//! inline by design and is budget-bounded.

use super::{Rule, WorkspaceView};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::glob::glob_match;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Flags blocking operations reachable from the event-loop entries.
pub struct R8EventLoop;

/// `fs::`-qualified write operations.
const FS_WRITES: [&str; 9] = [
    "write",
    "rename",
    "copy",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "hard_link",
];

/// No-argument methods that fsync.
const SYNC_METHODS: [&str; 2] = ["sync_all", "sync_data"];

impl Rule for R8EventLoop {
    fn id(&self) -> &'static str {
        "R8"
    }

    fn summary(&self) -> &'static str {
        "no blocking call (sleep/join/recv/connect/fs write) reachable from the event loop"
    }

    fn fix_hint(&self) -> &'static str {
        "move the blocking work to the write-behind/worker threads, or bound it \
         (`recv_timeout`, `connect_timeout`); a deliberate operator-path stall may carry \
         `// lint: allow(R8) -- <why the stall is acceptable>`"
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let g = ws.graph;
        let files = ws.files;
        let mut roots: Vec<usize> = Vec::new();
        for entry in &cfg.r8_entries {
            let found = g.by_name.get(entry.as_str());
            match found {
                Some(idxs) => roots.extend(idxs.iter().copied()),
                None => out.push(self.diag(
                    "lint.toml",
                    1,
                    format!(
                        "R8 entry `{entry}` names no function in the scanned workspace \
                         (check [rules.R8] entries)"
                    ),
                )),
            }
        }
        if roots.is_empty() {
            return;
        }
        let reach = g.reachable(&roots);
        for (fi, f) in files.iter().enumerate() {
            let in_scope = cfg
                .includes
                .get("R8")
                .is_none_or(|globs| globs.iter().any(|g2| glob_match(g2, &f.rel)));
            if !in_scope {
                continue;
            }
            for c in 0..f.code.len() {
                let Some(op) = blocking_op(f, c) else { continue };
                let tok = f.toks[f.code[c]];
                if f.in_test(tok.start) {
                    continue;
                }
                let Some(holder) = g.enclosing_fn(fi, tok.start) else { continue };
                if !reach.contains_key(&holder) {
                    continue;
                }
                let chain = g.path_names(&reach, holder);
                out.push(self.diag(
                    &f.rel,
                    tok.line,
                    format!(
                        "blocking `{op}` on the event-loop path {} (entry `{}`)",
                        chain.join(" -> "),
                        chain.first().map(String::as_str).unwrap_or("?"),
                    ),
                ));
            }
        }
    }
}

/// The blocking operation at code index `c`, if any.
fn blocking_op(f: &SourceFile, c: usize) -> Option<&'static str> {
    let name = ident_at(f, c)?;
    let called = punct_at(f, c + 1, '(');
    if !called {
        return None;
    }
    let no_args = punct_at(f, c + 2, ')');
    let method = c > 0 && punct_at(f, c - 1, '.');
    let qualifier = if c >= 3 && punct_at(f, c - 1, ':') && punct_at(f, c - 2, ':') {
        ident_at(f, c - 3)
    } else {
        None
    };
    match name {
        "sleep" => Some("thread::sleep"),
        "join" if method && no_args => Some("JoinHandle::join"),
        "recv" if method && no_args => Some("recv (channel receive without timeout)"),
        "connect" => Some("TcpStream::connect (no timeout)"),
        n if SYNC_METHODS.contains(&n) && method && no_args => Some("fsync (sync_all/sync_data)"),
        n if FS_WRITES.contains(&n) && qualifier == Some("fs") => Some("std::fs write"),
        "create" if qualifier == Some("File") => Some("File::create"),
        _ => None,
    }
}

fn ident_at(f: &SourceFile, c: usize) -> Option<&str> {
    f.code.get(c).and_then(|&ti| {
        let t = f.toks[ti];
        (t.kind == TokKind::Ident).then(|| f.text_of(&t))
    })
}

fn punct_at(f: &SourceFile, c: usize, ch: char) -> bool {
    f.code.get(c).is_some_and(|&ti| {
        let t = f.toks[ti];
        t.kind == TokKind::Punct && f.text.as_bytes()[t.start] == ch as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::scan::SourceFile;

    fn check(entries: &[&str], srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(rel.to_string(), s.to_string())).collect();
        let graph = Graph::build(&files);
        let dir = std::env::temp_dir();
        let ws = WorkspaceView { root: &dir, files: &files, graph: &graph };
        let mut cfg = Config {
            r8_entries: entries.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        };
        cfg.includes.remove("R8");
        let mut out = Vec::new();
        R8EventLoop.check_workspace(&ws, &cfg, &mut out);
        out
    }

    #[test]
    fn sleep_two_hops_from_the_entry_is_flagged_with_path() {
        let d = check(
            &["wake"],
            &[(
                "s.rs",
                "fn wake() { handle(); }\nfn handle() { backoff(); }\n\
                 fn backoff() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
            )],
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("wake -> handle -> backoff"), "{}", d[0].message);
        assert!(d[0].message.contains("thread::sleep"));
    }

    #[test]
    fn unreachable_blocking_code_is_clean() {
        let d = check(
            &["wake"],
            &[(
                "s.rs",
                "fn wake() {}\nfn worker() { rx.recv(); std::thread::sleep(d); }\n",
            )],
        );
        assert!(d.is_empty(), "worker is not reachable from wake: {d:?}");
    }

    #[test]
    fn bounded_variants_pass() {
        let d = check(
            &["wake"],
            &[(
                "s.rs",
                "fn wake() {\n  rx.recv_timeout(d);\n  rx.try_recv();\n  \
                 TcpStream::connect_timeout(&addr, d);\n  parts.join(\",\");\n}\n",
            )],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn fs_write_and_empty_join_are_flagged() {
        let d = check(
            &["wake"],
            &[(
                "s.rs",
                "fn wake() {\n  std::fs::rename(a, b);\n  handle.join();\n  file.sync_all();\n}\n",
            )],
        );
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn missing_entry_is_a_config_finding() {
        let d = check(&["no_such_fn"], &[("s.rs", "fn wake() {}\n")]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no_such_fn"));
    }
}
