//! R7 — global lock acquisition order.
//!
//! The cluster fan-out, the registry and the store each carry several
//! `Mutex`/`RwLock` fields; a deadlock needs only two code paths that
//! nest two of them in opposite orders. This rule builds the lock
//! acquisition graph over the whole workspace — an edge `A -> B` when
//! lock `B` is taken while a guard of `A` is live, directly or through
//! one level of resolved calls — and reports every edge that
//! participates in a cycle, with the witness path printed. Taking the
//! *same* lock again while its guard is live (a `std::sync::Mutex`
//! self-deadlock) is reported outright.
//!
//! An edge whose acquisition site carries `// lint: allow(R7) --
//! reason` is removed *before* cycle detection: a justified ordering
//! exception (e.g. a `try_lock` fallback) breaks the cycle for every
//! other participant too.

use std::collections::{BTreeMap, BTreeSet};

use super::{Rule, WorkspaceView};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::glob::glob_match;

/// Flags lock-order cycles and same-lock re-acquisition.
pub struct R7LockOrder;

/// One acquisition edge: `to` taken while a guard of `from` is live.
struct Edge {
    from: String,
    to: String,
    /// File index + line of the inner acquisition (or the call that
    /// reaches it).
    file: usize,
    line: u32,
    /// Function the edge crosses into, for one-level call edges.
    via: Option<String>,
    /// Line the outer guard was taken on.
    held_line: u32,
}

impl Rule for R7LockOrder {
    fn id(&self) -> &'static str {
        "R7"
    }

    fn summary(&self) -> &'static str {
        "lock acquisition order is acyclic (no A->B and B->A nesting across the workspace)"
    }

    fn fix_hint(&self) -> &'static str {
        "acquire the two locks in one global order (or scope the first guard to death \
         before the second); a provably safe crossing may carry \
         `// lint: allow(R7) -- <why the cycle cannot close>`"
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let g = ws.graph;
        let files = ws.files;
        let mut edges: Vec<Edge> = Vec::new();
        for a in &g.locks {
            // Direct nesting: another acquisition inside the guard's
            // live range, same file (live ranges never span files).
            for b in &g.locks {
                if b.file != a.file || b.byte == a.byte {
                    continue;
                }
                if b.byte < a.live.0 || b.byte >= a.live.1 {
                    continue;
                }
                if a.name == b.name {
                    // Same node: only a guaranteed self-deadlock when it
                    // is provably the same object — identical `self.`
                    // chain, no indexing.
                    if a.chain == b.chain
                        && a.chain.starts_with("self.")
                        && !a.indexed
                        && !files[b.file].allowed_at("R7", b.line)
                    {
                        out.push(self.diag(
                            &files[b.file].rel,
                            b.line,
                            format!(
                                "lock `{}` re-acquired while its guard from line {} is \
                                 still live (self-deadlock on a non-reentrant lock)",
                                a.name, a.line
                            ),
                        ));
                    }
                    continue;
                }
                edges.push(Edge {
                    from: a.name.clone(),
                    to: b.name.clone(),
                    file: b.file,
                    line: b.line,
                    via: None,
                    held_line: a.line,
                });
            }
            // One level through resolved calls inside the live range.
            let Some(fi) = a.fn_idx else { continue };
            for call in &g.calls[fi] {
                if call.byte < a.live.0 || call.byte >= a.live.1 {
                    continue;
                }
                for c in g.locks.iter().filter(|l| l.fn_idx == Some(call.callee)) {
                    if a.name == c.name {
                        continue; // cross-object aliasing is unknowable here
                    }
                    edges.push(Edge {
                        from: a.name.clone(),
                        to: c.name.clone(),
                        file: a.file,
                        line: call.line,
                        via: Some(g.fns[call.callee].name.clone()),
                        held_line: a.line,
                    });
                }
            }
        }
        // Reasoned allows at the acquisition site remove the edge from
        // the graph before cycle detection.
        edges.retain(|e| !files[e.file].allowed_at("R7", e.line));
        // First edge per (from, to) pair is the witness; the rest are
        // duplicates of the same ordering fact.
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut witnesses: Vec<&Edge> = Vec::new();
        for e in &edges {
            if seen.insert((e.from.clone(), e.to.clone())) {
                witnesses.push(e);
                adj.entry(e.from.as_str()).or_default().push(e.to.as_str());
            }
        }
        for e in witnesses {
            let Some(path) = shortest_path(&adj, &e.to, &e.from) else { continue };
            let in_scope = cfg
                .includes
                .get("R7")
                .is_none_or(|globs| globs.iter().any(|g2| glob_match(g2, &files[e.file].rel)));
            if !in_scope {
                continue;
            }
            let mut cycle = vec![e.from.clone()];
            cycle.extend(path);
            let via = match &e.via {
                Some(f2) => format!(" through call to `{f2}`"),
                None => String::new(),
            };
            out.push(self.diag(
                &files[e.file].rel,
                e.line,
                format!(
                    "taking `{}`{via} while `{}` (held since line {}) is live closes a lock \
                     cycle: {}",
                    e.to,
                    e.from,
                    e.held_line,
                    cycle.join(" -> "),
                ),
            ));
        }
    }
}

/// Shortest `from -> … -> to` node path, BFS over the edge map.
fn shortest_path(
    adj: &BTreeMap<&str, Vec<&str>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: Vec<&str> = vec![from];
    let mut qi = 0usize;
    let mut found = from == to;
    while qi < queue.len() && !found {
        let u = queue[qi];
        qi += 1;
        for &v in adj.get(u).into_iter().flatten() {
            if v != from && parent.contains_key(v) {
                continue;
            }
            if !parent.contains_key(v) {
                parent.insert(v, u);
                queue.push(v);
            }
            if v == to {
                found = true;
                break;
            }
        }
    }
    if !found {
        return None;
    }
    let mut path = vec![to.to_string()];
    let mut cur = to;
    while let Some(&p) = parent.get(cur) {
        path.push(p.to_string());
        cur = p;
        if cur == from {
            break;
        }
    }
    if cur != from {
        path.push(from.to_string());
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::scan::SourceFile;

    fn check(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(rel, s)| SourceFile::parse(rel.to_string(), s.to_string())).collect();
        let graph = Graph::build(&files);
        let dir = std::env::temp_dir();
        let ws = WorkspaceView { root: &dir, files: &files, graph: &graph };
        let mut cfg = Config::default();
        cfg.includes.remove("R7"); // report everywhere in unit tests
        let mut out = Vec::new();
        R7LockOrder.check_workspace(&ws, &cfg, &mut out);
        out
    }

    const CROSSED: &str = "struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }\n\
         impl S {\n\
           fn forward(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.lock();\n    let _ = (ga, gb);\n  }\n\
           fn backward(&self) {\n    let gb = self.b.lock();\n    let ga = self.a.lock();\n    let _ = (ga, gb);\n  }\n\
         }\n";

    #[test]
    fn crossed_orders_report_both_edges_with_witness() {
        let d = check(&[("s.rs", CROSSED)]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("S::a -> S::b -> S::a") || d[0].message.contains("S::b -> S::a -> S::b"), "{}", d[0].message);
        assert!(d.iter().all(|x| x.rule == "R7"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = check(&[(
            "s.rs",
            "struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }\n\
             impl S {\n\
               fn one(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.lock();\n    let _ = (ga, gb);\n  }\n\
               fn two(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.lock();\n    let _ = (ga, gb);\n  }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn scoped_first_guard_breaks_the_edge() {
        let d = check(&[(
            "s.rs",
            "struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }\n\
             impl S {\n\
               fn one(&self) {\n    let x = { let ga = self.a.lock(); *ga };\n    let gb = self.b.lock();\n    let _ = (x, gb);\n  }\n\
               fn two(&self) {\n    let gb = self.b.lock();\n    let ga = self.a.lock();\n    let _ = (ga, gb);\n  }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "guard a dies inside the block: {d:?}");
    }

    #[test]
    fn one_level_call_edge_closes_a_cycle() {
        let d = check(&[(
            "s.rs",
            "struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }\n\
             impl S {\n\
               fn outer(&self) {\n    let ga = self.a.lock();\n    self.inner_b();\n    let _ = ga;\n  }\n\
               fn inner_b(&self) {\n    let gb = self.b.lock();\n    let _ = gb;\n  }\n\
               fn backward(&self) {\n    let gb = self.b.lock();\n    let ga = self.a.lock();\n    let _ = (ga, gb);\n  }\n\
             }\n",
        )]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("through call to `inner_b`")), "{d:?}");
    }

    #[test]
    fn self_reacquisition_is_a_self_deadlock() {
        let d = check(&[(
            "s.rs",
            "struct S { m: std::sync::Mutex<u8> }\n\
             impl S {\n  fn f(&self) {\n    let g = self.m.lock();\n    let h = self.m.lock();\n    let _ = (g, h);\n  }\n}\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("self-deadlock"), "{}", d[0].message);
    }

    #[test]
    fn indexed_same_name_locks_are_not_self_deadlocks() {
        let d = check(&[(
            "s.rs",
            "fn f(p: &[std::sync::Mutex<u8>]) {\n  let g = p[0].lock();\n  let h = p[1].lock();\n  let _ = (g, h);\n}\n",
        )]);
        assert!(d.is_empty(), "distinct elements of one pool: {d:?}");
    }

    #[test]
    fn allow_on_one_edge_breaks_the_cycle_for_both() {
        let d = check(&[(
            "s.rs",
            "struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }\n\
             impl S {\n\
               fn forward(&self) {\n    let ga = self.a.lock();\n    let gb = self.b.lock();\n    let _ = (ga, gb);\n  }\n\
               fn backward(&self) {\n    let gb = self.b.lock();\n    // lint: allow(R7) -- b is only polled via try_lock upstream of this path\n    let ga = self.a.lock();\n    let _ = (ga, gb);\n  }\n\
             }\n",
        )]);
        assert!(d.is_empty(), "removing the allowed edge breaks the cycle: {d:?}");
    }
}
