//! R5 — every `unsafe` block carries a `// SAFETY:` comment.
//!
//! The workspace is currently 100 % safe code; if a kernel ever earns
//! an `unsafe` block, the justification must be written down where the
//! next reader (and this linter) can find it.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Requires a `SAFETY:` comment on or immediately above each `unsafe`
/// block.
pub struct R5SafetyComment;

impl Rule for R5SafetyComment {
    fn id(&self) -> &'static str {
        "R5"
    }

    fn summary(&self) -> &'static str {
        "every `unsafe` block carries a `// SAFETY:` justification"
    }

    fn fix_hint(&self) -> &'static str {
        "add `// SAFETY: <why the invariants hold>` directly above the block, or refactor \
         the unsafety away"
    }

    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for u in &f.unsafes {
            if f.in_test(u.byte) {
                continue;
            }
            if has_safety_comment(f, u.byte, u.line) {
                continue;
            }
            out.push(self.diag(
                &f.rel,
                u.line,
                "`unsafe` block without a `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

/// A `SAFETY:` comment counts when it sits on the same line as the
/// `unsafe` keyword or in the run of comments directly above the line
/// that starts the statement — `let n = unsafe { … }` binds to the
/// comments above the `let`, so binding the result of an unsafe call
/// does not hide the justification from the reader or this rule.
fn has_safety_comment(f: &SourceFile, unsafe_byte: usize, unsafe_line: u32) -> bool {
    // Same line (leading or trailing).
    if f.toks.iter().any(|t| {
        matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
            && t.line == unsafe_line
            && f.text_of(t).contains("SAFETY:")
    }) {
        return true;
    }
    // Walk back over the directly preceding tokens: code on the same
    // line as `unsafe` (the `let n =` prefix) is skipped; above the
    // line, any comments before the first code token may justify the
    // block.
    let mut idx = match f.toks.iter().position(|t| t.start == unsafe_byte) {
        Some(i) => i,
        None => return false,
    };
    while idx > 0 {
        idx -= 1;
        let t = f.toks[idx];
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => {
                if f.text_of(&t).contains("SAFETY:") {
                    return true;
                }
            }
            _ if t.line == unsafe_line => continue,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("x.rs".into(), src.into());
        let mut out = Vec::new();
        R5SafetyComment.check_file(&f, &mut out);
        out
    }

    #[test]
    fn bare_unsafe_is_flagged() {
        let d = run("fn f(p: *const u8) -> u8 {\n  unsafe { *p }\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn safety_comment_above_passes() {
        assert!(run(
            "fn f(p: *const u8) -> u8 {\n  // SAFETY: caller guarantees p is valid\n  unsafe { *p }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn safety_comment_above_let_binding_passes() {
        assert!(run(
            "fn f(p: *const u8) -> u8 {\n  // SAFETY: caller guarantees p is valid\n  let v = unsafe { *p };\n  v\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn bare_let_binding_unsafe_is_flagged() {
        let d = run("fn f(p: *const u8) -> u8 {\n  let v = unsafe { *p };\n  v\n}\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn comment_two_statements_up_does_not_count() {
        let d = run(
            "fn f(p: *const u8) -> u8 {\n  // SAFETY: stale\n  let q = p;\n  let v = unsafe { *q };\n  v\n}\n",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn safety_comment_same_line_passes() {
        assert!(run("fn f(p: *const u8) -> u8 { unsafe { *p } // SAFETY: p valid\n}\n")
            .is_empty());
    }

    #[test]
    fn unsafe_fn_signature_is_not_a_block() {
        assert!(run("unsafe fn g(p: *const u8) -> u8 { *p }\n").is_empty());
    }

    #[test]
    fn test_code_passes() {
        assert!(run("#[cfg(test)]\nmod tests { fn t() { unsafe { x() } } }\n").is_empty());
    }
}
