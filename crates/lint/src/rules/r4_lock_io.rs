//! R4 — lock discipline in the serving layer.
//!
//! Guards the PR 3 contract that the registry/cache locks are never
//! held across socket or file I/O: a worker blocking on `flush` or
//! `read_line` while holding the cache mutex serialises the whole
//! pool behind one slow client. The rule tracks `let` bindings whose
//! initializer takes a guard (`.lock()` / `.read()` / `.write()` —
//! the no-argument guard acquisitions) and flags any blocking I/O
//! identifier reached while the guard is still live (before `drop`
//! or end of scope).

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Flags lock guards held across socket/file I/O calls.
pub struct R4LockAcrossIo;

const IO_CALLS: [&str; 8] = [
    "write_all",
    "read_line",
    "flush",
    "accept",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "writeln",
];

const GUARD_TAKERS: [&str; 3] = [".lock()", ".read()", ".write()"];

impl Rule for R4LockAcrossIo {
    fn id(&self) -> &'static str {
        "R4"
    }

    fn summary(&self) -> &'static str {
        "no lock guard held across socket/file I/O in the serving layer"
    }

    fn fix_hint(&self) -> &'static str {
        "clone/extract what the response needs, then `drop(guard)` (or close its scope) \
         before any `write_all`/`flush`/`read_line`/`accept`; a sound case may carry \
         `// lint: allow(R4) -- <why the I/O cannot block>`"
    }

    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for l in &f.lets {
            if f.in_test(l.decl_end) {
                continue;
            }
            let init = init_top_level(f, l.init);
            if !GUARD_TAKERS.iter().any(|g| init.contains(g)) {
                continue;
            }
            // Live range: declaration to `drop(name)` or scope end.
            let live_end = drop_point(f, &l.name, l.decl_end, l.scope_end);
            for (c, &ti) in f.code.iter().enumerate() {
                let tok = f.toks[ti];
                if tok.start < l.decl_end || tok.start >= live_end {
                    continue;
                }
                if tok.kind != TokKind::Ident {
                    continue;
                }
                let name = f.text_of(&tok);
                if !IO_CALLS.contains(&name) {
                    continue;
                }
                // Methods arrive as `.name(`; `writeln` as `writeln!(`.
                let is_method = c > 0 && punct_is(f, c - 1, '.') && punct_is(f, c + 1, '(');
                let is_macro = punct_is(f, c + 1, '!');
                if is_method || is_macro {
                    out.push(self.diag(
                        &f.rel,
                        tok.line,
                        format!(
                            "lock guard `{}` (taken on line {}) is still held across \
                             blocking I/O `{name}`",
                            l.name, l.line
                        ),
                    ));
                    break; // one finding per guard keeps the report readable
                }
            }
        }
    }
}

/// The initializer's top-level token text: code inside nested `{ … }`
/// blocks is dropped, because a guard taken in an inner block dies at
/// that block's end — only a guard reaching the binding's value
/// position stays live. Token-based, so braces inside format strings
/// cannot distort the depth.
fn init_top_level(f: &SourceFile, init: (usize, usize)) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    for &ti in &f.code {
        let t = f.toks[ti];
        if t.start < init.0 || t.start >= init.1 {
            continue;
        }
        if t.kind == TokKind::Punct {
            match f.text.as_bytes()[t.start] {
                b'{' => {
                    depth += 1;
                    continue;
                }
                b'}' => {
                    depth -= 1;
                    continue;
                }
                _ => {}
            }
        }
        if depth == 0 {
            out.push_str(f.text_of(&t));
        }
    }
    out
}

/// Byte offset where `drop(name)` releases the guard, else `scope_end`.
fn drop_point(f: &SourceFile, name: &str, from: usize, scope_end: usize) -> usize {
    for (c, &ti) in f.code.iter().enumerate() {
        let tok = f.toks[ti];
        if tok.start < from || tok.start >= scope_end {
            continue;
        }
        if tok.kind == TokKind::Ident
            && f.text_of(&tok) == "drop"
            && punct_is(f, c + 1, '(')
            && ident_is(f, c + 2, name)
            && punct_is(f, c + 3, ')')
        {
            return tok.start;
        }
    }
    scope_end
}

fn punct_is(f: &SourceFile, c: usize, ch: char) -> bool {
    f.code.get(c).is_some_and(|&ti| {
        let t = f.toks[ti];
        t.kind == TokKind::Punct && f.text.as_bytes()[t.start] == ch as u8
    })
}

fn ident_is(f: &SourceFile, c: usize, name: &str) -> bool {
    f.code.get(c).is_some_and(|&ti| {
        let t = f.toks[ti];
        t.kind == TokKind::Ident && f.text_of(&t) == name
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("x.rs".into(), src.into());
        let mut out = Vec::new();
        R4LockAcrossIo.check_file(&f, &mut out);
        out
    }

    #[test]
    fn guard_across_flush_is_flagged() {
        let d = run(
            "fn f() {\n  let guard = state.lock().unwrap_or_else(|e| e.into_inner());\n  writer.write_all(guard.bytes());\n  writer.flush();\n}\n",
        );
        assert_eq!(d.len(), 1, "one finding per guard");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("guard"));
    }

    #[test]
    fn drop_before_io_passes() {
        assert!(run(
            "fn f() {\n  let guard = state.lock().unwrap_or_else(|e| e.into_inner());\n  let bytes = guard.bytes().to_vec();\n  drop(guard);\n  writer.write_all(&bytes);\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn scoped_guard_passes() {
        assert!(run(
            "fn f() {\n  let bytes = {\n    let guard = state.read().unwrap_or_else(|e| e.into_inner());\n    guard.bytes().to_vec()\n  };\n  writer.write_all(&bytes);\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn rwlock_write_guard_across_writeln_macro_is_flagged() {
        let d = run(
            "fn f() {\n  let mut g = table.write().unwrap_or_else(|e| e.into_inner());\n  writeln!(sock, \"{}\", g.len());\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("writeln"));
    }

    #[test]
    fn io_read_initializers_do_not_count_as_guards() {
        // `.read(buf)` has arguments — only the no-arg guard takers match.
        assert!(run("fn f() { let n = sock.read(&mut buf); writer.flush(); }").is_empty());
    }
}
