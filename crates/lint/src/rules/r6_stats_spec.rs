//! R6 — cross-artifact consistency of the serving metrics.
//!
//! Three artifacts describe the same counters: the `Metrics` struct
//! (`crates/serve/src/metrics.rs`), the `STATS` JSON serialization in
//! the same file, and the wire-spec table in the README. PR 3/4 grew
//! the struct faster than the docs; this rule makes the three move in
//! lockstep: every `AtomicU64` counter field must appear as a
//! serialized `"key"` and as a `` | `key` | `` row in the README
//! table.

use super::{Rule, WorkspaceView};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Checks Metrics struct fields against the STATS serialization and
/// the README wire-spec table.
pub struct R6StatsSpec;

impl Rule for R6StatsSpec {
    fn id(&self) -> &'static str {
        "R6"
    }

    fn summary(&self) -> &'static str {
        "every metrics counter appears in the STATS serialization and the README wire-spec table"
    }

    fn fix_hint(&self) -> &'static str {
        "add the counter to `Metrics::snapshot_json` and a `| `name` | … |` row to the \
         README STATS table (or remove the dead field)"
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let Some(metrics_src) = ws.read(&cfg.r6_metrics) else {
            out.push(self.diag(
                &cfg.r6_metrics,
                1,
                format!("metrics source `{}` not found (check lint.toml [rules.R6])", cfg.r6_metrics),
            ));
            return;
        };
        let readme = ws.read(&cfg.r6_readme);
        if readme.is_none() {
            out.push(self.diag(
                &cfg.r6_readme,
                1,
                format!("wire-spec document `{}` not found (check lint.toml [rules.R6])", cfg.r6_readme),
            ));
        }
        let f = SourceFile::parse(cfg.r6_metrics.clone(), metrics_src);
        let counters = counter_fields(&f);
        if counters.is_empty() {
            out.push(self.diag(
                &cfg.r6_metrics,
                1,
                "no `AtomicU64` counter fields found in `struct Metrics`".to_string(),
            ));
            return;
        }
        for (name, line) in counters {
            // Serialized as a JSON key in the same file: the format
            // string carries `\"name\":` (escaped) or `"name":`.
            let escaped = format!("\\\"{name}\\\":");
            let plain = format!("\"{name}\":");
            if !f.text.contains(&escaped) && !f.text.contains(&plain) {
                out.push(self.diag(
                    &f.rel,
                    line,
                    format!("counter `{name}` is not serialized in the STATS payload"),
                ));
            }
            if let Some(doc) = &readme {
                let row = format!("| `{name}`");
                if !doc.contains(&row) {
                    out.push(self.diag(
                        &f.rel,
                        line,
                        format!(
                            "counter `{name}` is missing from the `{}` wire-spec table",
                            cfg.r6_readme
                        ),
                    ));
                }
            }
        }
    }
}

/// `(name, line)` of each `AtomicU64` field of `struct Metrics`.
fn counter_fields(f: &SourceFile) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    // Find `struct Metrics { … }` via the code token stream.
    let mut c = 0usize;
    while c + 1 < f.code.len() {
        if ident_is(f, c, "struct") && ident_is(f, c + 1, "Metrics") {
            break;
        }
        c += 1;
    }
    if c + 1 >= f.code.len() {
        return fields;
    }
    // Advance to the opening brace, then walk `name : Type ,` fields at
    // depth 1.
    let mut depth = 0i32;
    let mut d = c + 2;
    while d < f.code.len() {
        let ti = f.code[d];
        if punct_is_at(f, ti, '{') {
            depth += 1;
            if depth == 1 {
                d += 1;
                break;
            }
        }
        d += 1;
    }
    while d < f.code.len() && depth > 0 {
        let ti = f.code[d];
        if punct_is_at(f, ti, '{') {
            depth += 1;
        } else if punct_is_at(f, ti, '}') {
            depth -= 1;
        } else if depth == 1 && ident_is(f, d, "pub") {
            // `pub name: AtomicU64,`
            if let (Some(name), true) = (ident_text(f, d + 1), punct_is(f, d + 2, ':')) {
                if ident_text(f, d + 3) == Some("AtomicU64") {
                    fields.push((name.to_string(), f.toks[f.code[d + 1]].line));
                }
            }
        }
        d += 1;
    }
    fields
}

fn ident_text(f: &SourceFile, c: usize) -> Option<&str> {
    f.code.get(c).and_then(|&ti| {
        let t = f.toks[ti];
        (t.kind == TokKind::Ident).then(|| f.text_of(&t))
    })
}

fn ident_is(f: &SourceFile, c: usize, name: &str) -> bool {
    ident_text(f, c) == Some(name)
}

fn punct_is(f: &SourceFile, c: usize, ch: char) -> bool {
    f.code.get(c).is_some_and(|&ti| punct_is_at(f, ti, ch))
}

fn punct_is_at(f: &SourceFile, ti: usize, ch: char) -> bool {
    let t = f.toks[ti];
    t.kind == TokKind::Punct && f.text.as_bytes()[t.start] == ch as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(dir: &std::path::Path) -> WorkspaceView<'_> {
        // R6 reads its artifacts from disk; an empty graph suffices.
        WorkspaceView {
            root: dir,
            files: &[],
            graph: Box::leak(Box::new(crate::graph::Graph::default())),
        }
    }

    fn write(dir: &std::path::Path, rel: &str, text: &str) {
        let p = dir.join(rel);
        if let Some(parent) = p.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(p, text).unwrap_or_else(|e| {
            // Test-only scaffolding; failing to stage the fixture is fatal.
            panic!("write fixture {rel}: {e}")
        });
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("skydiver-lint-r6-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        let _ = std::fs::create_dir_all(&d);
        d
    }

    const METRICS: &str = "pub struct Metrics {\n    pub queries: AtomicU64,\n    pub stray: AtomicU64,\n    pub latency: LatencyHistogram,\n}\nimpl Metrics {\n    pub fn snapshot_json(&self) -> String {\n        format!(\"{{\\\"queries\\\":{}}}\", 1)\n    }\n}\n";

    #[test]
    fn missing_serialization_and_table_row_flagged() {
        let dir = tmpdir("drift");
        write(&dir, "m.rs", METRICS);
        write(&dir, "SPEC.md", "| `queries` | served |\n");
        let cfg = Config {
            r6_metrics: "m.rs".into(),
            r6_readme: "SPEC.md".into(),
            ..Config::default()
        };
        let mut out = Vec::new();
        R6StatsSpec.check_workspace(&view(&dir), &cfg, &mut out);
        assert_eq!(out.len(), 2, "stray counter missing from both artifacts: {out:?}");
        assert!(out.iter().all(|d| d.message.contains("stray")));
        assert!(out.iter().any(|d| d.message.contains("serialized")));
        assert!(out.iter().any(|d| d.message.contains("wire-spec")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn consistent_artifacts_pass() {
        let dir = tmpdir("clean");
        let metrics = METRICS.replace(
            "format!(\"{{\\\"queries\\\":{}}}\", 1)",
            "format!(\"{{\\\"queries\\\":{},\\\"stray\\\":{}}}\", 1, 2)",
        );
        write(&dir, "m.rs", &metrics);
        write(&dir, "SPEC.md", "| `queries` | served |\n| `stray` | other |\n");
        let cfg = Config {
            r6_metrics: "m.rs".into(),
            r6_readme: "SPEC.md".into(),
            ..Config::default()
        };
        let mut out = Vec::new();
        R6StatsSpec.check_workspace(&view(&dir), &cfg, &mut out);
        assert!(out.is_empty(), "{out:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_metrics_file_is_a_finding() {
        let dir = tmpdir("nofile");
        let cfg = Config {
            r6_metrics: "nope.rs".into(),
            r6_readme: "nope.md".into(),
            ..Config::default()
        };
        let mut out = Vec::new();
        R6StatsSpec.check_workspace(&view(&dir), &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not found"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
