//! R3 — determinism of the fingerprint/selection paths.
//!
//! Guards the bit-identity contract of PRs 2–4: sequential, parallel
//! and sharded runs must produce byte-equal fingerprints and
//! selections. Two classic sources of silent nondeterminism are
//! banned from those paths: wall clocks (`Instant::now` /
//! `SystemTime`) influencing results, and iteration over the default
//! RandomState-hashed `HashMap`/`HashSet`, whose order varies per
//! process.
//!
//! Hash *membership* stays legal — only iteration is order-sensitive.
//! The binding-based detection is a heuristic: it tracks local `let`
//! bindings whose type or initializer mentions `HashMap`/`HashSet`
//! and flags iteration calls (`.iter()`, `.keys()`, …) or `for … in`
//! loops over them. Struct fields of hash type iterated through
//! `self` are out of its reach — keep such state `BTreeMap` by
//! policy.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Forbids wall clocks and default-hasher map/set iteration in
/// deterministic paths.
pub struct R3Determinism;

const ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

impl Rule for R3Determinism {
    fn id(&self) -> &'static str {
        "R3"
    }

    fn summary(&self) -> &'static str {
        "no wall clocks and no default-hasher HashMap/HashSet iteration in deterministic paths"
    }

    fn fix_hint(&self) -> &'static str {
        "thread timings through the caller, and iterate BTreeMap/Vec (or sort keys first); \
         suppress a justified case with `// lint: allow(R3) -- <why order cannot leak>`"
    }

    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        self.check_clocks(f, out);
        self.check_hash_iteration(f, out);
    }
}

impl R3Determinism {
    fn check_clocks(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (c, &ti) in f.code.iter().enumerate() {
            let tok = f.toks[ti];
            if tok.kind != TokKind::Ident || f.in_test(tok.start) {
                continue;
            }
            let name = f.text_of(&tok);
            if (name == "Instant" || name == "SystemTime")
                && punct_is(f, c + 1, ':')
                && punct_is(f, c + 2, ':')
            {
                out.push(self.diag(
                    &f.rel,
                    tok.line,
                    format!("wall clock `{name}::…` in a deterministic path"),
                ));
            }
        }
    }

    fn check_hash_iteration(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        // Names bound to a HashMap/HashSet by type ascription or
        // initializer.
        let hashy: Vec<&str> = f
            .lets
            .iter()
            .filter(|l| {
                let init = &f.text[l.init.0..l.init.1];
                let ty = &f.text[l.ty.0..l.ty.1];
                init.contains("HashMap")
                    || init.contains("HashSet")
                    || ty.contains("HashMap")
                    || ty.contains("HashSet")
            })
            .map(|l| l.name.as_str())
            .collect();
        if hashy.is_empty() {
            return;
        }
        for (c, &ti) in f.code.iter().enumerate() {
            let tok = f.toks[ti];
            if tok.kind != TokKind::Ident || f.in_test(tok.start) {
                continue;
            }
            let name = f.text_of(&tok);
            if !hashy.contains(&name) {
                continue;
            }
            // `name.iter()` style calls.
            if punct_is(f, c + 1, '.') {
                if let Some(m) = ident_at(f, c + 2) {
                    if ITER_METHODS.contains(&m) && punct_is(f, c + 3, '(') {
                        out.push(self.diag(
                            &f.rel,
                            tok.line,
                            format!(
                                "iteration over default-hasher collection `{name}.{m}()` is \
                                 order-nondeterministic"
                            ),
                        ));
                        continue;
                    }
                }
            }
            // `for x in [&[mut]] name {` loops.
            let mut back = c;
            while back > 0 && (punct_is(f, back - 1, '&') || ident_is(f, back - 1, "mut")) {
                back -= 1;
            }
            if back > 0 && ident_is(f, back - 1, "in") && punct_is(f, c + 1, '{') {
                out.push(self.diag(
                    &f.rel,
                    tok.line,
                    format!(
                        "`for … in {name}` iterates a default-hasher collection in \
                         nondeterministic order"
                    ),
                ));
            }
        }
    }
}

fn punct_is(f: &SourceFile, c: usize, ch: char) -> bool {
    f.code.get(c).is_some_and(|&ti| {
        let t = f.toks[ti];
        t.kind == TokKind::Punct && f.text.as_bytes()[t.start] == ch as u8
    })
}

fn ident_at(f: &SourceFile, c: usize) -> Option<&str> {
    f.code.get(c).and_then(|&ti| {
        let t = f.toks[ti];
        (t.kind == TokKind::Ident).then(|| f.text_of(&t))
    })
}

fn ident_is(f: &SourceFile, c: usize, name: &str) -> bool {
    ident_at(f, c) == Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("x.rs".into(), src.into());
        let mut out = Vec::new();
        R3Determinism.check_file(&f, &mut out);
        out
    }

    #[test]
    fn clocks_flagged() {
        let d = run("fn f() { let t0 = Instant::now(); let e = SystemTime::UNIX_EPOCH; }");
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("Instant"));
    }

    #[test]
    fn hash_iteration_flagged_membership_passes() {
        let d = run(
            "fn f() {\n  let m = HashMap::new();\n  for (k, v) in &m { g(k, v); }\n  let s: HashSet<u64> = build();\n  let v: Vec<_> = s.iter().collect();\n  if s.contains(&1) { g2(); }\n}\n",
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 3);
        assert_eq!(d[1].line, 5);
    }

    #[test]
    fn btreemap_passes() {
        assert!(run("fn f() { let m = BTreeMap::new(); for (k, v) in &m { g(k, v); } }")
            .is_empty());
    }

    #[test]
    fn insert_only_hashset_passes() {
        assert!(run("fn f() { let mut seen = HashSet::new(); seen.insert(x); }").is_empty());
    }

    #[test]
    fn test_code_passes() {
        assert!(run("#[cfg(test)]\nmod tests { fn t() { let t0 = Instant::now(); } }")
            .is_empty());
    }
}
