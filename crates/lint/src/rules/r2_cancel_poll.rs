//! R2 — cancellation coverage in the hot loops.
//!
//! Guards the PR 1 cooperative-cancellation contract: every fingerprint
//! or selection loop must poll its `ExecContext` (budget / cancel
//! token) so a `SHUTDOWN` or a tripped budget degrades the run instead
//! of letting it spin. An inner loop is covered by an outer loop's
//! poll (the per-round cadence the design specifies), so only
//! *outermost* loops are checked.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Requires every outermost non-test loop to contain a cooperative
/// check, or an explicit `// lint: allow(R2) -- reason` in its body.
pub struct R2CancelPoll;

/// Whether the identifier reads as a cooperative budget/cancel touch.
fn cooperative(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    ident == "check"
        || ident == "check_cancelled"
        || lower.contains("charge")
        || lower.contains("budget")
        || lower.contains("cancel")
}

impl Rule for R2CancelPoll {
    fn id(&self) -> &'static str {
        "R2"
    }

    fn summary(&self) -> &'static str {
        "every outermost loop in the fingerprint/selection hot paths polls the budget/cancel token"
    }

    fn fix_hint(&self) -> &'static str {
        "poll inside the loop (`ctx.check(…)` / `ctx.charge_…`) or justify boundedness with \
         `// lint: allow(R2) -- <why the loop is short>` in the loop body"
    }

    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for lp in &f.loops {
            if lp.parent.is_some() || f.in_test(lp.kw_byte) {
                continue;
            }
            let compliant = f.code.iter().any(|&ti| {
                let t = f.toks[ti];
                t.kind == TokKind::Ident
                    && lp.body.0 <= t.start
                    && t.start < lp.body.1
                    && cooperative(f.text_of(&t))
            });
            if compliant
                || f.allowed_within("R2", lp.body)
                || f.allowed_at("R2", lp.line)
            {
                continue;
            }
            out.push(self.diag(
                &f.rel,
                lp.line,
                "loop body contains no cooperative budget/cancellation check".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("x.rs".into(), src.into());
        let mut out = Vec::new();
        R2CancelPoll.check_file(&f, &mut out);
        out
    }

    #[test]
    fn unpolled_loop_is_flagged_once() {
        let d = run("fn f() {\n  for i in 0..n {\n    for j in 0..m { g(i, j); }\n  }\n}\n");
        assert_eq!(d.len(), 1, "inner loop rides the outer finding");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn polled_loop_passes_and_covers_inner_loops() {
        let src = "fn f() {\n  for i in 0..n {\n    ctx.check(ExecPhase::Selection)?;\n    for j in 0..m { g(i, j); }\n  }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn charge_and_budget_idents_count() {
        assert!(run("fn f() { for c in cols { ctx.charge_dominance_tests(m)?; } }").is_empty());
        assert!(run("fn f() { while go { budget.poll()?; } }").is_empty());
        assert!(run("fn f() { loop { if token.is_cancelled() { break; } } }").is_empty());
    }

    #[test]
    fn allow_in_body_or_on_header_suppresses() {
        assert!(run(
            "fn f() {\n  for i in 0..t {\n    // lint: allow(R2) -- t is a small constant\n    g(i);\n  }\n}\n"
        )
        .is_empty());
        assert!(run(
            "fn f() {\n  // lint: allow(R2) -- bounded by k\n  for i in 0..k { g(i); }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn reasonless_allow_does_not_suppress() {
        let d = run("fn f() {\n  for i in 0..n {\n    // lint: allow(R2)\n    g(i);\n  }\n}\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn test_loops_pass() {
        assert!(run("#[cfg(test)]\nmod tests {\n  fn t() { for i in 0..n { g(i); } }\n}\n")
            .is_empty());
    }
}
