//! R1 — no panicking calls in non-test library code.
//!
//! Guards the PR 1 resilience contract: the pipeline, data and serving
//! layers degrade (typed errors, partial results) instead of aborting.
//! A stray `.unwrap()` on a lock or IO result turns one poisoned mutex
//! or one malformed request into a dead worker thread.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Forbids `.unwrap()`, `.expect(…)`, `panic!` and `unreachable!`
/// outside `#[cfg(test)]` / `#[test]` code.
pub struct R1NoPanic;

impl Rule for R1NoPanic {
    fn id(&self) -> &'static str {
        "R1"
    }

    fn summary(&self) -> &'static str {
        "no `.unwrap()` / `.expect()` / `panic!` / `unreachable!` in non-test code"
    }

    fn fix_hint(&self) -> &'static str {
        "return a typed error (propagate with `?`) or recover; a genuine invariant may be \
         kept with `// lint: allow(R1) -- <why the invariant holds>`"
    }

    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (c, &ti) in f.code.iter().enumerate() {
            let tok = f.toks[ti];
            if tok.kind != TokKind::Ident || f.in_test(tok.start) {
                continue;
            }
            let name = f.text_of(&tok);
            let found = match name {
                "unwrap" | "expect" => {
                    let after_dot = c > 0 && punct_is(f, c - 1, '.');
                    let called = punct_is(f, c + 1, '(');
                    (after_dot && called).then(|| format!("forbidden `.{name}()`"))
                }
                "panic" | "unreachable" => {
                    punct_is(f, c + 1, '!').then(|| format!("forbidden `{name}!`"))
                }
                _ => None,
            };
            if let Some(message) = found {
                out.push(self.diag(&f.rel, tok.line, message));
            }
        }
    }
}

fn punct_is(f: &SourceFile, c: usize, ch: char) -> bool {
    f.code.get(c).is_some_and(|&ti| {
        let t = f.toks[ti];
        t.kind == TokKind::Punct && f.text.as_bytes()[t.start] == ch as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse("x.rs".into(), src.into());
        let mut out = Vec::new();
        R1NoPanic.check_file(&f, &mut out);
        out
    }

    #[test]
    fn flags_the_four_forms() {
        let d = run(
            "fn f() {\n  a.unwrap();\n  b.expect(\"msg\");\n  panic!(\"boom\");\n  unreachable!();\n}\n",
        );
        assert_eq!(d.len(), 4);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[3].line, 5);
        assert!(d.iter().all(|d| d.rule == "R1"));
    }

    #[test]
    fn unwrap_or_variants_pass() {
        assert!(run("fn f() { a.unwrap_or(0); b.unwrap_or_else(|e| e.into_inner()); }").is_empty());
    }

    #[test]
    fn test_code_and_strings_pass() {
        assert!(run("#[cfg(test)]\nmod tests { fn t() { a.unwrap(); panic!(); } }").is_empty());
        assert!(run("fn f() { let s = \"do not .unwrap() here\"; }").is_empty());
    }

    #[test]
    fn should_panic_attr_and_panic_path_pass() {
        assert!(run("fn f() { std::panic::catch_unwind(g); }").is_empty());
    }
}
