//! The rule set. Each rule carries an id, a summary, a fix hint and a
//! pair of visit hooks: [`Rule::check_file`] for per-file findings and
//! [`Rule::check_workspace`] for cross-artifact consistency.
//!
//! Scope (which files each rule sees) lives in `lint.toml`, not in the
//! rule: the engine feeds a rule only files matching its `include`
//! globs, so rules stay pure visitors. Workspace rules additionally
//! see every parsed file plus the [`crate::graph::Graph`] built over
//! them, which is how the whole-program rules (R7–R9) reason across
//! crate boundaries.

mod r1_no_panic;
mod r2_cancel_poll;
mod r3_determinism;
mod r4_lock_io;
mod r5_safety_comment;
mod r6_stats_spec;
mod r7_lock_order;
mod r8_event_loop;
mod r9_verb_conformance;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::graph::Graph;
use crate::scan::SourceFile;

pub use r1_no_panic::R1NoPanic;
pub use r2_cancel_poll::R2CancelPoll;
pub use r3_determinism::R3Determinism;
pub use r4_lock_io::R4LockAcrossIo;
pub use r5_safety_comment::R5SafetyComment;
pub use r6_stats_spec::R6StatsSpec;
pub use r7_lock_order::R7LockOrder;
pub use r8_event_loop::R8EventLoop;
pub use r9_verb_conformance::R9VerbConformance;

/// Read-only view of the lint root handed to workspace-level hooks.
pub struct WorkspaceView<'a> {
    /// The lint root directory.
    pub root: &'a std::path::Path,
    /// Every parsed in-scope file, path-sorted.
    pub files: &'a [SourceFile],
    /// The call/lock graph built over `files`.
    pub graph: &'a Graph,
}

impl WorkspaceView<'_> {
    /// Reads a root-relative file, if it exists.
    pub fn read(&self, rel: &str) -> Option<String> {
        std::fs::read_to_string(self.root.join(rel)).ok()
    }
}

/// One invariant checker. `Sync` because the engine fans per-file
/// checks out over a thread scope.
pub trait Rule: Sync {
    /// Stable rule id (`R1` … `R9`) — what allow comments reference.
    fn id(&self) -> &'static str;

    /// One-line description of the invariant the rule guards.
    fn summary(&self) -> &'static str;

    /// How a violation is fixed (or legitimately suppressed).
    fn fix_hint(&self) -> &'static str;

    /// Per-file hook; `f` is already scoped by the rule's globs.
    fn check_file(&self, f: &SourceFile, out: &mut Vec<Diagnostic>) {
        let _ = (f, out);
    }

    /// Whole-workspace hook for cross-artifact rules.
    fn check_workspace(&self, ws: &WorkspaceView<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let _ = (ws, cfg, out);
    }

    /// Builds a diagnostic attributed to this rule.
    fn diag(&self, file: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: self.id().to_string(),
            message,
            hint: self.fix_hint().to_string(),
        }
    }
}

/// Every rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(R1NoPanic),
        Box::new(R2CancelPoll),
        Box::new(R3Determinism),
        Box::new(R4LockAcrossIo),
        Box::new(R5SafetyComment),
        Box::new(R6StatsSpec),
        Box::new(R7LockOrder),
        Box::new(R8EventLoop),
        Box::new(R9VerbConformance),
    ]
}
