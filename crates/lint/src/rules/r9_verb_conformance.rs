//! R9 — wire-verb conformance across artifacts.
//!
//! R6 keeps the STATS counters in lockstep; this rule does the same
//! for the verb set itself. Four artifact groups describe the wire
//! surface: the parser (`protocol.rs` match arms), the senders
//! (`client.rs` typed helpers, `cluster.rs` fan-out legs, the CLI),
//! the README verb documentation, and the integration suites. A verb
//! added in one place and forgotten in another is a CI failure.
//!
//! Detection is lexical, like R6: a *parsed* verb is an exact all-caps
//! alphabetic string literal (≥ 4 chars) in non-test code of a
//! configured parse file; a *sent* verb is a literal in a sender file
//! equal to the verb or starting with `"VERB "` (typed helpers and
//! `to_line` format strings both match); README coverage is a
//! word-boundary match; test coverage is a case-insensitive
//! word-boundary match (suites drive verbs through typed client
//! helpers named after them).

use super::{Rule, WorkspaceView};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// Cross-checks parsed verbs against senders, README and tests.
pub struct R9VerbConformance;

impl Rule for R9VerbConformance {
    fn id(&self) -> &'static str {
        "R9"
    }

    fn summary(&self) -> &'static str {
        "every parsed wire verb has a sender, a README entry and test coverage (and vice versa)"
    }

    fn fix_hint(&self) -> &'static str {
        "add the verb to the missing artifact (sender helper, README verb table, \
         integration test); a deliberately internal verb may carry \
         `// lint: allow(R9) -- <why it stays undocumented>`"
    }

    fn check_workspace(&self, ws: &WorkspaceView<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let mut parse_files: Vec<SourceFile> = Vec::new();
        for rel in &cfg.r9_parse {
            match load(ws, rel) {
                Some(f) => parse_files.push(f),
                None => out.push(self.missing(rel)),
            }
        }
        let mut sender_files: Vec<SourceFile> = Vec::new();
        for rel in &cfg.r9_senders {
            match load(ws, rel) {
                Some(f) => sender_files.push(f),
                None => out.push(self.missing(rel)),
            }
        }
        let readme = ws.read(&cfg.r9_readme);
        if readme.is_none() {
            out.push(self.missing(&cfg.r9_readme));
        }
        let tests: Vec<(String, String)> = cfg
            .r9_tests
            .iter()
            .filter_map(|rel| ws.read(rel).map(|t| (rel.clone(), t.to_lowercase())))
            .collect();
        if tests.len() < cfg.r9_tests.len() {
            for rel in &cfg.r9_tests {
                if ws.read(rel).is_none() {
                    out.push(self.missing(rel));
                }
            }
        }

        // Parsed verbs: exact all-caps literals, first site wins.
        let mut parsed: Vec<(String, usize, u32)> = Vec::new(); // (verb, file idx, line)
        for (pi, f) in parse_files.iter().enumerate() {
            for (verb, line, _) in verb_literals(f, true) {
                if !parsed.iter().any(|(v, _, _)| *v == verb) {
                    parsed.push((verb, pi, line));
                }
            }
        }
        // Sent verbs: exact or `"VERB …"`-prefixed literals.
        let mut sent: Vec<(String, usize, u32)> = Vec::new();
        for (si, f) in sender_files.iter().enumerate() {
            for (verb, line, _) in verb_literals(f, false) {
                if !sent.iter().any(|(v, _, _)| *v == verb) {
                    sent.push((verb, si, line));
                }
            }
        }

        for (verb, pi, line) in &parsed {
            let f = &parse_files[*pi];
            if f.allowed_at("R9", *line) {
                // Mark the shared file too, so --strict-allows sees the
                // suppression when the artifact is in the lint scope.
                if let Some(shared) = ws.files.iter().find(|s| s.rel == f.rel) {
                    shared.allowed_at("R9", *line);
                }
                continue;
            }
            if !sent.iter().any(|(v, _, _)| v == verb) {
                out.push(self.diag(
                    &f.rel,
                    *line,
                    format!("verb `{verb}` is parsed here but no configured sender emits it"),
                ));
            }
            if let Some(doc) = &readme {
                if !word_match(doc, verb) {
                    out.push(self.diag(
                        &f.rel,
                        *line,
                        format!(
                            "verb `{verb}` is parsed here but missing from `{}`",
                            cfg.r9_readme
                        ),
                    ));
                }
            }
            if !tests.is_empty() {
                let lower = verb.to_lowercase();
                if !tests.iter().any(|(_, t)| word_match(t, &lower)) {
                    out.push(self.diag(
                        &f.rel,
                        *line,
                        format!(
                            "verb `{verb}` is parsed here but never exercised in [{}]",
                            cfg.r9_tests.join(", ")
                        ),
                    ));
                }
            }
        }
        for (verb, si, line) in &sent {
            if parsed.iter().any(|(v, _, _)| v == verb) {
                continue;
            }
            let f = &sender_files[*si];
            if f.allowed_at("R9", *line) {
                if let Some(shared) = ws.files.iter().find(|s| s.rel == f.rel) {
                    shared.allowed_at("R9", *line);
                }
                continue;
            }
            out.push(self.diag(
                &f.rel,
                *line,
                format!("verb `{verb}` is sent here but no configured parser accepts it"),
            ));
        }
    }
}

impl R9VerbConformance {
    fn missing(&self, rel: &str) -> Diagnostic {
        self.diag(rel, 1, format!("configured artifact `{rel}` not found (check lint.toml [rules.R9])"))
    }
}

/// Loads an artifact: the engine-parsed file when in scope (so allow
/// marking feeds `--strict-allows`), else a fresh parse from disk.
fn load(ws: &WorkspaceView<'_>, rel: &str) -> Option<SourceFile> {
    if let Some(f) = ws.files.iter().find(|f| f.rel == rel) {
        return Some(SourceFile::parse(rel.to_string(), f.text.clone()));
    }
    ws.read(rel).map(|text| SourceFile::parse(rel.to_string(), text))
}

/// Verb-shaped string literals outside test code: `(verb, line, byte)`.
/// `exact` restricts to literals that are *only* the verb (parse
/// arms); otherwise a `"VERB …"` prefix also matches (senders).
fn verb_literals(f: &SourceFile, exact: bool) -> Vec<(String, u32, usize)> {
    let mut out = Vec::new();
    for &ti in &f.code {
        let t = f.toks[ti];
        if t.kind != TokKind::Literal || f.in_test(t.start) {
            continue;
        }
        let text = f.text_of(&t);
        let Some(inner) = text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
            continue;
        };
        let candidate = if exact {
            inner
        } else {
            inner.split(' ').next().unwrap_or("")
        };
        if !exact && candidate.len() < inner.len() && !inner[candidate.len()..].starts_with(' ') {
            continue;
        }
        if candidate.len() >= 4 && candidate.bytes().all(|b| b.is_ascii_uppercase()) {
            out.push((candidate.to_string(), t.line, t.start));
        }
    }
    out
}

/// Whether `word` occurs in `text` with non-word characters (or edges)
/// on both sides.
fn word_match(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_word(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_word(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn stage(tag: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("skydiver-lint-r9-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, text) in files {
            let p = dir.join(rel);
            if let Some(parent) = p.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let _ = std::fs::write(p, text);
        }
        dir
    }

    fn check(dir: &std::path::Path) -> Vec<Diagnostic> {
        let graph = Graph::default();
        let ws = WorkspaceView { root: dir, files: &[], graph: &graph };
        let cfg = Config {
            r9_parse: vec!["server.rs".into()],
            r9_senders: vec!["client.rs".into()],
            r9_readme: "README.md".into(),
            r9_tests: vec!["wire.rs".into()],
            ..Config::default()
        };
        let mut out = Vec::new();
        R9VerbConformance.check_workspace(&ws, &cfg, &mut out);
        out
    }

    #[test]
    fn aligned_artifacts_pass() {
        let dir = stage(
            "clean",
            &[
                ("server.rs", "fn p(v: &str) { match v { \"PING\" => {} _ => {} } }\n"),
                ("client.rs", "fn c() { send(\"PING now\"); }\n"),
                ("README.md", "The PING verb checks liveness.\n"),
                ("wire.rs", "fn t() { client.ping(); }\n"),
            ],
        );
        let d = check(&dir);
        assert!(d.is_empty(), "{d:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verb_missing_from_readme_sender_and_tests_is_three_findings() {
        let dir = stage(
            "drift",
            &[
                ("server.rs", "fn p(v: &str) { match v { \"PING\" => {} _ => {} } }\n"),
                ("client.rs", "fn c() {}\n"),
                ("README.md", "No verbs documented.\n"),
                ("wire.rs", "fn t() {}\n"),
            ],
        );
        let d = check(&dir);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("no configured sender")));
        assert!(d.iter().any(|x| x.message.contains("missing from `README.md`")));
        assert!(d.iter().any(|x| x.message.contains("never exercised")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sent_but_unparsed_verb_is_flagged_at_the_sender() {
        let dir = stage(
            "ghost",
            &[
                ("server.rs", "fn p(v: &str) { match v { \"PING\" => {} _ => {} } }\n"),
                ("client.rs", "fn c() { send(\"PING\"); send(\"KICK now\"); }\n"),
                ("README.md", "PING only.\n"),
                ("wire.rs", "fn t() { ping(); }\n"),
            ],
        );
        let d = check(&dir);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].file, "client.rs");
        assert!(d[0].message.contains("KICK"), "{}", d[0].message);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn allow_at_the_parse_arm_suppresses() {
        let dir = stage(
            "allowed",
            &[
                (
                    "server.rs",
                    "fn p(v: &str) {\n  match v {\n    // lint: allow(R9) -- internal diagnostic verb, deliberately undocumented\n    \"PING\" => {}\n    _ => {}\n  }\n}\n",
                ),
                ("client.rs", "fn c() {}\n"),
                ("README.md", "Nothing here.\n"),
                ("wire.rs", "fn t() {}\n"),
            ],
        );
        let d = check(&dir);
        assert!(d.is_empty(), "{d:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn substring_hits_are_not_word_matches() {
        assert!(word_match("the LOAD verb", "LOAD"));
        assert!(!word_match("RELOADED", "LOAD"));
        assert!(!word_match("load_points", "load"));
        assert!(word_match("client.load(x)", "load"));
    }
}
