//! The structural scanner: turns a token stream into the shapes the
//! rules reason about — test regions, loops (with nesting), `let`
//! bindings, `unsafe` blocks and `// lint: allow(...)` comments.
//!
//! This is deliberately *not* a Rust parser. It tracks exactly the
//! structure the rule set needs: matched braces, attribute → item
//! extents (to exclude `#[cfg(test)]` / `#[test]` code), loop bodies
//! and binding scopes. Anything it cannot recognise it skips, so a
//! construct outside this subset degrades to "no finding", never to a
//! crash or a false structural claim.

use crate::lexer::{lex, Tok, TokKind};

/// One loop (`for`/`while`/`loop`) found in a file.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// 1-based line of the loop keyword.
    pub line: u32,
    /// Byte offset of the loop keyword.
    pub kw_byte: usize,
    /// Byte range of the loop body including its braces.
    pub body: (usize, usize),
    /// Index (into [`SourceFile::loops`]) of the innermost enclosing
    /// loop, if any.
    pub parent: Option<usize>,
}

/// One `let` binding with a resolvable single-identifier pattern.
#[derive(Debug, Clone)]
pub struct LetBind {
    /// The bound name (`let [mut] name …`).
    pub name: String,
    /// 1-based line of the `let`.
    pub line: u32,
    /// Byte range of the initializer expression (empty when there is
    /// no `=`, e.g. `let x;`).
    pub init: (usize, usize),
    /// Byte range of the type ascription, when present (`let x: T = …`).
    pub ty: (usize, usize),
    /// Byte offset just past the terminating `;`.
    pub decl_end: usize,
    /// Byte offset of the closing brace of the enclosing block — the
    /// end of the binding's lexical scope.
    pub scope_end: usize,
}

/// One `unsafe { … }` block (not `unsafe fn` / `unsafe impl`).
#[derive(Debug, Clone)]
pub struct UnsafeBlock {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Byte offset of the `unsafe` keyword.
    pub byte: usize,
}

/// One parsed `// lint: allow(RULE[, RULE]) -- reason` comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Byte offset of the comment.
    pub byte: usize,
    /// The rule ids listed inside `allow(...)`.
    pub rules: Vec<String>,
    /// Whether a non-empty reason follows the `--` separator.
    pub has_reason: bool,
    /// Set when the allow suppresses at least one finding during a
    /// run; `--strict-allows` reports reasoned allows left unused.
    pub used: std::cell::Cell<bool>,
}

/// A lexed and structurally scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with forward slashes.
    pub rel: String,
    /// The raw source text.
    pub text: String,
    /// The full token stream, comments included.
    pub toks: Vec<Tok>,
    /// Indices into [`SourceFile::toks`] of non-comment tokens — the
    /// stream rules walk when comments must not interfere.
    pub code: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Every loop, in source order (parents precede children).
    pub loops: Vec<LoopInfo>,
    /// Every simple `let` binding.
    pub lets: Vec<LetBind>,
    /// Every `unsafe` block.
    pub unsafes: Vec<UnsafeBlock>,
    /// Every `// lint: allow(...)` comment.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lexes and scans `text` as the file `rel`.
    pub fn parse(rel: String, text: String) -> SourceFile {
        let toks = lex(&text);
        let mut f = SourceFile {
            rel,
            text,
            toks,
            code: Vec::new(),
            test_regions: Vec::new(),
            loops: Vec::new(),
            lets: Vec::new(),
            unsafes: Vec::new(),
            allows: Vec::new(),
        };
        f.scan();
        f
    }

    /// Whether the byte offset falls inside test-only code.
    pub fn in_test(&self, byte: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s <= byte && byte < e)
    }

    /// The token's text.
    pub fn text_of(&self, t: &Tok) -> &str {
        t.text(&self.text)
    }

    /// Whether an `allow` for `rule` *with a reason* covers `line`: the
    /// comment sits on the line itself or above it, separated from the
    /// code only by comment lines (a reason may wrap onto continuation
    /// lines). A match marks the allow used (see [`Allow::used`]).
    pub fn allowed_at(&self, rule: &str, line: u32) -> bool {
        let hit = self.allows.iter().find(|a| {
            a.has_reason
                && a.rules.iter().any(|r| r == rule)
                && a.line <= line
                && (a.line == line
                    || ((a.line + 1)..line).all(|l| self.comment_only_line(l)))
        });
        if let Some(a) = hit {
            a.used.set(true);
            return true;
        }
        false
    }

    /// Whether the line holds comments and nothing else.
    fn comment_only_line(&self, line: u32) -> bool {
        let mut has_comment = false;
        for t in &self.toks {
            if t.line != line {
                continue;
            }
            if is_comment(t.kind) {
                has_comment = true;
            } else {
                return false;
            }
        }
        has_comment
    }

    /// Whether an `allow` for `rule` with a reason sits inside the
    /// byte range (used for loop bodies). A match marks the allow used.
    pub fn allowed_within(&self, rule: &str, range: (usize, usize)) -> bool {
        let hit = self.allows.iter().find(|a| {
            a.has_reason
                && a.rules.iter().any(|r| r == rule)
                && range.0 <= a.byte
                && a.byte < range.1
        });
        if let Some(a) = hit {
            a.used.set(true);
            return true;
        }
        false
    }

    fn scan(&mut self) {
        // Indices of non-comment tokens; all structure walks use these.
        self.code =
            (0..self.toks.len()).filter(|&i| !is_comment(self.toks[i].kind)).collect();
        let code = self.code.clone();
        let closer = match_braces(&self.text, &self.toks, &code);
        self.scan_allows();
        self.scan_test_regions(&code, &closer);
        self.scan_structure(&code, &closer);
    }

    fn scan_allows(&mut self) {
        for t in &self.toks {
            if !is_comment(t.kind) {
                continue;
            }
            let text = t.text(&self.text);
            // Doc comments *describe* the grammar (module docs, rule
            // hints); only plain comments *use* it.
            if text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
            {
                continue;
            }
            let Some(pos) = text.find("lint: allow(") else { continue };
            let rest = &text[pos + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else { continue };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            let tail = &rest[close + 1..];
            let has_reason = tail
                .trim_start()
                .strip_prefix("--")
                .is_some_and(|r| !r.trim().trim_end_matches("*/").trim().is_empty());
            self.allows.push(Allow {
                line: t.line,
                byte: t.start,
                rules,
                has_reason,
                used: std::cell::Cell::new(false),
            });
        }
    }

    /// Marks `#[cfg(test)]` / `#[test]` items (attribute through item
    /// end) as test regions.
    fn scan_test_regions(&mut self, code: &[usize], closer: &[Option<usize>]) {
        let mut c = 0usize;
        while c < code.len() {
            let ti = code[c];
            if !(self.is_punct(ti, '#') && self.peek_punct(code, c + 1, '[')) {
                c += 1;
                continue;
            }
            // An outer attribute: remember where it starts, collect every
            // stacked attribute, then find the annotated item's extent.
            let attr_start_byte = self.toks[ti].start;
            let mut testish = false;
            while c < code.len()
                && self.is_punct(code[c], '#')
                && self.peek_punct(code, c + 1, '[')
            {
                let open = c + 1;
                let close = self.matching_bracket(code, open);
                testish |= self.attr_mentions_test(code, open, close);
                c = close + 1;
            }
            if !testish {
                continue;
            }
            // Item extent: first `;` at depth 0 or the matching `}` of
            // the first `{` at depth 0.
            let mut depth = 0i32;
            let mut d = c;
            while d < code.len() {
                let t = code[d];
                if self.is_punct(t, '(') || self.is_punct(t, '[') {
                    depth += 1;
                } else if self.is_punct(t, ')') || self.is_punct(t, ']') {
                    depth -= 1;
                } else if depth == 0 && self.is_punct(t, ';') {
                    break;
                } else if depth == 0 && self.is_punct(t, '{') {
                    if let Some(cl) = closer[t] {
                        d = code.iter().position(|&x| x == cl).unwrap_or(d);
                    }
                    break;
                }
                d += 1;
            }
            let end_byte = if d < code.len() { self.toks[code[d]].end } else { self.text.len() };
            self.test_regions.push((attr_start_byte, end_byte));
            c = d + 1;
        }
    }

    /// One linear pass collecting loops, lets and unsafe blocks.
    fn scan_structure(&mut self, code: &[usize], closer: &[Option<usize>]) {
        let mut brace_stack: Vec<usize> = Vec::new(); // token idx of open `{`
        let mut loop_stack: Vec<usize> = Vec::new(); // indices into self.loops
        for c in 0..code.len() {
            let ti = code[c];
            let tok = self.toks[ti];
            while let Some(&l) = loop_stack.last() {
                if tok.start >= self.loops[l].body.1 {
                    loop_stack.pop();
                } else {
                    break;
                }
            }
            if self.is_punct(ti, '{') {
                brace_stack.push(ti);
                continue;
            }
            if self.is_punct(ti, '}') {
                brace_stack.pop();
                continue;
            }
            if tok.kind != TokKind::Ident {
                continue;
            }
            match self.text_of(&tok) {
                kw @ ("for" | "while" | "loop") => {
                    if let Some(body) = self.loop_body(code, c, kw, closer) {
                        // On malformed (unbalanced-brace) input a body can
                        // pair with a `}` outside the enclosing loop; only a
                        // loop that truly contains the body may be parent.
                        let parent = loop_stack.iter().rev().copied().find(|&l| {
                            let (ps, pe) = self.loops[l].body;
                            ps <= body.0 && body.1 <= pe
                        });
                        self.loops.push(LoopInfo {
                            line: tok.line,
                            kw_byte: tok.start,
                            body,
                            parent,
                        });
                        loop_stack.push(self.loops.len() - 1);
                    }
                }
                "let" => {
                    // Not `if let` / `while let` / `else … let` chains.
                    let prev_is_cond = c > 0
                        && matches!(
                            self.text_of(&self.toks[code[c - 1]]),
                            "if" | "while" | "&&" | "||"
                        );
                    if !prev_is_cond {
                        self.scan_let(code, c, &brace_stack, closer);
                    }
                }
                "unsafe"
                    if self.peek_punct(code, c + 1, '{') => {
                        self.unsafes.push(UnsafeBlock { line: tok.line, byte: tok.start });
                    }
                _ => {}
            }
        }
    }

    /// Resolves a loop keyword at code index `c` to its body byte
    /// range, or `None` when it is not actually a loop (`impl … for`,
    /// `for<'a>` bounds).
    fn loop_body(
        &self,
        code: &[usize],
        c: usize,
        kw: &str,
        closer: &[Option<usize>],
    ) -> Option<(usize, usize)> {
        if kw == "for" {
            // HRTB `for<'a>` — not a loop.
            if self.peek_punct(code, c + 1, '<') {
                return None;
            }
            // `impl Trait for Type` — no `in` before the body brace.
            let mut depth = 0i32;
            let mut saw_in = false;
            for &ti in &code[c + 1..] {
                if self.is_punct(ti, '(') || self.is_punct(ti, '[') {
                    depth += 1;
                } else if self.is_punct(ti, ')') || self.is_punct(ti, ']') {
                    depth -= 1;
                } else if depth == 0 && self.toks[ti].kind == TokKind::Ident {
                    if self.text_of(&self.toks[ti]) == "in" {
                        saw_in = true;
                    }
                } else if depth == 0 && self.is_punct(ti, '{') {
                    if !saw_in {
                        return None;
                    }
                    return self.body_range(ti, closer);
                } else if depth == 0 && self.is_punct(ti, ';') {
                    return None;
                }
            }
            return None;
        }
        // `while` / `loop`: first `{` at bracket depth 0.
        let mut depth = 0i32;
        for &ti in &code[c + 1..] {
            if self.is_punct(ti, '(') || self.is_punct(ti, '[') {
                depth += 1;
            } else if self.is_punct(ti, ')') || self.is_punct(ti, ']') {
                depth -= 1;
            } else if depth == 0 && self.is_punct(ti, '{') {
                return self.body_range(ti, closer);
            } else if depth == 0 && self.is_punct(ti, ';') {
                return None;
            }
        }
        None
    }

    fn body_range(&self, open_ti: usize, closer: &[Option<usize>]) -> Option<(usize, usize)> {
        let close = closer[open_ti]?;
        Some((self.toks[open_ti].start, self.toks[close].end))
    }

    /// Records `let [mut] name [: T] = init ;` bindings.
    fn scan_let(
        &mut self,
        code: &[usize],
        c: usize,
        brace_stack: &[usize],
        closer: &[Option<usize>],
    ) {
        let mut d = c + 1;
        if d < code.len() && self.text_of(&self.toks[code[d]]) == "mut" {
            d += 1;
        }
        let Some(&name_ti) = code.get(d) else { return };
        let name_tok = self.toks[name_ti];
        if name_tok.kind != TokKind::Ident {
            return; // tuple / struct pattern — out of the subset
        }
        // Destructuring `let Some(x) = …` / `let Point { .. } = …` —
        // the ident is a path, not a binding — detect by a following
        // `(`/`{`/`::`.
        if self.peek_punct(code, d + 1, '(')
            || self.peek_punct(code, d + 1, '{')
            || (self.peek_punct(code, d + 1, ':') && self.peek_punct(code, d + 2, ':'))
        {
            return;
        }
        let name = self.text_of(&name_tok).to_string();
        // Scan to `=` (skipping a type ascription) then to the `;`.
        let mut depth = 0i32;
        let mut e = d + 1;
        let mut ty = (0usize, 0usize);
        let mut ty_start: Option<usize> = None;
        let mut init_start: Option<usize> = None;
        while e < code.len() {
            let ti = code[e];
            if self.is_punct(ti, '(') || self.is_punct(ti, '[') || self.is_punct(ti, '{') {
                depth += 1;
            } else if self.is_punct(ti, ')') || self.is_punct(ti, ']') || self.is_punct(ti, '}') {
                depth -= 1;
                if depth < 0 {
                    return; // malformed; bail
                }
            } else if depth == 0 && init_start.is_none() && self.is_punct(ti, ':') {
                ty_start = Some(self.toks[ti].end);
            } else if depth == 0
                && init_start.is_none()
                && self.is_punct(ti, '=')
                && !self.adjacent_punct(code, e, e + 1, '=')
                && !self.compound_before(code, e)
            {
                if let Some(ts) = ty_start {
                    ty = (ts, self.toks[ti].start);
                }
                init_start = Some(self.toks[ti].end);
            } else if depth == 0 && self.is_punct(ti, ';') {
                let end = self.toks[ti].start;
                let init = match init_start {
                    Some(s) => (s, end),
                    None => (end, end),
                };
                if ty_start.is_some() && init_start.is_none() {
                    ty = (ty_start.unwrap_or(end), end);
                }
                let scope_end = brace_stack
                    .last()
                    .and_then(|&open| closer[open])
                    .map(|cl| self.toks[cl].start)
                    .unwrap_or(self.text.len());
                self.lets.push(LetBind {
                    name,
                    line: name_tok.line,
                    init,
                    ty,
                    decl_end: self.toks[ti].end,
                    scope_end,
                });
                return;
            }
            e += 1;
        }
    }

    fn attr_mentions_test(&self, code: &[usize], open: usize, close: usize) -> bool {
        code[open..=close.min(code.len().saturating_sub(1))].iter().any(|&ti| {
            self.toks[ti].kind == TokKind::Ident && self.text_of(&self.toks[ti]) == "test"
        })
    }

    /// Code index of the `]` matching the `[` at code index `open`.
    fn matching_bracket(&self, code: &[usize], open: usize) -> usize {
        let mut depth = 0i32;
        for (off, &ti) in code[open..].iter().enumerate() {
            if self.is_punct(ti, '[') {
                depth += 1;
            } else if self.is_punct(ti, ']') {
                depth -= 1;
                if depth == 0 {
                    return open + off;
                }
            }
        }
        code.len().saturating_sub(1)
    }

    fn is_punct(&self, ti: usize, ch: char) -> bool {
        let t = self.toks[ti];
        t.kind == TokKind::Punct && self.text.as_bytes()[t.start] == ch as u8
    }

    fn peek_punct(&self, code: &[usize], c: usize, ch: char) -> bool {
        code.get(c).is_some_and(|&ti| self.is_punct(ti, ch))
    }

    /// Whether the token at code index `b` is the punct `ch` and sits
    /// byte-adjacent to the token at code index `a` (i.e. the two form
    /// one compound operator like `==`).
    fn adjacent_punct(&self, code: &[usize], a: usize, b: usize, ch: char) -> bool {
        match (code.get(a), code.get(b)) {
            (Some(&ta), Some(&tb)) => {
                self.is_punct(tb, ch) && self.toks[ta].end == self.toks[tb].start
            }
            _ => false,
        }
    }

    /// Whether the `=` at code index `e` is the tail of a compound
    /// operator (`==`, `!=`, `<=`, `>=`, `+=`, …): the previous token
    /// is an operator punct touching it byte-to-byte.
    fn compound_before(&self, code: &[usize], e: usize) -> bool {
        if e == 0 {
            return false;
        }
        let prev = self.toks[code[e - 1]];
        if prev.kind != TokKind::Punct || prev.end != self.toks[code[e]].start {
            return false;
        }
        matches!(
            self.text.as_bytes()[prev.start],
            b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^'
        )
    }
}

fn is_comment(k: TokKind) -> bool {
    matches!(k, TokKind::LineComment | TokKind::BlockComment)
}

/// For each token index holding `{`, the index of its matching `}`.
fn match_braces(src: &str, toks: &[Tok], code: &[usize]) -> Vec<Option<usize>> {
    let mut closer = vec![None; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &ti in code {
        let t = toks[ti];
        if t.kind != TokKind::Punct {
            continue;
        }
        match src.as_bytes()[t.start] {
            b'{' => stack.push(ti),
            b'}' => {
                if let Some(open) = stack.pop() {
                    closer[open] = Some(ti);
                }
            }
            _ => {}
        }
    }
    closer
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".into(), src.into())
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let f = parse(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n",
        );
        assert_eq!(f.test_regions.len(), 1);
        let pos = f.text.find("y.unwrap").expect("present");
        assert!(f.in_test(pos));
        let live = f.text.find("x.unwrap").expect("present");
        assert!(!f.in_test(live));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let f = parse("#[test]\nfn t() { a.unwrap(); }\nfn live() {}\n");
        assert_eq!(f.test_regions.len(), 1);
        assert!(f.in_test(f.text.find("a.unwrap").expect("present")));
        assert!(!f.in_test(f.text.find("live").expect("present")));
    }

    #[test]
    fn loops_and_nesting() {
        let f = parse(
            "fn f() {\n  for i in 0..n {\n    while x {\n      g();\n    }\n  }\n  loop { break; }\n}\n",
        );
        assert_eq!(f.loops.len(), 3);
        assert_eq!(f.loops[0].parent, None);
        assert_eq!(f.loops[1].parent, Some(0));
        assert_eq!(f.loops[2].parent, None);
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let f = parse("impl Trait for Type { fn m(&self) {} }\n");
        assert!(f.loops.is_empty());
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        let f = parse("fn f<F: for<'a> Fn(&'a u8)>(g: F) { g(&1); }\n");
        assert!(f.loops.is_empty());
    }

    #[test]
    fn while_let_is_a_loop_and_binds_nothing() {
        let f = parse("fn f() { while let Some(x) = it.next() { use_(x); } }\n");
        assert_eq!(f.loops.len(), 1);
        assert!(f.lets.is_empty());
    }

    #[test]
    fn let_binding_with_init_and_scope() {
        let f = parse("fn f() {\n  let mut g = m.lock();\n  g.push(1);\n}\n");
        assert_eq!(f.lets.len(), 1);
        let l = &f.lets[0];
        assert_eq!(l.name, "g");
        assert!(f.text[l.init.0..l.init.1].contains(".lock()"));
        assert!(l.scope_end >= f.text.rfind('}').expect("brace"));
    }

    #[test]
    fn destructuring_let_is_skipped() {
        let f = parse("fn f() { let Some(x) = opt else { return }; let (a, b) = pair; }\n");
        assert!(f.lets.is_empty());
    }

    #[test]
    fn typed_let_records_type() {
        let f = parse("fn f() { let v: Vec<HashMap<K, V>> = build(); }\n");
        assert_eq!(f.lets.len(), 1);
        let l = &f.lets[0];
        assert!(f.text[l.ty.0..l.ty.1].contains("HashMap"));
    }

    #[test]
    fn unsafe_block_found_unsafe_fn_ignored() {
        let f = parse("unsafe fn g() {}\nfn f() { unsafe { std::ptr::read(p) }; }\n");
        assert_eq!(f.unsafes.len(), 1);
        assert_eq!(f.unsafes[0].line, 2);
    }

    #[test]
    fn allow_comments_parse() {
        let f = parse(
            "// lint: allow(R1) -- poisoning means a panic elsewhere\n\
             x.unwrap();\n\
             // lint: allow(R2, R3)\n\
             y();\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert!(f.allows[0].has_reason);
        assert_eq!(f.allows[0].rules, vec!["R1"]);
        assert!(!f.allows[1].has_reason);
        assert_eq!(f.allows[1].rules, vec!["R2", "R3"]);
        assert!(f.allowed_at("R1", 2));
        assert!(!f.allowed_at("R2", 4), "reasonless allow must not suppress");
    }

    #[test]
    fn allow_reason_may_wrap_onto_continuation_lines() {
        let f = parse(
            "// lint: allow(R1) -- the key was observed two lines up\n\
             // under &mut self, so removal cannot miss\n\
             x.remove(k).expect(\"present\");\n\
             \n\
             y.unwrap();\n",
        );
        assert!(f.allowed_at("R1", 3), "comment continuation keeps the allow attached");
        assert!(!f.allowed_at("R1", 5), "a blank line breaks the attachment");
    }

    #[test]
    fn doc_comments_do_not_form_allows() {
        let f = parse(
            "//! The grammar is `// lint: allow(RULE) -- reason`.\n\
             /// Suppress with `// lint: allow(R1) -- why`.\n\
             /** Or `lint: allow(R2) -- why` in block docs. */\n\
             fn f() {}\n",
        );
        assert!(f.allows.is_empty(), "doc comments describe the grammar, never use it");
    }
}
