//! `skydiver-lint` — the workspace invariant checker.
//!
//! The compiler checks types; this crate checks the *contracts* PRs
//! 1–4 were built on, the ones nothing else enforces mechanically:
//!
//! | rule | invariant guarded |
//! |---|---|
//! | R1 | resilience — no panicking calls in non-test library code |
//! | R2 | cancellation — hot fingerprint/selection loops poll the budget |
//! | R3 | determinism — no wall clocks / hash-order iteration in bit-identical paths |
//! | R4 | lock discipline — no guard held across socket/file I/O in `serve` |
//! | R5 | `unsafe` blocks carry `// SAFETY:` justifications |
//! | R6 | metrics struct ↔ STATS serialization ↔ README wire-spec agree |
//! | R7 | lock acquisition order is acyclic across the workspace |
//! | R8 | nothing reachable from the event loop blocks |
//! | R9 | parsed wire verbs ↔ senders ↔ README ↔ test coverage agree |
//!
//! R1–R5 are per-file scans; R6–R9 are whole-workspace rules fed by
//! the [`graph::Graph`] (symbol table, approximate call graph, lock
//! sites) built over every in-scope file.
//!
//! The pipeline is `lexer` → `scan` → `graph` → `rules`, configured by
//! [`config::Config`] (`lint.toml`) and reported via
//! [`diag::Report`]. Everything is std-only and deterministic: the
//! per-file phase fans out over a thread scope, but files are indexed
//! in sorted order and findings are sorted before output, so two runs
//! over the same tree produce byte-identical reports — rule R3 applied
//! to ourselves.
//!
//! Suppression grammar (reason mandatory, checked by the engine):
//!
//! ```text
//! // lint: allow(R1) -- the LRU order vec and the map are updated together
//! ```
//!
//! A reasonless `allow` never suppresses and is itself reported as
//! `A0`. Under `--strict-allows` a reasoned allow that suppressed
//! nothing is reported as `A1` — suppressions must earn their keep.

#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod glob;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use config::Config;
use diag::{Diagnostic, Report};
use glob::glob_match;
use graph::Graph;
use rules::{all_rules, Rule, WorkspaceView};
use scan::SourceFile;

/// Runs every enabled rule over the tree rooted at `root`.
///
/// Fails (with a message, not a diagnostic) only on environment
/// errors: unreadable root, broken config. Rule findings — including
/// "configured artifact missing" — are diagnostics in the returned
/// [`Report`].
pub fn run(root: &Path, cfg: &Config) -> Result<Report, String> {
    let rules: Vec<Box<dyn Rule>> =
        all_rules().into_iter().filter(|r| cfg.rules.iter().any(|id| id == r.id())).collect();

    // Union of every enabled rule's scope → the files to parse.
    let mut rel_paths = Vec::new();
    walk(root, root, &mut rel_paths)?;
    rel_paths.sort();
    let scoped: Vec<String> = rel_paths
        .into_iter()
        .filter(|rel| {
            rules.iter().any(|r| {
                cfg.includes
                    .get(r.id())
                    .is_some_and(|globs| globs.iter().any(|g| glob_match(g, rel)))
            })
        })
        .collect();

    // Parse + per-file rules, fanned out over a worker pool. Workers
    // pull indices from a shared counter; results carry the index, so
    // merge order (and therefore output) is independent of scheduling.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(scoped.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let per_file = std::thread::scope(|s| -> Result<Vec<(usize, SourceFile, Vec<Diagnostic>)>, String> {
        let next = &next;
        let scoped = &scoped;
        let rules = &rules;
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(s.spawn(move || -> Result<Vec<(usize, SourceFile, Vec<Diagnostic>)>, String> {
                let mut batch = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(rel) = scoped.get(i) else { break };
                    let text = std::fs::read_to_string(root.join(rel))
                        .map_err(|e| format!("{rel}: {e}"))?;
                    let f = SourceFile::parse(rel.clone(), text);
                    let mut found = Vec::new();
                    for rule in rules.iter() {
                        let in_scope = cfg
                            .includes
                            .get(rule.id())
                            .is_some_and(|globs| globs.iter().any(|g| glob_match(g, &f.rel)));
                        if in_scope {
                            rule.check_file(&f, &mut found);
                        }
                    }
                    // A reasoned allow comment on the finding's line or
                    // the line above suppresses it (R2 additionally
                    // honours allows inside the loop body, handled in
                    // the rule itself).
                    found.retain(|d| !f.allowed_at(&d.rule, d.line));
                    batch.push((i, f, found));
                }
                Ok(batch)
            }));
        }
        let mut merged = Vec::with_capacity(scoped.len());
        for h in handles {
            match h.join() {
                Ok(Ok(batch)) => merged.extend(batch),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err("lint worker thread panicked".to_string()),
            }
        }
        Ok(merged)
    })?;

    let mut per_file = per_file;
    per_file.sort_by_key(|(i, _, _)| *i);
    let mut files: Vec<SourceFile> = Vec::with_capacity(per_file.len());
    let mut diags: Vec<Diagnostic> = Vec::new();
    for (_, f, found) in per_file {
        files.push(f);
        diags.extend(found);
    }

    // Whole-workspace rules see every parsed file plus the graph.
    let graph = Graph::build(&files);
    let ws = WorkspaceView { root, files: &files, graph: &graph };
    for rule in &rules {
        let mut found = Vec::new();
        rule.check_workspace(&ws, cfg, &mut found);
        found.retain(|d| {
            !files
                .iter()
                .find(|f| f.rel == d.file)
                .is_some_and(|f| f.allowed_at(&d.rule, d.line))
        });
        diags.append(&mut found);
    }

    // Malformed allow comments: missing reason or unknown rule id.
    for f in &files {
        for a in &f.allows {
            if !a.has_reason {
                diags.push(Diagnostic {
                    file: f.rel.clone(),
                    line: a.line,
                    rule: "A0".to_string(),
                    message: "allow comment without a reason (it suppresses nothing)"
                        .to_string(),
                    hint: "write `// lint: allow(Rn) -- <reason>`".to_string(),
                });
            }
            for r in &a.rules {
                if !config::ALL_RULES.contains(&r.as_str()) {
                    diags.push(Diagnostic {
                        file: f.rel.clone(),
                        line: a.line,
                        rule: "A0".to_string(),
                        message: format!("allow comment names unknown rule `{r}`"),
                        hint: format!("known rules: {}", config::ALL_RULES.join(", ")),
                    });
                }
            }
        }
    }

    // Stale suppressions: a reasoned allow that suppressed nothing is
    // dead weight that hides future regressions. Only judged when every
    // rule it names actually ran over this file — an allow for a
    // disabled rule or an out-of-scope file may be load-bearing in a
    // full run.
    if cfg.strict_allows {
        for f in &files {
            for a in &f.allows {
                if !a.has_reason || a.used.get() || a.rules.is_empty() {
                    continue;
                }
                let judgeable = a.rules.iter().all(|r| {
                    config::ALL_RULES.contains(&r.as_str())
                        && cfg.rules.iter().any(|id| id == r)
                        && cfg
                            .includes
                            .get(r.as_str())
                            .is_none_or(|globs| globs.iter().any(|g| glob_match(g, &f.rel)))
                });
                if judgeable {
                    diags.push(Diagnostic {
                        file: f.rel.clone(),
                        line: a.line,
                        rule: "A1".to_string(),
                        message: format!(
                            "allow({}) suppresses no finding (stale suppression)",
                            a.rules.join(", ")
                        ),
                        hint: "delete the stale allow comment, or fix the rule id it names"
                            .to_string(),
                    });
                }
            }
        }
    }

    diags.sort();
    diags.dedup();
    Ok(Report {
        diagnostics: diags,
        files_checked: files.len(),
        rules_run: rules.iter().map(|r| r.id().to_string()).collect(),
    })
}

/// Collects `.rs` files under `dir` as root-relative forward-slash
/// paths, skipping build output and VCS internals.
fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(tag: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("skydiver-lint-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, text) in files {
            let p = dir.join(rel);
            if let Some(parent) = p.parent() {
                std::fs::create_dir_all(parent).expect("mkdir");
            }
            std::fs::write(p, text).expect("write");
        }
        dir
    }

    #[test]
    fn scoping_and_suppression_end_to_end() {
        let dir = stage(
            "scope",
            &[
                ("src/a.rs", "fn f() { x.unwrap(); }\n"),
                ("src/b.rs", "// lint: allow(R1) -- invariant: y is Some by construction\nfn g() { y.unwrap(); }\n"),
                ("other/c.rs", "fn h() { z.unwrap(); }\n"),
            ],
        );
        let cfg = Config::parse("rules = [\"R1\"]\n[rules.R1]\ninclude = [\"src/**\"]\n")
            .expect("cfg");
        let report = run(&dir, &cfg).expect("run");
        assert_eq!(report.files_checked, 2, "other/ is out of scope");
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].file, "src/a.rs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reasonless_allow_is_a0() {
        let dir = stage(
            "a0",
            &[("src/a.rs", "// lint: allow(R1)\nfn f() { x.unwrap(); }\n")],
        );
        let cfg = Config::parse("rules = [\"R1\"]\n[rules.R1]\ninclude = [\"src/**\"]\n")
            .expect("cfg");
        let report = run(&dir, &cfg).expect("run");
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(rules, vec!["A0", "R1"], "allow suppresses nothing and is itself flagged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let dir = stage(
            "sorted",
            &[
                ("src/z.rs", "fn f() { a.unwrap(); }\n"),
                ("src/a.rs", "fn f() { panic!(\"x\"); b.unwrap(); }\n"),
            ],
        );
        let cfg = Config::parse("rules = [\"R1\"]\n[rules.R1]\ninclude = [\"src/**\"]\n")
            .expect("cfg");
        let r1 = run(&dir, &cfg).expect("run");
        let r2 = run(&dir, &cfg).expect("run");
        assert_eq!(r1.to_json(), r2.to_json());
        let files: Vec<&str> = r1.diagnostics.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(files, vec!["src/a.rs", "src/a.rs", "src/z.rs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_run_matches_across_many_files() {
        // Enough files to keep every worker busy; the report must stay
        // sorted and identical run-to-run.
        let mut spec: Vec<(String, String)> = Vec::new();
        for i in 0..40 {
            spec.push((
                format!("src/m{i:02}.rs"),
                format!("fn f{i}() {{ x{i}.unwrap(); }}\n"),
            ));
        }
        let refs: Vec<(&str, &str)> =
            spec.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
        let dir = stage("par", &refs);
        let cfg = Config::parse("rules = [\"R1\"]\n[rules.R1]\ninclude = [\"src/**\"]\n")
            .expect("cfg");
        let r1 = run(&dir, &cfg).expect("run");
        let r2 = run(&dir, &cfg).expect("run");
        assert_eq!(r1.diagnostics.len(), 40);
        assert_eq!(r1.to_json(), r2.to_json());
        let mut sorted = r1.diagnostics.clone();
        sorted.sort();
        assert_eq!(sorted, r1.diagnostics, "report arrives pre-sorted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_allows_flags_only_stale_judgeable_suppressions() {
        let dir = stage(
            "strict",
            &[
                // Used allow: suppresses a real unwrap — not stale.
                ("src/a.rs", "// lint: allow(R1) -- init fills the slot before any reader\nfn f() { x.unwrap(); }\n"),
                // Stale allow: nothing on the next line violates R1.
                ("src/b.rs", "// lint: allow(R1) -- left over from an old refactor\nfn g() { y.len(); }\n"),
                // Allow for a rule whose scope excludes this file: not judgeable.
                ("src/c.rs", "// lint: allow(R2) -- poll lives in the caller\nfn h() { z.len(); }\n"),
            ],
        );
        let cfg = Config::parse(
            "rules = [\"R1\", \"R2\"]\n[rules.R1]\ninclude = [\"src/**\"]\n[rules.R2]\ninclude = [\"hot/**\"]\n",
        )
        .expect("cfg");
        let mut strict = cfg.clone();
        strict.strict_allows = true;
        let lax = run(&dir, &cfg).expect("run");
        assert!(lax.diagnostics.is_empty(), "without --strict-allows: {:?}", lax.diagnostics);
        let report = run(&dir, &strict).expect("run");
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].rule, "A1");
        assert_eq!(report.diagnostics[0].file, "src/b.rs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workspace_rule_findings_honour_allow_comments() {
        // R8 with an entry reaching a sleep; the allow at the sleep site
        // suppresses the workspace-level finding and counts as used.
        let dir = stage(
            "wsallow",
            &[(
                "src/a.rs",
                "fn wake() { pause(); }\n\
                 // lint: allow(R8) -- operator-requested throttle, stall is the point\n\
                 fn pause() { std::thread::sleep(d()); }\n",
            )],
        );
        let cfg = Config::parse(
            "rules = [\"R8\"]\n[rules.R8]\ninclude = [\"src/**\"]\nentries = [\"wake\"]\n",
        )
        .expect("cfg");
        let mut strict = cfg.clone();
        strict.strict_allows = true;
        let report = run(&dir, &strict).expect("run");
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
