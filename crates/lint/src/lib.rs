//! `skydiver-lint` — the workspace invariant checker.
//!
//! The compiler checks types; this crate checks the *contracts* PRs
//! 1–4 were built on, the ones nothing else enforces mechanically:
//!
//! | rule | invariant guarded |
//! |---|---|
//! | R1 | resilience — no panicking calls in non-test library code |
//! | R2 | cancellation — hot fingerprint/selection loops poll the budget |
//! | R3 | determinism — no wall clocks / hash-order iteration in bit-identical paths |
//! | R4 | lock discipline — no guard held across socket/file I/O in `serve` |
//! | R5 | `unsafe` blocks carry `// SAFETY:` justifications |
//! | R6 | metrics struct ↔ STATS serialization ↔ README wire-spec agree |
//!
//! The pipeline is `lexer` → `scan` → `rules`, configured by
//! [`config::Config`] (`lint.toml`) and reported via
//! [`diag::Report`]. Everything is std-only and deterministic: files
//! are visited in sorted order and findings are sorted before output,
//! so two runs over the same tree produce byte-identical reports —
//! rule R3 applied to ourselves.
//!
//! Suppression grammar (reason mandatory, checked by the engine):
//!
//! ```text
//! // lint: allow(R1) -- the LRU order vec and the map are updated together
//! ```
//!
//! A reasonless `allow` never suppresses and is itself reported as
//! `A0`.

#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod glob;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::path::Path;

use config::Config;
use diag::{Diagnostic, Report};
use glob::glob_match;
use rules::{all_rules, Rule, WorkspaceView};
use scan::SourceFile;

/// Runs every enabled rule over the tree rooted at `root`.
///
/// Fails (with a message, not a diagnostic) only on environment
/// errors: unreadable root, broken config. Rule findings — including
/// "configured artifact missing" — are diagnostics in the returned
/// [`Report`].
pub fn run(root: &Path, cfg: &Config) -> Result<Report, String> {
    let rules: Vec<Box<dyn Rule>> =
        all_rules().into_iter().filter(|r| cfg.rules.iter().any(|id| id == r.id())).collect();

    // Union of every enabled rule's scope → the files to parse.
    let mut rel_paths = Vec::new();
    walk(root, root, &mut rel_paths)?;
    rel_paths.sort();
    let scoped: Vec<&String> = rel_paths
        .iter()
        .filter(|rel| {
            rules.iter().any(|r| {
                cfg.includes
                    .get(r.id())
                    .is_some_and(|globs| globs.iter().any(|g| glob_match(g, rel)))
            })
        })
        .collect();

    let mut files = Vec::with_capacity(scoped.len());
    for rel in &scoped {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("{rel}: {e}"))?;
        files.push(SourceFile::parse((*rel).clone(), text));
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    for rule in &rules {
        for f in &files {
            let in_scope = cfg
                .includes
                .get(rule.id())
                .is_some_and(|globs| globs.iter().any(|g| glob_match(g, &f.rel)));
            if !in_scope {
                continue;
            }
            let mut found = Vec::new();
            rule.check_file(f, &mut found);
            // A reasoned allow comment on the finding's line or the line
            // above suppresses it (R2 additionally honours allows inside
            // the loop body, handled in the rule itself).
            found.retain(|d| !f.allowed_at(&d.rule, d.line));
            diags.append(&mut found);
        }
        let ws = WorkspaceView { root };
        rule.check_workspace(&ws, cfg, &mut diags);
    }

    // Malformed allow comments: missing reason or unknown rule id.
    for f in &files {
        for a in &f.allows {
            if !a.has_reason {
                diags.push(Diagnostic {
                    file: f.rel.clone(),
                    line: a.line,
                    rule: "A0".to_string(),
                    message: "allow comment without a reason (it suppresses nothing)"
                        .to_string(),
                    hint: "write `// lint: allow(Rn) -- <reason>`".to_string(),
                });
            }
            for r in &a.rules {
                if !config::ALL_RULES.contains(&r.as_str()) {
                    diags.push(Diagnostic {
                        file: f.rel.clone(),
                        line: a.line,
                        rule: "A0".to_string(),
                        message: format!("allow comment names unknown rule `{r}`"),
                        hint: format!("known rules: {}", config::ALL_RULES.join(", ")),
                    });
                }
            }
        }
    }

    diags.sort();
    diags.dedup();
    Ok(Report {
        diagnostics: diags,
        files_checked: files.len(),
        rules_run: rules.iter().map(|r| r.id().to_string()).collect(),
    })
}

/// Collects `.rs` files under `dir` as root-relative forward-slash
/// paths, skipping build output and VCS internals.
fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(tag: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("skydiver-lint-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, text) in files {
            let p = dir.join(rel);
            if let Some(parent) = p.parent() {
                std::fs::create_dir_all(parent).expect("mkdir");
            }
            std::fs::write(p, text).expect("write");
        }
        dir
    }

    #[test]
    fn scoping_and_suppression_end_to_end() {
        let dir = stage(
            "scope",
            &[
                ("src/a.rs", "fn f() { x.unwrap(); }\n"),
                ("src/b.rs", "// lint: allow(R1) -- invariant: y is Some by construction\nfn g() { y.unwrap(); }\n"),
                ("other/c.rs", "fn h() { z.unwrap(); }\n"),
            ],
        );
        let cfg = Config::parse("rules = [\"R1\"]\n[rules.R1]\ninclude = [\"src/**\"]\n")
            .expect("cfg");
        let report = run(&dir, &cfg).expect("run");
        assert_eq!(report.files_checked, 2, "other/ is out of scope");
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].file, "src/a.rs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reasonless_allow_is_a0() {
        let dir = stage(
            "a0",
            &[("src/a.rs", "// lint: allow(R1)\nfn f() { x.unwrap(); }\n")],
        );
        let cfg = Config::parse("rules = [\"R1\"]\n[rules.R1]\ninclude = [\"src/**\"]\n")
            .expect("cfg");
        let report = run(&dir, &cfg).expect("run");
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(rules, vec!["A0", "R1"], "allow suppresses nothing and is itself flagged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let dir = stage(
            "sorted",
            &[
                ("src/z.rs", "fn f() { a.unwrap(); }\n"),
                ("src/a.rs", "fn f() { panic!(\"x\"); b.unwrap(); }\n"),
            ],
        );
        let cfg = Config::parse("rules = [\"R1\"]\n[rules.R1]\ninclude = [\"src/**\"]\n")
            .expect("cfg");
        let r1 = run(&dir, &cfg).expect("run");
        let r2 = run(&dir, &cfg).expect("run");
        assert_eq!(r1.to_json(), r2.to_json());
        let files: Vec<&str> = r1.diagnostics.iter().map(|d| d.file.as_str()).collect();
        assert_eq!(files, vec!["src/a.rs", "src/a.rs", "src/z.rs"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
