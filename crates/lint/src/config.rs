//! `lint.toml` — scope and cross-artifact configuration.
//!
//! The parser reads the TOML subset the committed config uses: `#`
//! comments, `[section]` headers (dotted names allowed), and
//! `key = value` where value is a string or an array of strings
//! (single- or multi-line). Anything else is a hard config error — a
//! linter that silently misreads its own scope is worse than one that
//! refuses to run.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed configuration for one lint run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rule ids enabled for this run, in id order.
    pub rules: Vec<String>,
    /// Per-rule include globs (forward-slash, relative to the root).
    pub includes: BTreeMap<String, Vec<String>>,
    /// R6: path of the metrics source file.
    pub r6_metrics: String,
    /// R6: path of the document holding the STATS wire-spec table.
    pub r6_readme: String,
    /// R8: names of the event-loop entry functions reachability starts
    /// from.
    pub r8_entries: Vec<String>,
    /// R9: files whose exact all-caps string literals define the
    /// parsed wire-verb set.
    pub r9_parse: Vec<String>,
    /// R9: files whose verb-leading string literals are the senders.
    pub r9_senders: Vec<String>,
    /// R9: the document holding the wire verb table.
    pub r9_readme: String,
    /// R9: test files each verb must be exercised in (case-insensitive
    /// word match).
    pub r9_tests: Vec<String>,
    /// Report reasoned allow comments that suppressed nothing
    /// (`--strict-allows`, on in CI).
    pub strict_allows: bool,
}

/// Every rule id the engine knows, in reporting order.
pub const ALL_RULES: [&str; 9] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"];

impl Default for Config {
    /// The committed workspace scope — used when no `lint.toml` exists.
    fn default() -> Self {
        let mut includes = BTreeMap::new();
        includes.insert(
            "R1".to_string(),
            vec![
                "crates/core/src/**".to_string(),
                "crates/data/src/**".to_string(),
                "crates/serve/src/**".to_string(),
                "crates/skyline/src/**".to_string(),
                "crates/rtree/src/**".to_string(),
                "crates/lint/src/**".to_string(),
            ],
        );
        includes.insert(
            "R2".to_string(),
            vec![
                "crates/core/src/minhash/**".to_string(),
                "crates/core/src/dispersion.rs".to_string(),
            ],
        );
        includes.insert(
            "R3".to_string(),
            vec![
                "crates/core/src/minhash/**".to_string(),
                "crates/core/src/dispersion.rs".to_string(),
                "crates/core/src/lsh.rs".to_string(),
                "crates/core/src/kernels.rs".to_string(),
                "crates/core/src/gamma.rs".to_string(),
                "crates/core/src/diversity.rs".to_string(),
            ],
        );
        includes.insert("R4".to_string(), vec!["crates/serve/src/**".to_string()]);
        includes.insert("R5".to_string(), vec!["crates/*/src/**".to_string()]);
        includes.insert(
            "R7".to_string(),
            vec![
                "crates/serve/src/**".to_string(),
                "crates/cluster/src/**".to_string(),
                "crates/core/src/**".to_string(),
            ],
        );
        includes.insert(
            "R8".to_string(),
            vec!["crates/serve/src/**".to_string(), "crates/cluster/src/**".to_string()],
        );
        Config {
            rules: ALL_RULES.iter().map(|s| s.to_string()).collect(),
            includes,
            r6_metrics: "crates/serve/src/metrics.rs".to_string(),
            r6_readme: "README.md".to_string(),
            r8_entries: vec!["event_loop".to_string()],
            r9_parse: vec!["crates/serve/src/protocol.rs".to_string()],
            r9_senders: vec![
                "crates/serve/src/client.rs".to_string(),
                "crates/serve/src/cluster.rs".to_string(),
                "crates/serve/src/protocol.rs".to_string(),
                "src/bin/skydiver.rs".to_string(),
            ],
            r9_readme: "README.md".to_string(),
            r9_tests: vec![
                "tests/serve.rs".to_string(),
                "tests/sharding.rs".to_string(),
                "tests/store.rs".to_string(),
            ],
            strict_allows: false,
        }
    }
}

impl Config {
    /// Loads `path` if it exists, otherwise returns the defaults.
    pub fn load(path: &Path) -> Result<Config, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut explicit_rules = false;
        let lines: Vec<&str> = text.lines().collect();
        let mut i = 0usize;
        while i < lines.len() {
            let ln = i;
            let mut line = strip_comment(lines[i]).trim().to_string();
            // A `[`-value may span lines; join until brackets balance.
            while bracket_balance(&line) > 0 && i + 1 < lines.len() {
                i += 1;
                line.push(' ');
                line.push_str(strip_comment(lines[i]).trim());
            }
            i += 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{}: expected `key = value`", ln + 1))?;
            let key = key.trim();
            let value = parse_value(value.trim())
                .map_err(|e| format!("lint.toml:{}: {e}", ln + 1))?;
            match (section.as_str(), key, value) {
                ("", "rules", Value::List(ids)) => {
                    cfg.rules = ids;
                    explicit_rules = true;
                }
                (s, "include", Value::List(globs)) if s.starts_with("rules.") => {
                    cfg.includes.insert(s["rules.".len()..].to_string(), globs);
                }
                ("rules.R6", "metrics", Value::Str(p)) => cfg.r6_metrics = p,
                ("rules.R6", "stats_table", Value::Str(p)) => cfg.r6_readme = p,
                ("rules.R8", "entries", Value::List(names)) => cfg.r8_entries = names,
                ("rules.R9", "parse", Value::List(paths)) => cfg.r9_parse = paths,
                ("rules.R9", "senders", Value::List(paths)) => cfg.r9_senders = paths,
                ("rules.R9", "readme", Value::Str(p)) => cfg.r9_readme = p,
                ("rules.R9", "tests", Value::List(paths)) => cfg.r9_tests = paths,
                (s, k, _) => {
                    return Err(format!(
                        "lint.toml:{}: unknown key `{k}` in section `[{s}]`",
                        ln + 1
                    ));
                }
            }
        }
        for r in &cfg.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                return Err(format!("lint.toml: unknown rule id `{r}`"));
            }
        }
        // An explicit rule list disables everything it omits, even rules
        // with default scopes.
        if explicit_rules {
            let keep: Vec<String> = cfg.rules.clone();
            cfg.includes.retain(|k, _| keep.iter().any(|r| r == k));
        }
        Ok(cfg)
    }
}

enum Value {
    Str(String),
    List(Vec<String>),
}

fn bracket_balance(s: &str) -> i32 {
    // `[section]` headers balance to 0, so only an unclosed `key = [`
    // opener reports a positive balance and triggers line joining.
    let (mut bal, mut in_str) = (0i32, false);
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => bal += 1,
            ']' if !in_str => bal -= 1,
            _ => {}
        }
    }
    bal
}

fn strip_comment(line: &str) -> &str {
    // `#` only starts a comment outside quotes; the committed config
    // never embeds `#` in strings, so a quote-aware scan suffices.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(inner) = v.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                Value::List(_) => return Err("nested arrays are not supported".to_string()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(inner) = v.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
        return Ok(Value::Str(inner.to_string()));
    }
    Err(format!("unsupported value `{v}` (expected \"string\" or [\"array\"])"))
}

fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_rules() {
        let c = Config::default();
        assert_eq!(c.rules.len(), 9);
        assert!(c.includes["R2"].iter().any(|g| g.contains("minhash")));
        assert!(c.includes["R8"].iter().any(|g| g.contains("serve")));
        assert_eq!(c.r8_entries, vec!["event_loop"]);
    }

    #[test]
    fn parse_r8_and_r9_keys() {
        let c = Config::parse(
            "rules = [\"R8\", \"R9\"]\n[rules.R8]\ninclude = [\"src/**\"]\nentries = [\"wake\"]\n\
             [rules.R9]\nparse = [\"src/server.rs\"]\nsenders = [\"src/client.rs\"]\n\
             readme = \"README.md\"\ntests = [\"tests/wire.rs\"]\n",
        )
        .expect("parses");
        assert_eq!(c.r8_entries, vec!["wake"]);
        assert_eq!(c.r9_parse, vec!["src/server.rs"]);
        assert_eq!(c.r9_senders, vec!["src/client.rs"]);
        assert_eq!(c.r9_readme, "README.md");
        assert_eq!(c.r9_tests, vec!["tests/wire.rs"]);
    }

    #[test]
    fn parse_scopes_and_rule_list() {
        let c = Config::parse(
            "# fixture scope\nrules = [\"R1\"]\n\n[rules.R1]\ninclude = [\"src/**\"]\n",
        )
        .expect("parses");
        assert_eq!(c.rules, vec!["R1"]);
        assert_eq!(c.includes["R1"], vec!["src/**"]);
        assert!(!c.includes.contains_key("R2"), "omitted rules lose their scope");
    }

    #[test]
    fn parse_r6_paths() {
        let c = Config::parse(
            "rules = [\"R6\"]\n[rules.R6]\nmetrics = \"m.rs\"\nstats_table = \"SPEC.md\"\n",
        )
        .expect("parses");
        assert_eq!(c.r6_metrics, "m.rs");
        assert_eq!(c.r6_readme, "SPEC.md");
    }

    #[test]
    fn unknown_rule_and_malformed_lines_error() {
        assert!(Config::parse("rules = [\"R12\"]\n").is_err());
        assert!(Config::parse("what is this\n").is_err());
        assert!(Config::parse("[rules.R1]\nfrobnicate = \"x\"\n").is_err());
    }

    #[test]
    fn multi_line_arrays_join_until_brackets_balance() {
        let c = Config::parse(
            "rules = [\n  \"R1\", # finder\n  \"R3\",\n]\n[rules.R3]\ninclude = [\n  \"src/a.rs\",\n  \"src/b.rs\",\n]\n",
        )
        .expect("parses");
        assert_eq!(c.rules, vec!["R1", "R3"]);
        assert_eq!(c.includes["R3"], vec!["src/a.rs", "src/b.rs"]);
    }

    #[test]
    fn unterminated_array_is_an_error() {
        assert!(Config::parse("rules = [\n  \"R1\",\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = Config::parse("# top\n\nrules = [\"R5\"] # trailing\n").expect("parses");
        assert_eq!(c.rules, vec!["R5"]);
    }
}
