//! A minimal Rust lexer — just enough token structure that rules can
//! search for identifiers without string literals, comments or raw
//! strings producing false positives.
//!
//! The lexer is intentionally lossy: it does not classify keywords,
//! does not parse numeric suffixes precisely and treats every
//! single-character symbol as a [`TokKind::Punct`]. What it does get
//! right are the boundaries that matter for sound text analysis:
//! line comments, (nested) block comments, string/char/byte literals,
//! raw strings with arbitrary `#` fencing, raw identifiers and
//! lifetimes vs char literals.

/// The coarse token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw identifiers, with the
    /// `r#` prefix stripped from [`Tok::text`]'s span start).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
    /// A single punctuation character (`{`, `.`, `!`, …).
    Punct,
    /// A `//` comment, doc comments included; span excludes the newline.
    LineComment,
    /// A `/* … */` comment (nesting handled); span includes delimiters.
    BlockComment,
}

/// One lexed token: kind plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: u32,
}

impl Tok {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a token stream. Unterminated literals or comments
/// consume the rest of the input rather than erroring: the linter must
/// keep going on any input, and rules only ever under-report on such
/// malformed tails (which rustc itself will reject anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { b: src.as_bytes(), i: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' => self.raw_or_ident(),
                b'"' => self.string(),
                b'\'' => self.lifetime_or_char(),
                b'0'..=b'9' => self.number(),
                _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
                _ => {
                    self.push(TokKind::Punct, self.i, self.i + 1, self.line);
                    self.i += 1;
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.toks.push(Tok { kind, start, end, line });
    }

    /// Advances to `to`, counting newlines in the skipped span.
    fn advance_to(&mut self, to: usize) {
        for &byte in &self.b[self.i..to] {
            if byte == b'\n' {
                self.line += 1;
            }
        }
        self.i = to;
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut j = self.i;
        while j < self.b.len() && self.b[j] != b'\n' {
            j += 1;
        }
        self.push(TokKind::LineComment, start, j, line);
        self.i = j;
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut j = self.i + 2;
        let mut depth = 1usize;
        while j < self.b.len() && depth > 0 {
            if self.b[j] == b'/' && self.b.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.b[j] == b'*' && self.b.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
            } else {
                j += 1;
            }
        }
        self.push(TokKind::BlockComment, start, j, line);
        self.advance_to(j);
    }

    /// `r…` / `b…`: raw string, byte string, byte char, raw identifier
    /// or a plain identifier starting with `r`/`b`.
    fn raw_or_ident(&mut self) {
        let c = self.b[self.i];
        // b'x' byte char literal.
        if c == b'b' && self.peek(1) == Some(b'\'') {
            let (start, line) = (self.i, self.line);
            let end = self.char_literal_end(self.i + 1);
            self.push(TokKind::Literal, start, end, line);
            self.advance_to(end);
            return;
        }
        // b"…" byte string.
        if c == b'b' && self.peek(1) == Some(b'"') {
            let (start, line) = (self.i, self.line);
            let end = self.string_end(self.i + 1);
            self.push(TokKind::Literal, start, end, line);
            self.advance_to(end);
            return;
        }
        // r"…", r#"…"#, br#"…"# raw (byte) strings; r#ident raw idents.
        let hash_from = if c == b'r' {
            Some(self.i + 1)
        } else if c == b'b' && self.peek(1) == Some(b'r') {
            Some(self.i + 2)
        } else {
            None
        };
        if let Some(mut j) = hash_from {
            let mut hashes = 0usize;
            while self.b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if self.b.get(j) == Some(&b'"') {
                let (start, line) = (self.i, self.line);
                let end = self.raw_string_end(j + 1, hashes);
                self.push(TokKind::Literal, start, end, line);
                self.advance_to(end);
                return;
            }
            if hashes == 1 && c == b'r' && self.b.get(j).is_some_and(|&x| is_ident_byte(x)) {
                // Raw identifier r#ident: emit the ident without prefix.
                let name_start = j;
                let mut k = j;
                while k < self.b.len() && is_ident_byte(self.b[k]) {
                    k += 1;
                }
                self.push(TokKind::Ident, name_start, k, self.line);
                self.i = k;
                return;
            }
        }
        self.ident();
    }

    fn ident(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut j = self.i;
        while j < self.b.len() && (is_ident_byte(self.b[j]) || self.b[j] >= 0x80) {
            j += 1;
        }
        self.push(TokKind::Ident, start, j.max(start + 1), line);
        self.i = j.max(start + 1);
    }

    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut j = self.i;
        while j < self.b.len() {
            let x = self.b[j];
            if is_ident_byte(x) {
                j += 1;
            } else if x == b'.' && self.b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1; // decimal point of a float, not a `..` range
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, start, j, line);
        self.i = j;
    }

    fn string(&mut self) {
        let (start, line) = (self.i, self.line);
        let end = self.string_end(self.i);
        self.push(TokKind::Literal, start, end, line);
        self.advance_to(end);
    }

    /// End offset of a `"`-delimited string whose opening quote is at
    /// `open` (handles `\"` escapes); consumes to EOF if unterminated.
    fn string_end(&self, open: usize) -> usize {
        let mut j = open + 1;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
        self.b.len()
    }

    fn raw_string_end(&self, content_from: usize, hashes: usize) -> usize {
        let mut j = content_from;
        while j < self.b.len() {
            if self.b[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && self.b.get(k) == Some(&b'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
            }
            j += 1;
        }
        self.b.len()
    }

    /// End offset of a char literal whose `'` is at `open`.
    fn char_literal_end(&self, open: usize) -> usize {
        let mut j = open + 1;
        if self.b.get(j) == Some(&b'\\') {
            j += 2; // skip the escaped char; `\u{…}` handled by the scan below
            while j < self.b.len() && self.b[j] != b'\'' {
                j += 1;
            }
            return (j + 1).min(self.b.len());
        }
        while j < self.b.len() && self.b[j] != b'\'' && self.b[j] != b'\n' {
            j += 1;
        }
        (j + 1).min(self.b.len())
    }

    fn lifetime_or_char(&mut self) {
        let (start, line) = (self.i, self.line);
        // `'ident` not closed by `'` is a lifetime (or loop label).
        if self.peek(1).is_some_and(is_ident_start) {
            let mut j = self.i + 2;
            while j < self.b.len() && is_ident_byte(self.b[j]) {
                j += 1;
            }
            if self.b.get(j) != Some(&b'\'') {
                self.push(TokKind::Lifetime, start, j, line);
                self.i = j;
                return;
            }
        }
        let end = self.char_literal_end(self.i);
        self.push(TokKind::Literal, start, end, line);
        self.advance_to(end);
    }
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let got = kinds("foo.unwrap()");
        assert_eq!(got[0], (TokKind::Ident, "foo".into()));
        assert_eq!(got[1], (TokKind::Punct, ".".into()));
        assert_eq!(got[2], (TokKind::Ident, "unwrap".into()));
        assert_eq!(got[3], (TokKind::Punct, "(".into()));
    }

    #[test]
    fn strings_hide_identifiers() {
        let got = kinds(r#"let s = "call .unwrap() here";"#);
        assert!(got.iter().all(|(k, t)| *k != TokKind::Ident || t != "unwrap"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"no "unwrap" inside"# ; x"###;
        let got = kinds(src);
        assert!(got.iter().any(|(k, t)| *k == TokKind::Literal && t.contains("inside")));
        assert_eq!(got.last(), Some(&(TokKind::Ident, "x".into())));
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let got = kinds("a // lint: allow(R1) -- why\nb");
        assert_eq!(got[1].0, TokKind::LineComment);
        assert!(got[1].1.contains("allow(R1)"));
        assert_eq!(got[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn nested_block_comments() {
        let got = kinds("/* outer /* inner */ still */ x");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, TokKind::BlockComment);
        assert_eq!(got[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let got = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(got.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Literal && t == "'x'"));
    }

    #[test]
    fn escaped_char_literal() {
        let got = kinds(r"let c = '\n'; y");
        assert_eq!(got.last(), Some(&(TokKind::Ident, "y".into())));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn raw_identifier() {
        let got = kinds("r#match + br#\"raw\"# + b\"bytes\" + b'c'");
        assert_eq!(got[0], (TokKind::Ident, "match".into()));
        assert!(got.iter().filter(|(k, _)| *k == TokKind::Literal).count() >= 3);
    }

    #[test]
    fn unterminated_string_consumes_tail() {
        let toks = lex("let s = \"open");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::Literal));
    }

    #[test]
    fn float_vs_range() {
        let got = kinds("0..n 1.5f64");
        assert_eq!(got[0], (TokKind::Literal, "0".into()));
        assert_eq!(got[1], (TokKind::Punct, ".".into()));
        assert_eq!(got[2], (TokKind::Punct, ".".into()));
        assert_eq!(got[3], (TokKind::Ident, "n".into()));
        assert_eq!(got[4], (TokKind::Literal, "1.5f64".into()));
    }
}
