//! End-to-end tests of the `skydiver-lint` binary over the fixture
//! corpus: each rule has a violating fixture proven caught (exact rule
//! id, file and line) and a compliant shape proven clean, plus a
//! clean-tree smoke test and a run over the real workspace.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_skydiver-lint")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn run_at(root: &Path, extra: &[&str]) -> Output {
    Command::new(bin())
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn skydiver-lint")
}

/// Runs the fixture and returns `(exit_code, stdout)`.
fn run_fixture(name: &str) -> (i32, String) {
    let out = run_at(&fixture(name), &[]);
    (out.status.code().expect("exit code"), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The `file:line: [rule]` headers of every reported diagnostic.
fn headers(stdout: &str) -> Vec<&str> {
    stdout
        .lines()
        .filter(|l| l.contains(": [") && !l.starts_with("skydiver-lint:"))
        .collect()
}

#[test]
fn r1_panicking_calls_caught_allows_and_tests_clean() {
    let (code, out) = run_fixture("r1");
    assert_eq!(code, 1, "violations must fail the run:\n{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 3, "{out}");
    assert!(h[0].starts_with("src/bad.rs:2: [R1]"), "{out}");
    assert!(h[1].starts_with("src/bad.rs:3: [R1]"), "{out}");
    assert!(h[2].starts_with("src/bad.rs:5: [R1]"), "{out}");
    assert!(!out.contains("src/ok.rs"), "allowed + test code must stay clean:\n{out}");
}

#[test]
fn r2_unpolled_loop_caught_polled_and_justified_clean() {
    let (code, out) = run_fixture("r2");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 1, "only the unpolled loop is flagged:\n{out}");
    assert!(h[0].starts_with("src/loops.rs:3: [R2]"), "{out}");
}

#[test]
fn r3_clock_and_hash_iteration_caught_membership_clean() {
    let (code, out) = run_fixture("r3");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 2, "{out}");
    assert!(h[0].starts_with("src/fp.rs:2: [R3]"), "{out}");
    assert!(h[0].contains("Instant"), "{out}");
    assert!(h[1].starts_with("src/fp.rs:9: [R3]"), "{out}");
    assert!(h[1].contains("keys"), "{out}");
}

#[test]
fn r4_guard_across_io_caught_dropped_guard_clean() {
    let (code, out) = run_fixture("r4");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 1, "dropping the guard before I/O must pass:\n{out}");
    assert!(h[0].starts_with("src/handler.rs:3: [R4]"), "{out}");
    assert!(h[0].contains("write_all"), "{out}");
}

#[test]
fn r5_bare_unsafe_caught_justified_clean() {
    let (code, out) = run_fixture("r5");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 1, "{out}");
    assert!(h[0].starts_with("src/raw.rs:2: [R5]"), "{out}");
    assert!(h[0].contains("SAFETY"), "{out}");
}

#[test]
fn r6_stray_counter_caught_in_both_artifacts() {
    let (code, out) = run_fixture("r6");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 2, "stray counter drifts from payload and table:\n{out}");
    assert!(h.iter().all(|l| l.starts_with("src/metrics.rs:4: [R6]")), "{out}");
    assert!(out.contains("not serialized"), "{out}");
    assert!(out.contains("wire-spec"), "{out}");
}

#[test]
fn r7_lock_cycle_caught_allowed_edge_breaks_its_cycle() {
    let (code, out) = run_fixture("r7");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 2, "both edges of the cycle carry a finding:\n{out}");
    assert!(h[0].starts_with("src/cycle.rs:12: [R7]"), "{out}");
    assert!(h[1].starts_with("src/cycle.rs:18: [R7]"), "{out}");
    assert!(out.contains("Registry::members") && out.contains("Registry::epochs"), "{out}");
    assert!(
        !out.contains("src/allowed.rs"),
        "the allowed edge must break the Journal cycle for both functions:\n{out}"
    );
}

#[test]
fn r8_reachable_sleep_caught_with_path_allowed_rename_clean() {
    let (code, out) = run_fixture("r8");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 1, "only the sleep two calls deep is flagged:\n{out}");
    assert!(h[0].starts_with("src/server.rs:16: [R8]"), "{out}");
    assert!(out.contains("wake -> dispatch -> backoff"), "the witness path names the chain:\n{out}");
    assert!(!out.contains("rename"), "the reasoned allow covers the snapshot rename:\n{out}");
    assert!(
        !out.contains("blocking `recv`"),
        "the worker thread is not reachable from wake:\n{out}"
    );
}

#[test]
fn r9_readme_drift_and_ghost_sender_caught_allowed_verb_clean() {
    let (code, out) = run_fixture("r9");
    assert_eq!(code, 1, "{out}");
    let h = headers(&out);
    assert_eq!(h.len(), 2, "{out}");
    assert!(h[0].starts_with("src/client.rs:10: [R9]"), "{out}");
    assert!(out.contains("`KICK` is sent here but no configured parser"), "{out}");
    assert!(h[1].starts_with("src/proto.rs:6: [R9]"), "{out}");
    assert!(out.contains("`PING` is parsed here but missing from `README.md`"), "{out}");
    assert!(!out.contains("ECHO"), "the allowed internal verb stays quiet:\n{out}");
}

#[test]
fn strict_allows_reports_only_the_stale_suppression() {
    let (code, out) = run_fixture("stale");
    assert_eq!(code, 0, "without --strict-allows the tree is clean:\n{out}");
    let out = run_at(&fixture("stale"), &["--strict-allows"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    let h = headers(&stdout);
    assert_eq!(h.len(), 1, "{stdout}");
    assert!(h[0].starts_with("src/lib.rs:7: [A1]"), "{stdout}");
    assert!(stdout.contains("stale suppression"), "{stdout}");
}

#[test]
fn github_mode_emits_error_annotations() {
    let out = run_at(&fixture("r1"), &["--github"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=src/bad.rs,line=2,title=R1::"),
        "annotation lines must carry file, line and rule:\n{stdout}"
    );
    assert!(stdout.contains(": [R1]"), "the human rendering still follows:\n{stdout}");
}

#[test]
fn json_report_carries_rule_file_line() {
    let out = run_at(&fixture("r1"), &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"file\":\"src/bad.rs\""), "{json}");
    assert!(json.contains("\"line\":2"), "{json}");
    assert!(json.contains("\"rule\":\"R1\""), "{json}");
    assert!(json.contains("\"files_checked\":2"), "{json}");
}

#[test]
fn unknown_rule_flag_is_a_usage_error() {
    let out = run_at(&fixture("r1"), &["--rules", "R12"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn clean_tree_smoke_exits_zero() {
    let dir = std::env::temp_dir()
        .join(format!("skydiver-lint-clean-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir");
    std::fs::write(
        dir.join("lint.toml"),
        "rules = [\"R1\", \"R2\", \"R3\", \"R4\", \"R5\", \"R6\"]\n\
         [rules.R1]\ninclude = [\"src/**\"]\n\
         [rules.R2]\ninclude = [\"src/**\"]\n\
         [rules.R3]\ninclude = [\"src/**\"]\n\
         [rules.R4]\ninclude = [\"src/**\"]\n\
         [rules.R5]\ninclude = [\"src/**\"]\n\
         [rules.R6]\nmetrics = \"src/metrics.rs\"\nstats_table = \"SPEC.md\"\n",
    )
    .expect("write lint.toml");
    std::fs::write(
        dir.join("src/metrics.rs"),
        "pub struct Metrics {\n    pub ticks: AtomicU64,\n}\n\
         impl Metrics {\n    pub fn snapshot_json(&self) -> String {\n        \
         format!(\"{{\\\"ticks\\\":{}}}\", self.ticks.load(Ordering::Relaxed))\n    }\n}\n",
    )
    .expect("write metrics");
    std::fs::write(
        dir.join("src/lib.rs"),
        "pub fn sum(ctx: &Ctx, items: &[u64]) -> Result<u64, Error> {\n    \
         let mut acc = 0;\n    for it in items {\n        ctx.check_cancelled()?;\n        \
         acc += *it;\n    }\n    Ok(acc)\n}\n",
    )
    .expect("write lib");
    std::fs::write(dir.join("SPEC.md"), "| `ticks` | heartbeat ticks |\n").expect("write spec");
    let out = run_at(&dir, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "clean tree must pass:\n{stdout}");
    assert!(stdout.contains("0 diagnostic(s)"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_at(&root, &["--strict-allows"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the committed workspace must lint clean (including stale allows):\n{stdout}"
    );
}
