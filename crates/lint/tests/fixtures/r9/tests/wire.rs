#[test]
fn ping_roundtrip() {
    let mut buf = Vec::new();
    ping(&mut buf);
    assert!(!buf.is_empty());
}
