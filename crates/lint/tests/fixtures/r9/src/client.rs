//! Sender fixture: PING is sent (so only the README drifts); KICK is
//! sent but nothing parses it (reverse true positive).

pub fn ping(io: &mut impl std::io::Write) {
    let _ = io.write_all(b"x");
    send(io, "PING now");
}

pub fn kick(io: &mut impl std::io::Write) {
    send(io, "KICK 7");
}
