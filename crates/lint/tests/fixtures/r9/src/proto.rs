//! Parser fixture: PING is fully wired except for the README (true
//! positive); ECHO is a reasoned internal verb (allow case).

pub fn parse(verb: &str) -> Option<Cmd> {
    match verb {
        "PING" => Some(Cmd::Ping),
        // lint: allow(R9) -- internal loopback probe, deliberately undocumented and untested externally
        "ECHO" => Some(Cmd::Echo),
        _ => None,
    }
}
