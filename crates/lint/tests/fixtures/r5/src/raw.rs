pub fn read_bare(ptr: *const u64) -> u64 {
    unsafe { ptr.read_unaligned() }
}

pub fn read_justified(ptr: *const u64) -> u64 {
    // SAFETY: fixture — the caller guarantees `ptr` is valid for reads.
    unsafe { ptr.read_unaligned() }
}
