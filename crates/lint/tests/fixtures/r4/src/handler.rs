pub fn respond(state: &Mutex<State>, sock: &mut TcpStream) -> io::Result<()> {
    let guard = state.lock().unwrap_or_else(|e| e.into_inner());
    sock.write_all(guard.payload())
}

pub fn respond_released(state: &Mutex<State>, sock: &mut TcpStream) -> io::Result<()> {
    let guard = state.lock().unwrap_or_else(|e| e.into_inner());
    let payload = guard.payload().to_vec();
    drop(guard);
    sock.write_all(&payload)
}
