pub fn checked(input: &str) -> u32 {
    // lint: allow(R1) -- fixture: a justified allow suppresses the finding
    input.parse().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::checked("3").to_string().parse::<u32>().unwrap();
    }
}
