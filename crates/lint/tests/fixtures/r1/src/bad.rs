pub fn parse(input: &str) -> u32 {
    let v: u32 = input.parse().unwrap();
    let w = input.bytes().next().expect("non-empty");
    if v == 0 {
        panic!("zero");
    }
    v + u32::from(w)
}
