//! True positive: the wake handler reaches `thread::sleep` two calls
//! deep. Allow case: the snapshot rename on the same path carries a
//! reasoned allow. The worker thread may block freely — it is not
//! reachable from `wake`.

pub fn wake(conn: &mut Conn) {
    dispatch(conn);
    persist(conn);
}

fn dispatch(conn: &mut Conn) {
    backoff(conn.retries);
}

fn backoff(retries: u32) {
    std::thread::sleep(std::time::Duration::from_millis(u64::from(retries)));
}

fn persist(conn: &mut Conn) {
    // lint: allow(R8) -- rename of a same-directory tmp file; bounded and rarer than one per snapshot
    let _ = std::fs::rename(conn.tmp_path(), conn.final_path());
}

pub fn worker(rx: &std::sync::mpsc::Receiver<u64>) {
    while let Ok(n) = rx.recv() {
        let _ = n;
    }
}
