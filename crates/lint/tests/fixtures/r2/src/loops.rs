pub fn unpolled(items: &[u64]) -> u64 {
    let mut acc = 0;
    for it in items {
        acc += *it;
    }
    acc
}

pub fn polled(ctx: &Ctx, items: &[u64]) -> u64 {
    let mut acc = 0;
    for it in items {
        ctx.check_cancelled();
        acc += *it;
    }
    acc
}

pub fn justified(items: &[u64; 4]) -> u64 {
    let mut acc = 0;
    for it in items {
        // lint: allow(R2) -- fixture: the array is 4 elements long
        acc += *it;
    }
    acc
}
