//! True positive: two paths nest the same two locks in opposite
//! orders, so each can hold what the other waits for.

pub struct Registry {
    members: std::sync::Mutex<Vec<u64>>,
    epochs: std::sync::Mutex<Vec<u64>>,
}

impl Registry {
    pub fn admit(&self) {
        let members = self.members.lock();
        let epochs = self.epochs.lock();
        let _ = (members, epochs);
    }

    pub fn expire(&self) {
        let epochs = self.epochs.lock();
        let members = self.members.lock();
        let _ = (members, epochs);
    }
}
