//! Allow case: the same crossed shape, but one edge carries a reasoned
//! allow. Removing that edge from the acquisition graph breaks the
//! cycle, so *neither* function is reported.

pub struct Journal {
    hot: std::sync::Mutex<Vec<u64>>,
    cold: std::sync::Mutex<Vec<u64>>,
}

impl Journal {
    pub fn append(&self) {
        let hot = self.hot.lock();
        let cold = self.cold.lock();
        let _ = (hot, cold);
    }

    pub fn compact(&self) {
        let cold = self.cold.lock();
        // lint: allow(R7) -- compaction runs single-threaded at startup, before append is reachable
        let hot = self.hot.lock();
        let _ = (hot, cold);
    }
}
