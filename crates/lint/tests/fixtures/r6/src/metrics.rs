pub struct Metrics {
    pub queries: AtomicU64,
    pub errors: AtomicU64,
    pub stray: AtomicU64,
}

impl Metrics {
    pub fn snapshot_json(&self) -> String {
        format!(
            "{{\"queries\":{},\"errors\":{}}}",
            self.queries.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}
