pub fn used(slot: &Option<u64>) -> u64 {
    // lint: allow(R1) -- the constructor fills the slot before readers exist
    slot.unwrap()
}

pub fn stale(slot: &Option<u64>) -> u64 {
    // lint: allow(R1) -- left behind after the unwrap was refactored away
    slot.copied().unwrap_or(0)
}
