pub fn stamp() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn order(items: &[(u64, u64)]) -> Vec<u64> {
    let mut view = HashMap::new();
    view.extend(items.iter().copied());
    view.keys().copied().collect()
}

pub fn membership(items: &[u64]) -> bool {
    let mut seen = HashSet::new();
    for &it in items {
        if !seen.insert(it) {
            return true;
        }
    }
    false
}
