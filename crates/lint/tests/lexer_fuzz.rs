//! Adversarial property tests for the lexer: thousands of seeded,
//! randomly assembled inputs stuffed with the constructs most likely
//! to desynchronise a hand-rolled scanner — raw strings with arbitrary
//! `#` fencing, nested block comments, byte/char literals containing
//! quotes and braces, lifetimes next to char literals, multibyte
//! unicode and truncated tails. The lexer must never panic, and every
//! token stream must satisfy the span invariants the rules rely on.

use skydiver_lint::lexer::{lex, Tok, TokKind};
use skydiver_lint::scan::SourceFile;

/// Deterministic splitmix64 — no external crates, stable across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.below(options.len())]
    }
}

/// One adversarial fragment. The pool mixes well-formed tokens with
/// the pathological shapes named in the module doc.
fn fragment(rng: &mut Rng, out: &mut String) {
    match rng.below(20) {
        0 => {
            // Raw string with 0..=4 hashes; body may contain quotes
            // followed by too few hashes to terminate.
            let hashes = "#".repeat(rng.below(5));
            let body = rng.pick(&["plain", "\"#", "\"##x", "{ } \\", "line\nbreak", "δοκιμή"]);
            out.push('r');
            out.push_str(&hashes);
            out.push('"');
            out.push_str(body);
            out.push('"');
            out.push_str(&hashes);
        }
        1 => {
            // Nested block comment, depth 1..=3, sometimes with a fake
            // terminator inside a deeper level.
            let depth = 1 + rng.below(3);
            for _ in 0..depth {
                out.push_str("/* a ");
            }
            out.push_str(rng.pick(&["x", "*/ /*", "\" '", "*"]));
            for _ in 0..depth {
                out.push_str(" b */");
            }
        }
        2 => out.push_str(rng.pick(&["'\"'", "'{'", "'}'", "'\\''", "'\\\\'", "'\\n'"])),
        3 => out.push_str(rng.pick(&["b'\"'", "b'{'", "b'\\''", "b\"bytes \\\" {\""])),
        4 => {
            // Lifetime-vs-char ambiguity food.
            out.push_str(rng.pick(&["'a", "'static", "'_, 'b>", "x: &'a str"]));
        }
        5 => {
            // Plain string with escapes, braces, multibyte.
            out.push_str(rng.pick(&[
                "\"\\\"\"",
                "\"{ not a block }\"",
                "\"// not a comment\"",
                "\"/* not a comment */\"",
                "\"日本語 \\u{1F600}\"",
            ]));
        }
        6 => out.push_str(rng.pick(&["// line comment with \" and /*", "/// doc '"])),
        7 => out.push_str(rng.pick(&["r#type", "r#fn", "r#loop"])),
        8 => out.push_str(rng.pick(&["0x_ff", "1_000u64", "3.14f32", "0b1010"])),
        9..=13 => {
            out.push_str(rng.pick(&["fn", "loop", "while", "for", "unsafe", "impl", "let"]));
            out.push(' ');
            out.push_str(rng.pick(&["f", "g", "alpha", "σ"]));
        }
        _ => out.push_str(rng.pick(&["{", "}", "(", ")", ";", ".", "::", "=", "&mut ", " "])),
    }
    out.push_str(rng.pick(&[" ", "\n", "", "\t"]));
}

fn generate(seed: u64) -> String {
    let mut rng = Rng(seed);
    let mut src = String::new();
    let pieces = 4 + rng.below(60);
    for _ in 0..pieces {
        fragment(&mut rng, &mut src);
    }
    // A third of the inputs get truncated mid-token to exercise the
    // unterminated-tail paths.
    if rng.below(3) == 0 && !src.is_empty() {
        let mut cut = rng.below(src.len());
        while !src.is_char_boundary(cut) {
            cut -= 1;
        }
        src.truncate(cut);
    }
    src
}

/// The invariants every token stream must satisfy, whatever the input.
fn check_invariants(src: &str, toks: &[Tok]) {
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for t in toks {
        assert!(t.start < t.end, "empty span {t:?} in {src:?}");
        assert!(t.end <= src.len(), "span past EOF {t:?} in {src:?}");
        assert!(t.start >= prev_end, "overlapping tokens at {t:?} in {src:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span splits a char {t:?} in {src:?}"
        );
        assert!(t.line >= prev_line, "line numbers went backwards at {t:?} in {src:?}");
        let claimed = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
        assert_eq!(t.line, claimed, "wrong line for {t:?} in {src:?}");
        // text() must not panic and idents must be non-empty words.
        let text = t.text(src);
        if t.kind == TokKind::Ident {
            assert!(!text.is_empty(), "empty ident at {t:?} in {src:?}");
        }
        prev_end = t.end;
        prev_line = t.line;
    }
}

#[test]
fn seeded_adversarial_inputs_lex_without_panics_and_keep_span_invariants() {
    for seed in 0..4000u64 {
        let src = generate(seed);
        let toks = lex(&src);
        check_invariants(&src, &toks);
    }
}

#[test]
fn parse_layer_survives_the_same_corpus_and_nests_loop_bodies() {
    for seed in 0..1000u64 {
        let src = generate(seed);
        let f = SourceFile::parse("fuzz.rs".into(), src.clone());
        for lp in &f.loops {
            let (s, e) = lp.body;
            assert!(s <= e && e <= src.len(), "loop body out of bounds in {src:?}");
            if let Some(p) = lp.parent {
                let (ps, pe) = f.loops[p].body;
                assert!(ps <= s && e <= pe, "child loop body escapes its parent in {src:?}");
            }
        }
        for a in &f.allows {
            assert!(a.line >= 1, "allow line must be 1-based in {src:?}");
        }
    }
}

#[test]
fn raw_string_fencing_is_exact_not_greedy() {
    // `"#` inside an `r##"…"##` body must not terminate the literal.
    let src = r###"let x = r##"body "# still body"## ; after"###;
    let toks = lex(src);
    let lit = toks
        .iter()
        .find(|t| t.kind == TokKind::Literal)
        .expect("raw string literal");
    assert_eq!(lit.text(src), r###"r##"body "# still body"##"###);
    assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text(src) == "after"));
}

#[test]
fn unterminated_tails_consume_to_eof_without_panicking() {
    for src in [
        "r#\"never closed",
        "/* outer /* inner */ still open",
        "\"dangling escape \\",
        "b'",
        "'",
        "r#",
    ] {
        let toks = lex(src);
        check_invariants(src, &toks);
        if let Some(last) = toks.last() {
            assert!(last.end <= src.len());
        }
    }
}
