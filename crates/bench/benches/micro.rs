//! Micro-benchmarks of the framework's hot paths: hash family,
//! signature generation (IF vs IB vs parallel), the selection backends,
//! LSH construction, skyline algorithms, and the aggregate R-tree
//! queries that dominate Simple-Greedy.
//!
//! Hand-rolled harness (`harness = false`): the offline build
//! environment has no criterion, so each case is timed with
//! `std::time::Instant` over a fixed number of iterations after a
//! warm-up pass. Run with `cargo bench -p skydiver-bench`.

use std::hint::black_box;
use std::time::Instant;

use skydiver_core::minhash::{sig_gen_ib, sig_gen_if, sig_gen_parallel, HashFamily};
use skydiver_core::{
    select_diverse, GammaSets, LshDistance, LshIndex, LshParams, SeedRule, SignatureDistance,
    TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_data::generators::{anticorrelated, independent};
use skydiver_rtree::{BufferPool, RTree};
use skydiver_skyline::{bbs, bnl, dc, sfs};

/// Times `iters` runs of `f` (after one warm-up) and prints the mean.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
    if per_iter >= 1e-3 {
        println!("{name:<40} {:>12.3} ms/iter", per_iter * 1e3);
    } else {
        println!("{name:<40} {:>12.3} µs/iter", per_iter * 1e6);
    }
}

fn bench_hash_family() {
    let fam = HashFamily::new(100, 1);
    let mut out = vec![0u64; 100];
    bench("hash_family/hash_all_t100", 100_000, || {
        fam.hash_all(black_box(123_456_789), &mut out);
        out[0]
    });
}

fn bench_siggen() {
    let ds = anticorrelated(50_000, 4, 1);
    let skyline = sfs(&ds, &MinDominance);
    let fam = HashFamily::new(100, 2);
    bench("siggen_50k_ant4d/index_free", 3, || {
        sig_gen_if(&ds, &MinDominance, &skyline, &fam)
    });
    bench("siggen_50k_ant4d/parallel_4", 3, || {
        sig_gen_parallel(&ds, &MinDominance, &skyline, &fam, 4)
    });
    let tree = RTree::bulk_load(&ds, 4096);
    let pts: Vec<&[f64]> = skyline.iter().map(|&s| ds.point(s)).collect();
    bench("siggen_50k_ant4d/index_based", 3, || {
        let mut pool = BufferPool::new(1 << 20);
        sig_gen_ib(&tree, &mut pool, &pts, &fam)
    });
}

fn bench_selection() {
    let ds = anticorrelated(50_000, 4, 3);
    let skyline = sfs(&ds, &MinDominance);
    let fam = HashFamily::new(100, 4);
    let out = sig_gen_if(&ds, &MinDominance, &skyline, &fam);
    for k in [2usize, 10, 50] {
        bench(&format!("selection/mh_greedy_k{k}"), 10, || {
            let mut dist = SignatureDistance::new(&out.matrix);
            select_diverse(
                &mut dist,
                &out.scores,
                k,
                SeedRule::MaxDominance,
                TieBreak::MaxDominance,
            )
            .unwrap()
        });
    }
    let params = LshParams::from_threshold(100, 0.2).unwrap();
    let idx = LshIndex::build(&out.matrix, params, 20, 5).unwrap();
    bench("selection/lsh_greedy_k10", 10, || {
        let mut dist = LshDistance::new(&idx);
        select_diverse(
            &mut dist,
            &out.scores,
            10,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .unwrap()
    });
    bench("selection/lsh_build", 10, || {
        LshIndex::build(&out.matrix, params, 20, 5).unwrap()
    });
}

fn bench_skyline() {
    let ds = independent(20_000, 4, 6);
    bench("skyline_20k_ind4d/bnl", 5, || bnl(&ds, &MinDominance));
    bench("skyline_20k_ind4d/sfs", 5, || sfs(&ds, &MinDominance));
    bench("skyline_20k_ind4d/dc", 5, || dc(&ds, &MinDominance));
    let tree = RTree::bulk_load(&ds, 4096);
    bench("skyline_20k_ind4d/bbs", 5, || {
        let mut pool = BufferPool::new(1 << 20);
        bbs(&tree, &mut pool)
    });
}

fn bench_rtree_queries() {
    let ds = independent(100_000, 4, 7);
    let tree = RTree::bulk_load(&ds, 4096);
    let skyline = sfs(&ds, &MinDominance);
    let p = ds.point(skyline[skyline.len() / 2]).to_vec();
    bench("rtree_100k/count_dominated", 20, || {
        let mut pool = BufferPool::new(1 << 20);
        tree.count_dominated(&mut pool, &p)
    });
    let small = independent(20_000, 4, 8);
    bench("rtree_100k/bulk_load_20k", 5, || {
        RTree::bulk_load(&small, 4096)
    });
}

fn bench_exact_jaccard() {
    let ds = independent(30_000, 3, 9);
    let skyline = sfs(&ds, &MinDominance);
    let gamma = GammaSets::build(&ds, &MinDominance, &skyline);
    bench("exact_jaccard_pair_30k_rows", 100, || {
        gamma.jaccard_distance(0, skyline.len() - 1)
    });
}

fn main() {
    bench_hash_family();
    bench_siggen();
    bench_selection();
    bench_skyline();
    bench_rtree_queries();
    bench_exact_jaccard();
}
