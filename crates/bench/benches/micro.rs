//! Criterion micro-benchmarks of the framework's hot paths: hash
//! family, signature generation (IF vs IB vs parallel), the selection
//! backends, LSH construction, skyline algorithms, and the aggregate
//! R-tree queries that dominate Simple-Greedy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use skydiver_core::minhash::{sig_gen_ib, sig_gen_if, sig_gen_parallel, HashFamily};
use skydiver_core::{
    select_diverse, GammaSets, LshDistance, LshIndex, LshParams, SeedRule, SignatureDistance,
    TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_data::generators::{anticorrelated, independent};
use skydiver_rtree::{BufferPool, RTree};
use skydiver_skyline::{bbs, bnl, dc, sfs};

fn bench_hash_family(c: &mut Criterion) {
    let fam = HashFamily::new(100, 1);
    let mut out = vec![0u64; 100];
    c.bench_function("hash_family/hash_all_t100", |b| {
        b.iter(|| {
            fam.hash_all(std::hint::black_box(123_456_789), &mut out);
            std::hint::black_box(&out);
        })
    });
}

fn bench_siggen(c: &mut Criterion) {
    let ds = anticorrelated(50_000, 4, 1);
    let skyline = sfs(&ds, &MinDominance);
    let fam = HashFamily::new(100, 2);
    let mut g = c.benchmark_group("siggen_50k_ant4d");
    g.sample_size(10);
    g.bench_function("index_free", |b| {
        b.iter(|| sig_gen_if(&ds, &MinDominance, &skyline, &fam))
    });
    g.bench_function("parallel_4", |b| {
        b.iter(|| sig_gen_parallel(&ds, &MinDominance, &skyline, &fam, 4))
    });
    let tree = RTree::bulk_load(&ds, 4096);
    let pts: Vec<&[f64]> = skyline.iter().map(|&s| ds.point(s)).collect();
    g.bench_function("index_based", |b| {
        b.iter(|| {
            let mut pool = BufferPool::new(1 << 20);
            sig_gen_ib(&tree, &mut pool, &pts, &fam)
        })
    });
    g.finish();
}

fn bench_selection(c: &mut Criterion) {
    let ds = anticorrelated(50_000, 4, 3);
    let skyline = sfs(&ds, &MinDominance);
    let fam = HashFamily::new(100, 4);
    let out = sig_gen_if(&ds, &MinDominance, &skyline, &fam);
    let mut g = c.benchmark_group("selection");
    for k in [2usize, 10, 50] {
        g.bench_with_input(BenchmarkId::new("mh_greedy", k), &k, |b, &k| {
            b.iter(|| {
                let mut dist = SignatureDistance::new(&out.matrix);
                select_diverse(
                    &mut dist,
                    &out.scores,
                    k,
                    SeedRule::MaxDominance,
                    TieBreak::MaxDominance,
                )
                .unwrap()
            })
        });
    }
    let params = LshParams::from_threshold(100, 0.2).unwrap();
    let idx = LshIndex::build(&out.matrix, params, 20, 5).unwrap();
    g.bench_function("lsh_greedy_k10", |b| {
        b.iter(|| {
            let mut dist = LshDistance::new(&idx);
            select_diverse(
                &mut dist,
                &out.scores,
                10,
                SeedRule::MaxDominance,
                TieBreak::MaxDominance,
            )
            .unwrap()
        })
    });
    g.bench_function("lsh_build", |b| {
        b.iter(|| LshIndex::build(&out.matrix, params, 20, 5).unwrap())
    });
    g.finish();
}

fn bench_skyline(c: &mut Criterion) {
    let ds = independent(20_000, 4, 6);
    let mut g = c.benchmark_group("skyline_20k_ind4d");
    g.sample_size(10);
    g.bench_function("bnl", |b| b.iter(|| bnl(&ds, &MinDominance)));
    g.bench_function("sfs", |b| b.iter(|| sfs(&ds, &MinDominance)));
    g.bench_function("dc", |b| b.iter(|| dc(&ds, &MinDominance)));
    let tree = RTree::bulk_load(&ds, 4096);
    g.bench_function("bbs", |b| {
        b.iter(|| {
            let mut pool = BufferPool::new(1 << 20);
            bbs(&tree, &mut pool)
        })
    });
    g.finish();
}

fn bench_rtree_queries(c: &mut Criterion) {
    let ds = independent(100_000, 4, 7);
    let tree = RTree::bulk_load(&ds, 4096);
    let skyline = sfs(&ds, &MinDominance);
    let p = ds.point(skyline[skyline.len() / 2]).to_vec();
    let mut g = c.benchmark_group("rtree_100k");
    g.bench_function("count_dominated", |b| {
        b.iter(|| {
            let mut pool = BufferPool::new(1 << 20);
            tree.count_dominated(&mut pool, &p)
        })
    });
    g.sample_size(10);
    g.bench_function("bulk_load_20k", |b| {
        let small = independent(20_000, 4, 8);
        b.iter(|| RTree::bulk_load(&small, 4096))
    });
    g.finish();
}

fn bench_exact_jaccard(c: &mut Criterion) {
    let ds = independent(30_000, 3, 9);
    let skyline = sfs(&ds, &MinDominance);
    let gamma = GammaSets::build(&ds, &MinDominance, &skyline);
    c.bench_function("exact_jaccard_pair_30k_rows", |b| {
        b.iter(|| gamma.jaccard_distance(0, skyline.len() - 1))
    });
}

criterion_group!(
    benches,
    bench_hash_family,
    bench_siggen,
    bench_selection,
    bench_skyline,
    bench_rtree_queries,
    bench_exact_jaccard
);
criterion_main!(benches);
