//! Shared end-to-end runner for the Figure 10–13 experiments: prepares a
//! dataset + index + skyline once, then times each of the paper's four
//! algorithms on it.
//!
//! Per the paper's §5.1 convention, reported times cover the 2-step
//! diversification process only — the skyline computation itself is
//! excluded ("it does not affect the relative performance of the
//! algorithms").

use std::collections::HashMap;

use skydiver_core::minhash::{sig_gen_ib, HashFamily, SigGenOutput};
use skydiver_core::{
    brute_force_mmdp, select_diverse, ExactJaccardDistance, GammaSets, LshDistance, LshIndex,
    LshParams, RTreeJaccardDistance, SeedRule, SignatureDistance, TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_data::Dataset;
use skydiver_rtree::{BufferPool, IoStats, RTree, DEFAULT_CACHE_FRACTION, DEFAULT_PAGE_SIZE};
use skydiver_skyline::bbs;

use crate::{time_ms, Family};

/// Timing + output of one algorithm run.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Measured CPU (wall) milliseconds.
    pub cpu_ms: f64,
    /// Simulated I/O counters accumulated by the run.
    pub io: IoStats,
    /// Selected positions within the skyline, in selection order.
    pub positions: Vec<usize>,
    /// Bytes of the phase-2 representation (0 for SG/BF).
    pub memory_bytes: usize,
}

impl AlgoResult {
    /// CPU + simulated I/O milliseconds (8 ms per fault).
    pub fn total_ms(&self) -> f64 {
        crate::total_ms(self.cpu_ms, self.io)
    }
}

/// A prepared dataset: canonical data, aggregate R*-tree, skyline, and a
/// cache of signature matrices keyed by signature size.
pub struct ExperimentContext {
    /// The (already canonical, all-min) dataset.
    pub ds: Dataset,
    /// Aggregate R*-tree over `ds` (4 KiB pages).
    pub tree: RTree,
    /// Skyline point indices (from BBS).
    pub skyline: Vec<usize>,
    sig_cache: HashMap<usize, (SigGenOutput, f64, IoStats)>,
    hash_seed: u64,
}

impl ExperimentContext {
    /// Generates, indexes and skylines one workload.
    pub fn new(family: Family, n: usize, d: usize, seed: u64) -> Self {
        let ds = family.generate(n, d, seed);
        let tree = RTree::bulk_load(&ds, DEFAULT_PAGE_SIZE);
        let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
        let skyline = bbs(&tree, &mut pool);
        ExperimentContext {
            ds,
            tree,
            skyline,
            sig_cache: HashMap::new(),
            hash_seed: seed ^ 0x51D9,
        }
    }

    /// Skyline cardinality `m`.
    pub fn m(&self) -> usize {
        self.skyline.len()
    }

    /// A cold buffer pool sized to the paper's 20 % of the index.
    pub fn fresh_pool(&self) -> BufferPool {
        BufferPool::for_index(self.tree.num_pages(), DEFAULT_CACHE_FRACTION)
    }

    /// `SigGen-IB` fingerprints of size `t`, computed once per `t` and
    /// cached (MH and LSH share Phase 1; both runs report its cost).
    fn signatures(&mut self, t: usize) -> (&SigGenOutput, f64, IoStats) {
        if !self.sig_cache.contains_key(&t) {
            let fam = HashFamily::new(t, self.hash_seed);
            let pts: Vec<&[f64]> = self.skyline.iter().map(|&s| self.ds.point(s)).collect();
            let mut pool = self.fresh_pool();
            let ((out, _), cpu) = time_ms(|| sig_gen_ib(&self.tree, &mut pool, &pts, &fam));
            self.sig_cache.insert(t, (out, cpu, pool.stats()));
        }
        let (out, cpu, io) = self.sig_cache.get(&t).expect("just inserted");
        (out, *cpu, *io)
    }

    /// SkyDiver-MH with signature size `t`.
    pub fn run_mh(&mut self, t: usize, k: usize) -> AlgoResult {
        let (out, sig_cpu, sig_io) = self.signatures(t);
        let scores = out.scores.clone();
        let matrix = out.matrix.clone();
        let (positions, sel_cpu) = time_ms(|| {
            let mut dist = SignatureDistance::new(&matrix);
            select_diverse(&mut dist, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .expect("MH selection")
        });
        AlgoResult {
            cpu_ms: sig_cpu + sel_cpu,
            io: sig_io,
            positions,
            memory_bytes: matrix.memory_bytes(),
        }
    }

    /// SkyDiver-LSH with signature size `t`, threshold `xi`, `buckets`
    /// per zone.
    pub fn run_lsh(&mut self, t: usize, xi: f64, buckets: usize, k: usize) -> AlgoResult {
        let (out, sig_cpu, sig_io) = self.signatures(t);
        let scores = out.scores.clone();
        let matrix = out.matrix.clone();
        let ((positions, memory), sel_cpu) = time_ms(|| {
            let params = LshParams::from_threshold(matrix.t(), xi).expect("banding");
            let idx = LshIndex::build(&matrix, params, buckets, 11).expect("LSH index");
            let mut dist = LshDistance::new(&idx);
            let sel = select_diverse(
                &mut dist,
                &scores,
                k,
                SeedRule::MaxDominance,
                TieBreak::MaxDominance,
            )
            .expect("LSH selection");
            (sel, idx.memory_bytes())
        });
        AlgoResult {
            cpu_ms: sig_cpu + sel_cpu,
            io: sig_io,
            positions,
            memory_bytes: memory,
        }
    }

    /// Simple-Greedy: exact Jaccard through aggregate range-count
    /// queries on the R-tree (I/O-bound). Needs the domination scores,
    /// which SG obtains from `|Γ(p)|` counts — charged to the same pool.
    pub fn run_sg(&mut self, k: usize) -> AlgoResult {
        let mut pool = self.fresh_pool();
        let pts: Vec<Vec<f64>> = self.skyline.iter().map(|&s| self.ds.point(s).to_vec()).collect();
        let (positions, cpu) = time_ms(|| {
            // Domination scores via one count query per skyline point.
            let scores: Vec<u64> = pts
                .iter()
                .map(|p| self.tree.count_dominated(&mut pool, p))
                .collect();
            let mut dist = RTreeJaccardDistance::new(&self.tree, &mut pool, pts.clone());
            select_diverse(&mut dist, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .expect("SG selection")
        });
        AlgoResult {
            cpu_ms: cpu,
            io: pool.stats(),
            positions,
            memory_bytes: 0,
        }
    }

    /// Brute-Force over exact Γ-set Jaccard distances. Returns `None`
    /// when the skyline exceeds `max_m` (the paper, too, could not
    /// finish BF beyond tiny instances).
    pub fn run_bf(&mut self, k: usize, max_m: usize) -> Option<AlgoResult> {
        let m = self.m();
        if m > max_m || m < k {
            return None;
        }
        let (positions, cpu) = time_ms(|| {
            let gamma = GammaSets::build(&self.ds, &MinDominance, &self.skyline);
            let mut dist = ExactJaccardDistance::new(&gamma);
            let (sel, _) = brute_force_mmdp(&mut dist, k, 1 << 40).expect("BF enumeration");
            sel
        });
        // BF's Γ materialisation is one scan of the data file.
        let io = IoStats {
            sequential_pages: crate::scan_pages(self.ds.len(), self.ds.dims()),
            ..IoStats::default()
        };
        Some(AlgoResult {
            cpu_ms: cpu,
            io,
            positions,
            memory_bytes: 0,
        })
    }

    /// Exact diversity (original-space min pairwise Jaccard) of a
    /// selection (see [`crate::exact_selection_diversity`]).
    pub fn exact_diversity(&self, positions: &[usize]) -> f64 {
        crate::exact_selection_diversity(&self.ds, &self.skyline, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::new(Family::Ind, 3000, 3, 1)
    }

    #[test]
    fn all_algorithms_return_k_selections() {
        let mut c = ctx();
        let k = 4.min(c.m());
        assert!(k >= 2, "need a usable skyline, got m = {}", c.m());
        for r in [
            c.run_mh(32, k),
            c.run_lsh(32, 0.2, 10, k),
            c.run_sg(k),
            c.run_bf(2, 10_000).expect("small skyline"),
        ] {
            assert!(!r.positions.is_empty());
            assert!(r.positions.iter().all(|&p| p < c.m()));
            let div = c.exact_diversity(&r.positions);
            assert!((0.0..=1.0).contains(&div), "diversity {div}");
            assert!(r.total_ms() >= r.cpu_ms);
        }
    }

    #[test]
    fn signature_cache_reuses_phase_one() {
        let mut c = ctx();
        let k = 3.min(c.m());
        let first = c.run_mh(16, k);
        let second = c.run_mh(16, k);
        // Same cached fingerprint → identical reported siggen I/O.
        assert_eq!(first.io, second.io);
        assert_eq!(first.positions, second.positions);
    }

    #[test]
    fn bf_respects_the_size_guard() {
        let mut c = ctx();
        assert!(c.run_bf(2, 0).is_none(), "guard must trip at max_m = 0");
    }
}
