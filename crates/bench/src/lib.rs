//! Shared harness for the experiment binaries that reproduce every table
//! and figure of the SkyDiver paper (see `DESIGN.md` §4 for the index
//! and `EXPERIMENTS.md` for recorded runs).
//!
//! Each binary accepts:
//! * `--scale <f>` — fraction of the paper's cardinalities (default 0.1,
//!   so a laptop run finishes in minutes),
//! * `--full` — paper-scale cardinalities (`--scale 1.0`),
//! * experiment-specific flags documented per binary.
//!
//! Timing convention (paper §5.1): "CPU time" is the measured wall time
//! of the single-threaded computation; "total time" adds the simulated
//! I/O charge of 8 ms per page fault from the buffer-pool counters.

pub mod runner;

use std::time::Instant;

use skydiver_data::generators::{anticorrelated, independent};
use skydiver_data::surrogates::{forest_cover, recipes, FC_CARDINALITY, REC_CARDINALITY};
use skydiver_data::Dataset;
use skydiver_rtree::{IoStats, DEFAULT_MS_PER_FAULT};

/// Paper-default cardinality of the synthetic data sets (5 M points).
pub const SYN_CARDINALITY: usize = 5_000_000;

/// One of the paper's four data-set families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Independent / uniform (`IND`).
    Ind,
    /// Anticorrelated (`ANT`).
    Ant,
    /// Forest Cover surrogate (`FC`).
    Fc,
    /// Recipes surrogate (`REC`).
    Rec,
}

impl Family {
    /// Display name used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            Family::Ind => "IND",
            Family::Ant => "ANT",
            Family::Fc => "FC",
            Family::Rec => "REC",
        }
    }

    /// Paper-default cardinality of this family.
    pub fn default_cardinality(self) -> usize {
        match self {
            Family::Ind | Family::Ant => SYN_CARDINALITY,
            Family::Fc => FC_CARDINALITY,
            Family::Rec => REC_CARDINALITY,
        }
    }

    /// The dimensionalities the paper evaluates for this family.
    pub fn paper_dims(self) -> &'static [usize] {
        match self {
            Family::Ind | Family::Ant => &[2, 3, 4, 6],
            Family::Fc | Family::Rec => &[4, 5, 7],
        }
    }

    /// The paper's default dimensionality (underlined in Table 4).
    pub fn default_dims(self) -> usize {
        match self {
            Family::Ind | Family::Ant => 4,
            Family::Fc | Family::Rec => 5,
        }
    }

    /// Generates the family at cardinality `n` and dimensionality `d`
    /// with a fixed seed.
    pub fn generate(self, n: usize, d: usize, seed: u64) -> Dataset {
        match self {
            Family::Ind => independent(n, d, seed),
            Family::Ant => anticorrelated(n, d, seed),
            Family::Fc => forest_cover(n, seed).project(d),
            Family::Rec => recipes(n, seed).project(d),
        }
    }
}

/// Common command-line options of the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Fraction of the paper's cardinalities (0 < scale ≤ 1).
    pub scale: f64,
    /// Remaining `--key value` flags for experiment-specific options.
    pub extra: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args()`: `--scale f`, `--full`, plus arbitrary
    /// `--key value` pairs surfaced via [`Args::get`].
    pub fn parse() -> Args {
        let mut scale = 0.1;
        let mut extra = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a number");
                }
                "--full" => scale = 1.0,
                flag if flag.starts_with("--") => {
                    let key = flag.trim_start_matches("--").to_string();
                    let val = match it.peek() {
                        Some(v) if !v.starts_with("--") => it.next().unwrap(),
                        _ => String::from("true"),
                    };
                    extra.push((key, val));
                }
                other => panic!("unexpected argument {other:?}"),
            }
        }
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Args { scale, extra }
    }

    /// Looks up an experiment-specific flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.extra
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a flag into any `FromStr` type, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Scaled cardinality for a family (at least 1 000 points).
    pub fn cardinality(&self, family: Family) -> usize {
        ((family.default_cardinality() as f64 * self.scale) as usize).max(1_000)
    }
}

/// Measures the wall time of `f` in milliseconds (the "CPU time" of the
/// paper's convention; the computation is single-threaded).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// "Total time": measured CPU milliseconds plus the simulated I/O charge
/// (8 ms per fault / sequential page, paper §5.1).
pub fn total_ms(cpu_ms: f64, io: IoStats) -> f64 {
    cpu_ms + io.io_ms(DEFAULT_MS_PER_FAULT)
}

/// Sequential-scan page count of a data file: `d`-dimensional points at
/// 8 bytes per coordinate (+8-byte id) in 4 KiB pages.
pub fn scan_pages(n: usize, d: usize) -> u64 {
    skydiver_rtree::buffer::pages_for_records(n, 8 * d + 8, skydiver_rtree::DEFAULT_PAGE_SIZE)
}

/// Exact diversity (min pairwise dominated-set Jaccard distance, in the
/// *original* space) of the selected skyline points — the quality metric
/// of Figures 12–13. Builds Γ bitsets for the selected points only, so
/// it stays cheap even when the full skyline is huge.
pub fn exact_selection_diversity(
    canon: &Dataset,
    skyline: &[usize],
    selected_positions: &[usize],
) -> f64 {
    use skydiver_core::GammaSets;
    use skydiver_data::dominance::MinDominance;
    let picked: Vec<usize> = selected_positions.iter().map(|&p| skyline[p]).collect();
    let gamma = GammaSets::build(canon, &MinDominance, &picked);
    let mut worst = f64::INFINITY;
    for i in 0..picked.len() {
        for j in (i + 1)..picked.len() {
            worst = worst.min(gamma.jaccard_distance(i, j));
        }
    }
    worst
}

/// Prints a fixed-width table row; `print_header` first.
pub fn print_header(cols: &[&str]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Prints one row of values already formatted as strings.
pub fn print_row(cols: &[String]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a millisecond value compactly (ms under 10 s, seconds above).
pub fn fmt_ms(ms: f64) -> String {
    if ms < 10_000.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.1}s", ms / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_metadata() {
        assert_eq!(Family::Ind.name(), "IND");
        assert_eq!(Family::Fc.default_cardinality(), FC_CARDINALITY);
        assert_eq!(Family::Ant.paper_dims(), &[2, 3, 4, 6]);
        assert_eq!(Family::Rec.default_dims(), 5);
    }

    #[test]
    fn families_generate_requested_shapes() {
        for f in [Family::Ind, Family::Ant, Family::Fc, Family::Rec] {
            let ds = f.generate(2000, 4, 1);
            assert_eq!(ds.len(), 2000);
            assert_eq!(ds.dims(), 4);
        }
    }

    #[test]
    fn scan_pages_matches_record_math() {
        // 4-D points: 40-byte records, 102 per 4 KiB page.
        assert_eq!(scan_pages(102, 4), 1);
        assert_eq!(scan_pages(103, 4), 2);
    }

    #[test]
    fn exact_selection_diversity_on_known_instance() {
        use skydiver_data::Dataset;
        // Two skyline points with disjoint dominated sets → diversity 1.
        let ds = Dataset::from_rows(
            2,
            &[[0.0, 1.0], [1.0, 0.0], [0.2, 1.5], [1.5, 0.2]],
        );
        let skyline = vec![0, 1];
        let d = exact_selection_diversity(&ds, &skyline, &[0, 1]);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn fmt_ms_switches_units() {
        assert_eq!(fmt_ms(12.34), "12.3ms");
        assert_eq!(fmt_ms(12_340.0), "12.3s");
    }
}
