//! **§3.2 sparsity remark** — the fraction of zeros in the domination
//! matrix for 10 000 uniformly distributed points: the paper reports
//! 45 % at 3 dimensions, 84 % at 5, 97 % at 7 — the reason naive
//! sampling of `D − S` fails and MinHash is needed.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin sparsity
//! ```

use skydiver_bench::{print_header, print_row, Args};
use skydiver_data::dominance::MinDominance;
use skydiver_data::generators::independent;
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    let n = args.get_or("n", 10_000usize);

    println!("Domination-matrix sparsity, {n} uniform points (paper: 45%/84%/97%)");
    print_header(&["d", "m", "zeros"]);
    for (i, d) in [3usize, 5, 7].into_iter().enumerate() {
        let ds = independent(n, d, 42 + i as u64);
        let skyline = sfs(&ds, &MinDominance);
        let sparsity = ds.domination_matrix_sparsity(&skyline);
        print_row(&[
            d.to_string(),
            skyline.len().to_string(),
            format!("{:.1}%", 100.0 * sparsity),
        ]);
    }
}
