//! **§2 comparison** — dominance-based diversification (SkyDiver)
//! against the L<sub>p</sub>-distance representative-skyline family
//! (\[32\]/\[38\]) the paper argues against.
//!
//! Three measurements per data set:
//! * dominated-set diversity (min exact Jd) of each method's pick,
//! * coverage of each pick,
//! * **scale robustness**: how much each pick changes when one
//!   attribute is multiplied by 1000 (dominance is invariant; L2 is
//!   not — the paper's "the scale independence property of skylines is
//!   disregarded" critique).
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin lp_compare [-- --scale 0.1]
//! ```

use skydiver_bench::{exact_selection_diversity, print_header, print_row, Args, Family};
use skydiver_core::{
    coverage_fraction, distance_based_representatives, select_diverse, ExactJaccardDistance,
    GammaSets, SeedRule, TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_data::Dataset;
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    let k = args.get_or("k", 10usize);

    println!("Dominance-based (SkyDiver) vs Lp-based representatives, k={k} (scale {})", args.scale);
    print_header(&[
        "data", "method", "diversity", "coverage", "pick drift",
    ]);

    for family in [Family::Ind, Family::Ant, Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        let d = family.default_dims();
        let ds = family.generate(n, d, 1);
        let skyline = sfs(&ds, &MinDominance);
        if skyline.len() < k {
            continue;
        }
        let gamma = GammaSets::build(&ds, &MinDominance, &skyline);
        let scores = gamma.scores();

        // A copy with attribute 0 rescaled ×1000 (same dominance).
        let mut scaled = Dataset::with_capacity(d, ds.len());
        let mut row = vec![0.0; d];
        for p in ds.iter() {
            row.copy_from_slice(p);
            row[0] *= 1000.0;
            scaled.push(&row);
        }

        // SkyDiver (exact backend, to isolate the *measure* from the
        // MinHash approximation).
        let mut exact = ExactJaccardDistance::new(&gamma);
        let sky_sel = select_diverse(
            &mut exact,
            &scores,
            k,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .expect("SkyDiver selection");
        let sky_sel_scaled = {
            let g2 = GammaSets::build(&scaled, &MinDominance, &skyline);
            let mut e2 = ExactJaccardDistance::new(&g2);
            select_diverse(&mut e2, &g2.scores(), k, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .expect("SkyDiver selection (scaled)")
        };

        // Lp representatives on raw and rescaled data.
        let lp_sel = distance_based_representatives(&ds, &skyline, k).expect("Lp selection");
        let lp_sel_scaled =
            distance_based_representatives(&scaled, &skyline, k).expect("Lp selection (scaled)");

        for (name, sel, sel_scaled) in [
            ("SkyDiver", &sky_sel, &sky_sel_scaled),
            ("Lp-repr", &lp_sel, &lp_sel_scaled),
        ] {
            let diversity = exact_selection_diversity(&ds, &skyline, sel);
            let coverage = coverage_fraction(&gamma, sel);
            let drift = pick_drift(sel, sel_scaled);
            print_row(&[
                family.name().into(),
                name.into(),
                format!("{diversity:.3}"),
                format!("{:.1}%", 100.0 * coverage),
                format!("{:.0}%", 100.0 * drift),
            ]);
        }
    }
    println!("\nexpected shape: SkyDiver wins on dominated-set diversity and");
    println!("coverage and never drifts under attribute rescaling; the Lp");
    println!("pick drifts substantially (paper §2's scale-dependence critique).");
}

/// Fraction of the selection replaced after rescaling (0 = identical).
fn pick_drift(a: &[usize], b: &[usize]) -> f64 {
    let sa: std::collections::HashSet<usize> = a.iter().copied().collect();
    let common = b.iter().filter(|x| sa.contains(x)).count();
    1.0 - common as f64 / a.len() as f64
}
