//! **Table 1** — k-max-coverage vs k-dispersion: coverage and diversity
//! of both objectives on IND5M4D, FC5D and REC5D for k ∈ {2, 10, 50}.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin table1 [-- --scale 0.1]
//! ```
//!
//! Expected shape (paper): coverage-greedy reaches ≥93 % coverage but
//! its diversity collapses as k grows (0.018–0.634); dispersion keeps
//! diversity near 1.0 at a modest coverage cost.

use skydiver_bench::{exact_selection_diversity, print_header, print_row, Args, Family};
use skydiver_core::{
    coverage_fraction, greedy_max_coverage, min_pairwise, select_diverse, ExactJaccardDistance,
    GammaSets, SeedRule, TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    let ks: Vec<usize> = vec![2, 10, 50];

    println!("Table 1: k-max-coverage vs k-dispersion (scale {})", args.scale);
    print_header(&[
        "data", "k", "cov.coverage", "cov.divers", "disp.coverage", "disp.divers",
    ]);

    for (family, d) in [(Family::Ind, 4), (Family::Fc, 5), (Family::Rec, 5)] {
        let n = args.cardinality(family);
        let ds = family.generate(n, d, 1);
        let skyline = sfs(&ds, &MinDominance);
        let gamma = GammaSets::build(&ds, &MinDominance, &skyline);
        let scores = gamma.scores();
        let label = format!("{}{}D(n={})", family.name(), d, n);

        for &k in &ks {
            if k > skyline.len() {
                print_row(&[
                    label.clone(),
                    k.to_string(),
                    "m<k".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let cov_sel = greedy_max_coverage(&gamma, k).expect("coverage selection");
            let mut exact = ExactJaccardDistance::new(&gamma);
            let disp_sel = select_diverse(
                &mut exact,
                &scores,
                k,
                SeedRule::MaxDominance,
                TieBreak::MaxDominance,
            )
            .expect("dispersion selection");

            let cov_cov = coverage_fraction(&gamma, &cov_sel);
            let disp_cov = coverage_fraction(&gamma, &disp_sel);
            let cov_div = min_pairwise(&mut exact, &cov_sel);
            let disp_div = min_pairwise(&mut exact, &disp_sel);
            // Sanity: the targeted re-scorer agrees with full Γ sets.
            debug_assert!(
                (exact_selection_diversity(&ds, &skyline, &disp_sel) - disp_div).abs() < 1e-9
            );

            print_row(&[
                label.clone(),
                k.to_string(),
                format!("{:.1}%", 100.0 * cov_cov),
                format!("{cov_div:.3}"),
                format!("{:.1}%", 100.0 * disp_cov),
                format!("{disp_div:.3}"),
            ]);
        }
    }
    println!("\npaper reference (Table 1): coverage picks overlap heavily");
    println!("(diversity 0.018-0.634) while dispersion stays at 0.55-1.0 with");
    println!("coverage still 56-98%.");
}
