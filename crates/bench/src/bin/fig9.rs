//! **Figure 9** — MinHash signature-generation time (CPU and total,
//! signature size 100) on IND and ANT:
//! * `--axis cardinality` (default): 1, 2, 5, 7 M points × scale at d=4
//!   (panels a, b),
//! * `--axis dims`: d ∈ {2, 3, 4, 6} at 5 M × scale (panels c, d).
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin fig9 [-- --scale 0.05 --axis dims]
//! ```
//!
//! Expected shape: ANT consistently favours IB; on IND, IF wins on total
//! time (the R-tree costs more I/O than a linear scan) while IB wins on
//! CPU; on the dims axis, low-d ANT favours IF, higher d favours IB, and
//! IND 2D strongly favours IB (few skyline points, massive pruning).

use skydiver_bench::{fmt_ms, print_header, print_row, scan_pages, time_ms, total_ms, Args, Family};
use skydiver_core::minhash::{sig_gen_ib, sig_gen_ib_active, sig_gen_if, HashFamily};
use skydiver_data::dominance::MinDominance;
use skydiver_rtree::{BufferPool, RTree, DEFAULT_CACHE_FRACTION, DEFAULT_PAGE_SIZE};
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    let axis = args.get("axis").unwrap_or("cardinality").to_string();
    let t = args.get_or("t", 100usize);
    // `--active` swaps in SigGen-IB/A (identical output, less CPU).
    let active = args.get("active").is_some();
    let fam_hash = HashFamily::new(t, 7);

    let configs: Vec<(usize, usize)> = match axis.as_str() {
        "cardinality" => [1_000_000usize, 2_000_000, 5_000_000, 7_000_000]
            .iter()
            .map(|&n| (((n as f64 * args.scale) as usize).max(1000), 4))
            .collect(),
        "dims" => [2usize, 3, 4, 6]
            .iter()
            .map(|&d| (((5_000_000f64 * args.scale) as usize).max(1000), d))
            .collect(),
        other => panic!("--axis must be cardinality or dims, got {other}"),
    };

    println!(
        "Figure 9 ({axis} axis): signature generation, t={t}, scale {}",
        args.scale
    );
    print_header(&[
        "data", "n", "d", "m", "IF cpu", "IF total", "IB cpu", "IB total",
    ]);

    for family in [Family::Ind, Family::Ant] {
        for &(n, d) in &configs {
            let ds = family.generate(n, d, 1);
            let skyline = sfs(&ds, &MinDominance);
            let pts: Vec<&[f64]> = skyline.iter().map(|&s| ds.point(s)).collect();

            let (_, if_cpu) = time_ms(|| sig_gen_if(&ds, &MinDominance, &skyline, &fam_hash));
            let if_total = if_cpu + scan_pages(ds.len(), d) as f64 * 8.0;

            let tree = RTree::bulk_load(&ds, DEFAULT_PAGE_SIZE);
            let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
            let (_, ib_cpu) = if active {
                time_ms(|| sig_gen_ib_active(&tree, &mut pool, &pts, &fam_hash))
            } else {
                time_ms(|| sig_gen_ib(&tree, &mut pool, &pts, &fam_hash))
            };
            let ib_total = total_ms(ib_cpu, pool.stats());

            print_row(&[
                family.name().into(),
                n.to_string(),
                d.to_string(),
                skyline.len().to_string(),
                fmt_ms(if_cpu),
                fmt_ms(if_total),
                fmt_ms(ib_cpu),
                fmt_ms(ib_total),
            ]);
        }
    }
    println!("\npaper reference (Fig 9): ANT favours IB; IND favours IF on");
    println!("total time but IB on CPU; on dims, IB wins for d>=4 and for");
    println!("IND 2D, IF wins for low-d ANT.");
}
