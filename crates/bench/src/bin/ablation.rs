//! **Ablations** of the design choices called out in `DESIGN.md` §3:
//!
//! 1. selection seed: max-domination (paper) vs classic farthest-pair,
//! 2. tie-break: domination score vs first-index,
//! 3. objective: greedy k-MMDP vs greedy k-MSDP,
//! 4. signature size sweep (estimation error in practice),
//! 5. parallel vs sequential index-free fingerprinting,
//! 6. SigGen-IB vs the inherited-classification SigGen-IB/A variant.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin ablation [-- --scale 0.05]
//! ```

use skydiver_bench::{
    exact_selection_diversity, print_header, print_row, time_ms, Args, Family,
};
use skydiver_core::minhash::{sig_gen_if, sig_gen_parallel, HashFamily};
use skydiver_core::{
    greedy_msdp, min_pairwise, select_diverse, ExactJaccardDistance, GammaSets, SeedRule,
    SignatureDistance, TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    let k = args.get_or("k", 10usize);
    let family = Family::Ant;
    let n = args.cardinality(family);
    let d = family.default_dims();

    let ds = family.generate(n, d, 1);
    let skyline = sfs(&ds, &MinDominance);
    let m = skyline.len();
    println!("Ablations on {} {d}D, n={n}, m={m}, k={k}\n", family.name());

    let fam = HashFamily::new(100, 9);
    let out = sig_gen_if(&ds, &MinDominance, &skyline, &fam);

    // 1 + 2: seed and tie-break rules over the same signatures.
    println!("[1/2] selection seed and tie-break (diversity in original space):");
    print_header(&["seed", "tie-break", "diversity", "select ms"]);
    for (seed_rule, seed_name) in [
        (SeedRule::MaxDominance, "max-dom"),
        (SeedRule::FarthestPair, "far-pair"),
    ] {
        for (tie, tie_name) in [
            (TieBreak::MaxDominance, "max-dom"),
            (TieBreak::FirstIndex, "first"),
        ] {
            let (sel, ms) = time_ms(|| {
                let mut dist = SignatureDistance::new(&out.matrix);
                select_diverse(&mut dist, &out.scores, k, seed_rule, tie).expect("selection")
            });
            let div = exact_selection_diversity(&ds, &skyline, &sel);
            print_row(&[
                seed_name.into(),
                tie_name.into(),
                format!("{div:.3}"),
                format!("{ms:.1}"),
            ]);
        }
    }
    println!("(paper: max-dom seeding keeps the 2-approximation at O(k^2 m)");
    println!(" instead of the farthest pair's O(m^2) distance evaluations)\n");

    // 3: MMDP vs MSDP greedy, re-scored exactly.
    println!("[3] objective: greedy k-MMDP vs greedy k-MSDP:");
    print_header(&["objective", "min Jd", "k"]);
    {
        let mut dist = SignatureDistance::new(&out.matrix);
        let mmdp = select_diverse(
            &mut dist,
            &out.scores,
            k,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .expect("mmdp");
        let msdp = greedy_msdp(&mut dist, &out.scores, k).expect("msdp");
        print_row(&[
            "k-MMDP".into(),
            format!("{:.3}", exact_selection_diversity(&ds, &skyline, &mmdp)),
            k.to_string(),
        ]);
        print_row(&[
            "k-MSDP".into(),
            format!("{:.3}", exact_selection_diversity(&ds, &skyline, &msdp)),
            k.to_string(),
        ]);
    }
    println!("(paper §3.1: max-sum tolerates close pairs; max-min does not)\n");

    // 4: signature size sweep — estimation error and selection quality.
    println!("[4] signature size sweep (mean |Jd_est - Jd| over 200 pairs):");
    print_header(&["t", "mean err", "diversity"]);
    let sample_m = m.min(150);
    let gamma_small = GammaSets::build(&ds, &MinDominance, &skyline[..sample_m]);
    for t in [20usize, 50, 100, 200, 400] {
        let famt = HashFamily::new(t, 21);
        let outt = sig_gen_if(&ds, &MinDominance, &skyline, &famt);
        let mut err = 0.0;
        let mut pairs = 0usize;
        'outer: for i in 0..sample_m {
            for j in (i + 1)..sample_m {
                err += (outt.matrix.estimated_distance(i, j)
                    - gamma_small.jaccard_distance(i, j))
                .abs();
                pairs += 1;
                if pairs >= 200 {
                    break 'outer;
                }
            }
        }
        let mut dist = SignatureDistance::new(&outt.matrix);
        let sel = select_diverse(
            &mut dist,
            &outt.scores,
            k,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .expect("selection");
        print_row(&[
            t.to_string(),
            format!("{:.4}", err / pairs as f64),
            format!("{:.3}", exact_selection_diversity(&ds, &skyline, &sel)),
        ]);
    }
    println!("(error shrinks like 1/sqrt(t); quality saturates around t=100)\n");

    // 5: parallel fingerprinting speedup.
    println!("[5] parallel SigGen-IF (bit-identical results):");
    print_header(&["threads", "cpu ms", "speedup"]);
    let (_, base_ms) = time_ms(|| sig_gen_if(&ds, &MinDominance, &skyline, &fam));
    print_row(&["1".into(), format!("{base_ms:.0}"), "1.0x".into()]);
    for threads in [2usize, 4, 8] {
        let (outp, ms) =
            time_ms(|| sig_gen_parallel(&ds, &MinDominance, &skyline, &fam, threads));
        assert_eq!(outp.matrix, out.matrix, "parallel must be bit-identical");
        print_row(&[
            threads.to_string(),
            format!("{ms:.0}"),
            format!("{:.1}x", base_ms / ms),
        ]);
    }

    // 6: plain vs inherited-classification index-based generation.
    println!("\n[6] SigGen-IB vs SigGen-IB/A (bit-identical output):");
    print_header(&["variant", "cpu ms", "nodes read"]);
    {
        use skydiver_core::minhash::{sig_gen_ib, sig_gen_ib_active};
        use skydiver_rtree::{BufferPool, RTree, DEFAULT_CACHE_FRACTION, DEFAULT_PAGE_SIZE};
        let tree = RTree::bulk_load(&ds, DEFAULT_PAGE_SIZE);
        let pts: Vec<&[f64]> = skyline.iter().map(|&s| ds.point(s)).collect();
        let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
        let ((plain, pstats), plain_ms) =
            time_ms(|| sig_gen_ib(&tree, &mut pool, &pts, &fam));
        let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
        let ((active, astats), active_ms) =
            time_ms(|| sig_gen_ib_active(&tree, &mut pool, &pts, &fam));
        assert_eq!(plain.matrix, active.matrix, "IB/A must be bit-identical");
        assert_eq!(plain.scores, active.scores);
        print_row(&["IB".into(), format!("{plain_ms:.0}"), pstats.nodes_read.to_string()]);
        print_row(&["IB/A".into(), format!("{active_ms:.0}"), astats.nodes_read.to_string()]);
        println!("(same traversal and output; IB/A re-classifies only the");
        println!(" still-partial skyline points at each node)");
    }

    // Companion sanity: exact backend agrees with itself via min_pairwise.
    let gamma = GammaSets::build(&ds, &MinDominance, &skyline[..sample_m]);
    let mut exact = ExactJaccardDistance::new(&gamma);
    let _ = min_pairwise(&mut exact, &[0, sample_m - 1]);
}
