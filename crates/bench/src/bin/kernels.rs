//! `kernels` — before/after benchmark of the PR 2 hot-path kernels.
//!
//! Measures, on one machine and one binary, each optimised kernel
//! against its scalar/sequential reference:
//!
//! * **dominance** — the packed + blocked + monomorphic `n × m`
//!   dominance scan ([`SkylinePack::dominators_block`]) vs the scalar
//!   per-pair `dom_cmp` loop it replaced,
//! * **fingerprint** — the full `SigGen-IF` pass with the packed
//!   kernel vs the generic scalar path (forced through a dominance
//!   order that hides the canonical-min hook); the pass also spends
//!   time in hashing and slot updates common to both sides, so its
//!   speedup is a diluted view of the dominance entry above,
//! * **agreement / hamming** — the shared slot-agreement kernel vs an
//!   inline per-slot loop,
//! * **selection / SigGen-IB** — sequential vs 4-thread parallel.
//!   Checked since PR 7: the persistent-pool selection engine and the
//!   active-inheritance SigGen-IB pass win even on one core (no
//!   spawn-per-round overhead; fewer dominance tests), so the ratio is
//!   meaningful regardless of core count and the half-baseline floor
//!   catches a reintroduced pathology,
//! * **run_auto** — end-to-end wall clock at 1 vs 4 threads
//!   (informational: depends on the core count).
//!
//! ```text
//! kernels [--scale 0.1] [--out BENCH_pr2.json] [--check BENCH_pr2.json]
//! ```
//!
//! `--out` writes the JSON report; `--check BASELINE` instead compares
//! the *within-run* speedups against a committed baseline and exits
//! non-zero if any checked kernel's speedup fell below half the
//! baseline's — a machine-independent regression gate (both numbers of
//! each ratio come from the same machine and build).

use std::hint::black_box;
use std::process::ExitCode;

use skydiver_bench::{time_ms, Args, Family};
use skydiver_core::dispersion::{select_diverse, select_diverse_parallel, SeedRule, TieBreak};
use skydiver_core::diversity::SignatureDistance;
use skydiver_core::kernels::{agreement_count, agreement_count_u32, SkylinePack, ROW_BLOCK};
use skydiver_core::minhash::{sig_gen_ib, sig_gen_ib_parallel, sig_gen_if, HashFamily};
use skydiver_core::SkyDiver;
use skydiver_data::dominance::{DominanceOrd, MinDominance};
use skydiver_data::{Dataset, Preference};
use skydiver_rtree::{BufferPool, RTree};
use skydiver_skyline::sfs;

/// Skyline points used by the kernel benchmarks (capped so the scalar
/// reference finishes quickly at any scale).
const SKY_CAP: usize = 512;
/// Points sampled for the capped skyline computation.
const SKY_SAMPLE: usize = 50_000;
/// Thread count of the parallel-vs-sequential comparisons.
const PAR_THREADS: usize = 4;

/// Delegates to [`MinDominance`] but hides the canonical-min hook,
/// forcing `sig_gen_if` down the generic scalar path (the pre-PR 2
/// hot loop).
struct HiddenMin;
impl DominanceOrd for HiddenMin {
    type Item = [f64];
    fn dom_cmp(&self, a: &[f64], b: &[f64]) -> skydiver_data::Dominance {
        MinDominance.dom_cmp(a, b)
    }
}

/// A before/after pair in milliseconds.
struct Pair {
    name: &'static str,
    before_ms: f64,
    after_ms: f64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.before_ms / self.after_ms.max(1e-9)
    }
}

/// Benchmark "skyline": successive skyline layers (onion peeling) of a
/// prefix sample until [`SKY_CAP`] points are gathered. The passes only
/// require the given points to be the columns of the matrix, so a
/// capped, layered set keeps the scalar reference tractable and gives
/// every family the same column count — the kernel cost being measured.
fn capped_skyline(ds: &Dataset) -> Vec<usize> {
    let sample_len = ds.len().min(SKY_SAMPLE);
    let mut remaining: Vec<usize> = (0..sample_len).collect();
    let mut picked = Vec::new();
    while picked.len() < SKY_CAP && !remaining.is_empty() {
        let rows: Vec<&[f64]> = remaining.iter().map(|&i| ds.point(i)).collect();
        let layer_ds = Dataset::from_rows(ds.dims(), &rows);
        let layer = sfs(&layer_ds, &MinDominance);
        let mut in_layer = vec![false; remaining.len()];
        for &l in &layer {
            in_layer[l] = true;
            if picked.len() < SKY_CAP {
                picked.push(remaining[l]);
            }
        }
        remaining = remaining
            .iter()
            .enumerate()
            .filter(|&(pos, _)| !in_layer[pos])
            .map(|(_, &i)| i)
            .collect();
    }
    picked.sort_unstable();
    picked
}

/// Minimum wall time of `runs` executions of `f` (warm caches, stable
/// against scheduler noise).
fn best_of(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (_, ms) = time_ms(&mut f);
        best = best.min(ms);
    }
    best
}

/// Which benchmark skyline the fingerprint pass runs against.
enum SkyMode {
    /// The dataset's true skyline (IND: small enough at any scale).
    True,
    /// Layer-peeled cap (ANT: the true skyline is intractably large for
    /// the scalar reference).
    Capped,
}

/// The dominance kernel proper: the `n × m` scan that classifies every
/// dataset row against the skyline. Before: the scalar per-pair
/// `dom_cmp` loop (the pre-PR 2 inner loop). After:
/// [`SkylinePack::dominators_block`] — packed coordinates, tiled to L1,
/// monomorphized on `d`.
fn bench_dominance(name: &'static str, family: Family, n: usize, seed: u64, mode: SkyMode) -> Pair {
    let ds = family.generate(n, 3, seed);
    let sky = match mode {
        SkyMode::True => sfs(&ds, &MinDominance),
        SkyMode::Capped => capped_skyline(&ds),
    };
    let sky_pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
    let before_ms = best_of(2, || {
        let mut doms = Vec::new();
        let mut total = 0usize;
        for i in 0..ds.len() {
            let p = ds.point(i);
            doms.clear();
            for (j, s) in sky_pts.iter().enumerate() {
                if HiddenMin.dominates(s, p) {
                    doms.push(j);
                }
            }
            total = total.wrapping_add(doms.len());
        }
        black_box(total);
    });
    let after_ms = best_of(2, || {
        let pack = SkylinePack::pack(ds.dims(), sky_pts.iter().copied());
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); ROW_BLOCK];
        let mut total = 0usize;
        let mut lo = 0;
        while lo < ds.len() {
            let hi = (lo + ROW_BLOCK).min(ds.len());
            let rows: Vec<&[f64]> = (lo..hi).map(|i| ds.point(i)).collect();
            for v in &mut out[..rows.len()] {
                v.clear();
            }
            pack.dominators_block(&rows, &mut out[..rows.len()]);
            for v in &out[..rows.len()] {
                total = total.wrapping_add(v.len());
            }
            lo = hi;
        }
        black_box(total);
    });
    Pair { name, before_ms, after_ms }
}

fn bench_fingerprint(name: &'static str, family: Family, n: usize, seed: u64, mode: SkyMode) -> Pair {
    let ds = family.generate(n, 3, seed);
    let sky = match mode {
        SkyMode::True => sfs(&ds, &MinDominance),
        SkyMode::Capped => capped_skyline(&ds),
    };
    let fam = HashFamily::new(32, seed);
    let before_ms = best_of(2, || {
        black_box(sig_gen_if(&ds, &HiddenMin, &sky, &fam));
    });
    let after_ms = best_of(2, || {
        black_box(sig_gen_if(&ds, &MinDominance, &sky, &fam));
    });
    Pair { name, before_ms, after_ms }
}

fn bench_agreement() -> (Pair, Pair) {
    // A pool of pseudo-random signature columns with frequent ties.
    let t = 128;
    let cols = 64;
    let mut state = 0x5D33_A9F1_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let pool64: Vec<Vec<u64>> = (0..cols).map(|_| (0..t).map(|_| next() % 16).collect()).collect();
    let pool32: Vec<Vec<u32>> =
        (0..cols).map(|_| (0..t).map(|_| (next() % 16) as u32).collect()).collect();
    let iters = 40_000;

    let naive64 = |a: &[u64], b: &[u64]| a.iter().zip(b).filter(|(x, y)| x == y).count();
    let naive32 = |a: &[u32], b: &[u32]| a.iter().zip(b).filter(|(x, y)| x == y).count();

    let run = |f: &dyn Fn(usize, usize) -> usize| {
        let mut acc = 0usize;
        for it in 0..iters {
            let i = it % cols;
            let j = (it * 7 + 1) % cols;
            acc = acc.wrapping_add(f(i, j));
        }
        black_box(acc)
    };

    let naive64_ms = best_of(5, || {
        run(&|i, j| naive64(&pool64[i], &pool64[j]));
    });
    let kernel64_ms = best_of(5, || {
        run(&|i, j| agreement_count(&pool64[i], &pool64[j]));
    });
    let naive32_ms = best_of(5, || {
        run(&|i, j| naive32(&pool32[i], &pool32[j]));
    });
    let kernel32_ms = best_of(5, || {
        run(&|i, j| agreement_count_u32(&pool32[i], &pool32[j]));
    });
    (
        Pair { name: "minhash_agreement", before_ms: naive64_ms, after_ms: kernel64_ms },
        Pair { name: "lsh_hamming", before_ms: naive32_ms, after_ms: kernel32_ms },
    )
}

fn bench_selection(ds: &Dataset, seed: u64) -> Pair {
    let sky = capped_skyline(ds);
    let fam = HashFamily::new(128, seed);
    let out = sig_gen_if(ds, &MinDominance, &sky, &fam);
    let k = 64.min(sky.len());
    let iters = 10;
    let (_, before_ms) = time_ms(|| {
        for _ in 0..iters {
            let mut dist = SignatureDistance::new(&out.matrix);
            black_box(
                select_diverse(
                    &mut dist,
                    &out.scores,
                    k,
                    SeedRule::MaxDominance,
                    TieBreak::MaxDominance,
                )
                .expect("sequential selection"),
            );
        }
    });
    let (_, after_ms) = time_ms(|| {
        for _ in 0..iters {
            let dist = SignatureDistance::new(&out.matrix);
            black_box(
                select_diverse_parallel(
                    &dist,
                    &out.scores,
                    k,
                    SeedRule::MaxDominance,
                    TieBreak::MaxDominance,
                    PAR_THREADS,
                )
                .expect("parallel selection"),
            );
        }
    });
    Pair { name: "selection_seq_vs_par4", before_ms, after_ms }
}

fn bench_ib(ds: &Dataset, seed: u64) -> Pair {
    let sky = capped_skyline(ds);
    let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
    let fam = HashFamily::new(32, seed);
    let tree = RTree::bulk_load(ds, 4096);
    let (_, before_ms) = time_ms(|| {
        let mut pool = BufferPool::new(1 << 24);
        black_box(sig_gen_ib(&tree, &mut pool, &pts, &fam));
    });
    let (_, after_ms) = time_ms(|| {
        let mut pool = BufferPool::new(1 << 24);
        black_box(sig_gen_ib_parallel(&tree, &mut pool, &pts, &fam, PAR_THREADS));
    });
    Pair { name: "siggen_ib_seq_vs_par4", before_ms, after_ms }
}

fn bench_run_auto(ds: &Dataset, threads: usize) -> f64 {
    let prefs = Preference::all_min(ds.dims());
    let cfg = SkyDiver::new(10).signature_size(64).hash_seed(3).threads(threads);
    let (_, ms) = time_ms(|| black_box(cfg.run_auto(ds, &prefs).expect("run_auto")));
    ms
}

fn json_pair(p: &Pair) -> String {
    format!(
        "    \"{}\": {{\"before_ms\": {:.3}, \"after_ms\": {:.3}, \"speedup\": {:.3}}}",
        p.name,
        p.before_ms,
        p.after_ms,
        p.speedup()
    )
}

fn report(scale: f64, checked: &[Pair], info: &[Pair], auto1_ms: f64, auto4_ms: f64) -> String {
    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"pr2-kernels\",\n");
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"nproc\": {nproc},\n"));
    s.push_str("  \"checked\": {\n");
    let rows: Vec<String> = checked.iter().map(json_pair).collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  },\n  \"informational\": {\n");
    let mut rows: Vec<String> = info.iter().map(json_pair).collect();
    rows.push(format!("    \"run_auto_threads1\": {{\"ms\": {auto1_ms:.3}}}"));
    rows.push(format!(
        "    \"run_auto_threads{PAR_THREADS}\": {{\"ms\": {:.3}, \"speedup\": {:.3}}}",
        auto4_ms,
        auto1_ms / auto4_ms.max(1e-9)
    ));
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}

/// Extracts `"speedup": <f64>` of the named kernel from a report.
fn baseline_speedup(json: &str, name: &str) -> Option<f64> {
    let start = json.find(&format!("\"{name}\""))?;
    let rest = &json[start..];
    let sp = rest.find("\"speedup\":")?;
    let tail = &rest[sp + "\"speedup\":".len()..];
    let end = tail.find(['}', ','])?;
    tail[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let args = Args::parse();
    let n = ((5_000_000f64 * args.scale) as usize).max(2_000);

    eprintln!("# kernels: scale {} (n = {n}), threads {PAR_THREADS}", args.scale);
    let ind = Family::Ind.generate(n, 3, 71);
    let (agreement, hamming) = bench_agreement();
    let checked = vec![
        bench_dominance("dominance_kernel_ind_d3", Family::Ind, n, 71, SkyMode::True),
        bench_dominance("dominance_kernel_ant_d3", Family::Ant, n, 72, SkyMode::Capped),
        bench_fingerprint("fingerprint_ind_d3", Family::Ind, n, 71, SkyMode::True),
        bench_fingerprint("fingerprint_ant_d3", Family::Ant, n, 72, SkyMode::Capped),
        agreement,
        hamming,
        bench_selection(&ind, 73),
        bench_ib(&ind, 74),
    ];
    let info: Vec<Pair> = vec![];
    let auto_ds = Family::Ind.generate(n.min(100_000), 3, 75);
    let auto1 = bench_run_auto(&auto_ds, 1);
    let auto4 = bench_run_auto(&auto_ds, PAR_THREADS);

    for p in checked.iter().chain(&info) {
        eprintln!(
            "{:>24}: before {:>9.2}ms  after {:>9.2}ms  speedup {:.2}x",
            p.name,
            p.before_ms,
            p.after_ms,
            p.speedup()
        );
    }
    eprintln!("{:>24}: threads 1 {auto1:.2}ms, threads {PAR_THREADS} {auto4:.2}ms", "run_auto");

    let json = report(args.scale, &checked, &info, auto1, auto4);

    if let Some(baseline_path) = args.get("check") {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut failed = false;
        for p in &checked {
            let Some(base) = baseline_speedup(&baseline, p.name) else {
                eprintln!("CHECK {:>22}: missing from baseline — failing", p.name);
                failed = true;
                continue;
            };
            let floor = base / 2.0;
            let ok = p.speedup() >= floor;
            eprintln!(
                "CHECK {:>22}: {:.2}x vs baseline {:.2}x (floor {:.2}x) — {}",
                p.name,
                p.speedup(),
                base,
                floor,
                if ok { "ok" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        if failed {
            return ExitCode::FAILURE;
        }
    } else {
        let out = args.get("out").unwrap_or("BENCH_pr2.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}
