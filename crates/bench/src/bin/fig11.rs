//! **Figure 11** — runtime vs the number of requested diverse points
//! (k ∈ {2, 5, 10, 50}) for SG, MH100 and LSH100, on the four data-set
//! families at their default dimensionalities.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin fig11 [-- --scale 0.05]
//! ```
//!
//! Expected shape: MH and LSH nearly flat in k and orders of magnitude
//! below SG; SG rises noticeably at k = 50 (its pairwise Jaccard range
//! queries add up).

use skydiver_bench::runner::ExperimentContext;
use skydiver_bench::{fmt_ms, print_header, print_row, Args, Family};

fn main() {
    let args = Args::parse();
    let t = args.get_or("t", 100usize);
    let sg_max_m = args.get_or("sg-max-m", 30_000usize);
    let ks: Vec<usize> = vec![2, 5, 10, 50];

    println!(
        "Figure 11: runtime vs k (t={t}, scale {})",
        args.scale
    );
    print_header(&["data", "k", "m", "SG", &format!("MH{t}"), &format!("LSH{t}")]);

    for family in [Family::Ind, Family::Ant, Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        let d = family.default_dims();
        let mut ctx = ExperimentContext::new(family, n, d, 1);
        let m = ctx.m();
        for &k in &ks {
            if k > m {
                print_row(&[
                    family.name().into(),
                    k.to_string(),
                    m.to_string(),
                    "m<k".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let sg = if m <= sg_max_m {
                fmt_ms(ctx.run_sg(k).total_ms())
            } else {
                "DNF".into()
            };
            let mh = fmt_ms(ctx.run_mh(t, k).total_ms());
            let lsh = fmt_ms(ctx.run_lsh(t, 0.2, 20, k).total_ms());
            print_row(&[
                family.name().into(),
                k.to_string(),
                m.to_string(),
                sg,
                mh,
                lsh,
            ]);
        }
    }
    println!("\npaper reference (Fig 11): MH/LSH are consistently orders of");
    println!("magnitude faster than SG for all k; SG's runtime grows visibly");
    println!("at k=50 due to pairwise Jaccard range queries.");
}
