//! **Figure 8** — MinHash signature-generation time vs signature size
//! (50–400) on FC and REC at 4, 5 and 7 dimensions, index-based (IB) vs
//! index-free (IF).
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin fig8 [-- --scale 0.1]
//! ```
//!
//! Expected shape: time grows with signature size for both methods, and
//! whether IB or IF wins "seems to be unrelated to signature size".

use skydiver_bench::{fmt_ms, print_header, print_row, scan_pages, time_ms, total_ms, Args, Family};
use skydiver_core::minhash::{sig_gen_ib, sig_gen_if, HashFamily};
use skydiver_data::dominance::MinDominance;
use skydiver_rtree::{BufferPool, RTree, DEFAULT_CACHE_FRACTION, DEFAULT_PAGE_SIZE};
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    let sizes: Vec<usize> = vec![50, 100, 200, 400];

    println!(
        "Figure 8: signature generation time vs signature size (scale {})",
        args.scale
    );
    print_header(&["data", "t", "IF cpu", "IF total", "IB cpu", "IB total"]);

    for family in [Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        for &d in family.paper_dims() {
            let ds = family.generate(n, d, 1);
            let skyline = sfs(&ds, &MinDominance);
            let pts: Vec<&[f64]> = skyline.iter().map(|&s| ds.point(s)).collect();
            let tree = RTree::bulk_load(&ds, DEFAULT_PAGE_SIZE);
            let label = format!("{}{}D", family.name(), d);

            for &t in &sizes {
                let fam = HashFamily::new(t, 7);

                let (_, if_cpu) = time_ms(|| sig_gen_if(&ds, &MinDominance, &skyline, &fam));
                let if_total = if_cpu + scan_pages(ds.len(), d) as f64 * 8.0;

                let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
                let (_, ib_cpu) = time_ms(|| sig_gen_ib(&tree, &mut pool, &pts, &fam));
                let ib_total = total_ms(ib_cpu, pool.stats());

                print_row(&[
                    label.clone(),
                    t.to_string(),
                    fmt_ms(if_cpu),
                    fmt_ms(if_total),
                    fmt_ms(ib_cpu),
                    fmt_ms(ib_total),
                ]);
            }
        }
    }
    println!("\npaper reference (Fig 8): generation time increases with the");
    println!("signature size; the IB-vs-IF winner does not depend on it.");
}
