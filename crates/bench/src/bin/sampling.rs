//! **§3.2 / Lemma 2** — why sampling cannot replace MinHashing.
//!
//! Two demonstrations:
//!
//! 1. **Sampling S (Lemma 2)**: on the adversarial instances of the
//!    lemma's proof (m − 1 points in a tiny sphere, one outlier at
//!    distance 2δ + c), any one-pass algorithm keeping ≤ m/2 points
//!    fails with probability ≥ 1/2 to 2-approximate the diameter. We
//!    run the uniform sampler and report its measured failure rate.
//!
//! 2. **Sampling D − S**: estimating Jaccard distances from a uniform
//!    row sample of the domination matrix is wildly inaccurate at the
//!    sparsity levels of real dimensionalities, while MinHash signatures
//!    of the *same memory footprint* stay tight.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin sampling
//! ```

use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use skydiver_bench::{print_header, print_row, Args};
use skydiver_core::minhash::{sig_gen_if, HashFamily};
use skydiver_core::GammaSets;
use skydiver_data::dominance::MinDominance;
use skydiver_data::generators::independent;
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    lemma2(&args);
    row_sampling(&args);
}

/// Part 1: the diameter lower bound.
fn lemma2(args: &Args) {
    let m = args.get_or("m", 100usize);
    let trials = args.get_or("trials", 2000usize);
    let mut rng = StdRng::seed_from_u64(7);

    println!("[Lemma 2] one-pass uniform sampling of S, m={m}, s=m/2, {trials} trials");
    print_header(&["quantity", "exact", "2-approx"]);

    let delta = 1.0;
    let outlier_dist = 2.0 * delta + 0.1;
    let mut fail_exact = 0usize;
    let mut fail_approx = 0usize;
    for _ in 0..trials {
        // Build D_i: m−1 points in a sphere of diameter δ, one outlier.
        let outlier = rng.gen_range(0..m);
        // One-pass reservoir sample of s = m/2 item ids.
        let mut ids: Vec<usize> = (0..m).collect();
        ids.shuffle(&mut rng);
        let sample = &ids[..m / 2];
        // True diameter pair involves the outlier; the sampled diameter
        // is exact only if the outlier plus a sphere point are kept,
        // and a 2-approximation needs the outlier itself (every
        // sphere-only pair is ≤ δ < (2δ + c)/2).
        let has_outlier = sample.contains(&outlier);
        if !(has_outlier && sample.len() >= 2) {
            fail_exact += 1;
        }
        if !has_outlier {
            fail_approx += 1;
        }
        let _ = outlier_dist;
    }
    print_row(&[
        "failure rate".into(),
        format!("{:.2}", fail_exact as f64 / trials as f64),
        format!("{:.2}", fail_approx as f64 / trials as f64),
    ]);
    println!("(Lemma 2: any deterministic or randomized one-pass algorithm");
    println!(" storing <= m/2 items fails with probability >= 1/2)\n");
}

/// Part 2: row sampling vs MinHash at equal memory.
///
/// Both methods get the same budget per skyline point: `t` MinHash
/// slots of 64 bits vs a shared sample of `t · 64` domination-matrix
/// rows stored as one bit each. On sparse columns — the low-|Γ| skyline
/// points that decide diversity winners, like point `a` of Fig. 1 — the
/// fixed-size sample misses the few 1s and its estimates degrade, while
/// MinHash samples *within* each column's non-zeros and is unaffected
/// by sparsity or `n`.
fn row_sampling(args: &Args) {
    let d = args.get_or("d", 5usize);
    println!("[D-S sampling] uniform {d}D points: Jaccard estimation error,");
    println!("uniform row sample vs MinHash signatures of equal memory");
    print_header(&["n", "sparsity", "sample err", "minhash err"]);

    let mut rng = StdRng::seed_from_u64(11);
    for n in [20_000usize, 100_000, 500_000] {
        let ds = independent(n, d, 13 + d as u64);
        let skyline = sfs(&ds, &MinDominance);
        let gamma = GammaSets::build(&ds, &MinDominance, &skyline);
        let sparsity = ds.domination_matrix_sparsity(&skyline);

        // Memory budget: t = 100 slots of 8 bytes per skyline point.
        let t = 100usize;
        // The row sample must be shared across columns to allow
        // intersection estimates: sample R rows, store each column's
        // restriction — budget R bits ≈ t·64 bits per column.
        let r_rows = (t * 64).min(n);
        let mut rows: Vec<usize> = (0..n).collect();
        rows.shuffle(&mut rng);
        let sample_rows = &rows[..r_rows];

        let fam = HashFamily::new(t, 17);
        let out = sig_gen_if(&ds, &MinDominance, &skyline, &fam);

        // The failure mode the paper describes is *sparse columns*: a
        // fixed-size row sample misses their few 1s entirely. Measure
        // the error over pairs of the lowest-|Γ| (but non-empty)
        // skyline points — exactly the columns that matter when the
        // diversity winner is a niche point like `a` in Fig. 1.
        let mut by_score: Vec<usize> = (0..skyline.len())
            .filter(|&j| gamma.score(j) > 0)
            .collect();
        by_score.sort_by_key(|&j| gamma.score(j));
        let focus: Vec<usize> = by_score.into_iter().take(60).collect();

        let m = focus.len();
        let mut sample_err = 0.0f64;
        let mut mh_err = 0.0f64;
        let mut pairs = 0usize;
        'outer: for fi in 0..m {
            for fj in (fi + 1)..m {
                let (i, j) = (focus[fi], focus[fj]);
                let exact = gamma.jaccard_similarity(i, j);
                // Sampled estimate from the shared row subset.
                let mut inter = 0usize;
                let mut union = 0usize;
                for &row in sample_rows {
                    let a = gamma.set(i).get(row);
                    let b = gamma.set(j).get(row);
                    inter += usize::from(a && b);
                    union += usize::from(a || b);
                }
                let sampled = if union == 0 { 1.0 } else { inter as f64 / union as f64 };
                sample_err += (sampled - exact).abs();
                mh_err += (out.matrix.estimated_similarity(i, j) - exact).abs();
                pairs += 1;
                if pairs >= 500 {
                    break 'outer;
                }
            }
        }
        print_row(&[
            n.to_string(),
            format!("{:.0}%", 100.0 * sparsity),
            format!("{:.4}", sample_err / pairs as f64),
            format!("{:.4}", mh_err / pairs as f64),
        ]);
    }
    println!("(on the sparse columns that decide diversity winners, the row");
    println!(" sample is several times less accurate than MinHash at equal");
    println!(" memory -- it misses the few 1s; MinHash samples within them)");
}
