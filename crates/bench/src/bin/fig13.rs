//! **Figure 13** — MinHashing vs LSH: the memory/accuracy trade-off on
//! FC and REC for k = 10. LSH is swept over thresholds ξ ∈ {0.1 … 0.4}
//! and buckets-per-zone B ∈ {10, 20, 50} (signature size fixed at 100);
//! MinHash over signature sizes t ∈ {20, 50, 100}.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin fig13 [-- --scale 0.1]
//! ```
//!
//! Expected shape: LSH memory shrinks as ξ grows (fewer zones) and as B
//! shrinks, at a quality cost; LSH at ξ=0.2/B≥10 matches or beats MH50's
//! quality with less memory, while simply shrinking MH signatures
//! degrades accuracy rapidly.

use skydiver_bench::runner::ExperimentContext;
use skydiver_bench::{print_header, print_row, Args, Family};

fn main() {
    let args = Args::parse();
    let k = args.get_or("k", 10usize);
    let thresholds = [0.1, 0.2, 0.3, 0.4];
    let buckets = [10usize, 20, 50];
    let mh_sizes = [20usize, 50, 100];

    println!(
        "Figure 13: LSH vs MinHashing, k={k}, base signature size 100 (scale {})",
        args.scale
    );

    for family in [Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        let d = family.default_dims();
        let mut ctx = ExperimentContext::new(family, n, d, 1);
        let m = ctx.m();
        if m < k {
            println!("{}: skyline too small (m={m})", family.name());
            continue;
        }
        println!("\n[{} {}D, n={n}, m={m}] LSH sweep:", family.name(), d);
        print_header(&["xi", "B", "zones", "memory(B)", "diversity"]);
        for &xi in &thresholds {
            for &b in &buckets {
                let r = ctx.run_lsh(100, xi, b, k);
                let zones = skydiver_core::LshParams::from_threshold(100, xi)
                    .expect("banding")
                    .zones;
                print_row(&[
                    format!("{xi:.1}"),
                    b.to_string(),
                    zones.to_string(),
                    r.memory_bytes.to_string(),
                    format!("{:.3}", ctx.exact_diversity(&r.positions)),
                ]);
            }
        }
        println!("\n[{} {}D] MinHash baselines:", family.name(), d);
        print_header(&["t", "memory(B)", "diversity"]);
        for &t in &mh_sizes {
            let r = ctx.run_mh(t, k);
            print_row(&[
                t.to_string(),
                r.memory_bytes.to_string(),
                format!("{:.3}", ctx.exact_diversity(&r.positions)),
            ]);
        }
    }
    println!("\npaper reference (Fig 13): increasing xi cuts zones and memory;");
    println!("LSH (xi=0.2, B=20) needs ~half MH100's memory at slightly lower");
    println!("quality (0.88 vs 0.93 on FC); shrinking MH signatures instead");
    println!("drops accuracy rapidly.");
}
