//! **Figure 12** — quality of results: the minimum pairwise Jaccard
//! distance **in the original space** of the k selected points, for
//! SG, MH100 and LSH100, k ∈ {2, 5, 10, 50}.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin fig12 [-- --scale 0.05]
//! ```
//!
//! Expected shape: diversity decreases with k; SG (exact distances) is
//! best, MH close behind (within a few percent up to k = 10), LSH
//! declines more steeply — its memory savings cost accuracy.

use skydiver_bench::runner::ExperimentContext;
use skydiver_bench::{print_header, print_row, Args, Family};

fn main() {
    let args = Args::parse();
    let t = args.get_or("t", 100usize);
    let sg_max_m = args.get_or("sg-max-m", 30_000usize);
    let ks: Vec<usize> = vec![2, 5, 10, 50];

    println!("Figure 12: diversity (min exact Jd) vs k (t={t}, scale {})", args.scale);
    print_header(&["data", "k", "m", "SG", &format!("MH{t}"), &format!("LSH{t}")]);

    for family in [Family::Ind, Family::Ant, Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        let d = family.default_dims();
        let mut ctx = ExperimentContext::new(family, n, d, 1);
        let m = ctx.m();
        for &k in &ks {
            if k > m {
                print_row(&[
                    family.name().into(),
                    k.to_string(),
                    m.to_string(),
                    "m<k".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let sg = if m <= sg_max_m {
                let r = ctx.run_sg(k);
                format!("{:.3}", ctx.exact_diversity(&r.positions))
            } else {
                "DNF".into()
            };
            let mh = {
                let r = ctx.run_mh(t, k);
                format!("{:.3}", ctx.exact_diversity(&r.positions))
            };
            let lsh = {
                let r = ctx.run_lsh(t, 0.2, 20, k);
                format!("{:.3}", ctx.exact_diversity(&r.positions))
            };
            print_row(&[
                family.name().into(),
                k.to_string(),
                m.to_string(),
                sg,
                mh,
                lsh,
            ]);
        }
    }
    println!("\npaper reference (Fig 12): diversity falls as k grows; SG > MH");
    println!(">= LSH, with MH within a few percent of SG for k <= 10 and LSH");
    println!("declining more steeply.");
}
