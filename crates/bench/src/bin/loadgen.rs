//! `loadgen` — serving-path benchmark: cold-vs-warm query latency and
//! concurrent throughput against an in-process `skydiver-serve`.
//!
//! ```text
//! loadgen [--scale 0.1] [--conns 4] [--queries 25] [--k 10] [--t 64]
//!         [--threads N] [--out BENCH_pr3.json] [--check BENCH_pr3.json]
//! ```
//!
//! Starts a real TCP server (ephemeral port, `--threads` workers,
//! default = `--conns`), installs an anticorrelated dataset, then
//! measures:
//!
//! 1. **cold_ms** — the first `QUERY`, which fingerprints the dataset;
//! 2. **warm_ms** — the best of a few repeat queries served from the
//!    fingerprint cache;
//! 3. **throughput** — `--conns` client threads each firing `--queries`
//!    warm queries; per-query latency is measured client-side.
//!
//! Every response's selected set is checked against the first one —
//! concurrency must not change answers.
//!
//! `--out` writes the JSON report; `--check BASELINE` instead gates on
//! the committed report: the measured cold/warm ratio must stay above a
//! quarter of the baseline's, pro-rated by cardinality (cold cost grows
//! at least linearly in `n` while a cache hit is O(1), so the linear
//! pro-rate keeps the floor conservative when CI checks at a smaller
//! scale than the committed baseline). The ratio is within-run, so the
//! gate is machine-independent (absolute times are informational).

use std::process::ExitCode;
use std::time::Instant;

use skydiver_bench::{Args, Family};
use skydiver_serve::protocol::{json_u64, json_u64_array, QuerySpec};
use skydiver_serve::{Client, Server, ServerConfig};

fn query_once(client: &mut Client, spec: &QuerySpec) -> (Vec<u64>, f64) {
    let t0 = Instant::now();
    let payload = client.query(spec).expect("query");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let selected = json_u64_array(&payload, "selected").expect("selected array");
    (selected, ms)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

/// Extracts `"key": <f64>` from a flat baseline report.
fn baseline_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    let tail = &json[at + needle.len()..];
    let end = tail.find([',', '}', '\n'])?;
    tail[..end].trim().parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn report(
    scale: f64,
    n: usize,
    conns: usize,
    queries: usize,
    threads: usize,
    cold_ms: f64,
    warm_ms: f64,
    qps: f64,
    p50: f64,
    p99: f64,
    hits: u64,
    misses: u64,
) -> String {
    format!(
        "{{\n  \"bench\": \"pr3-loadgen\",\n  \"scale\": {scale},\n  \"n\": {n},\n  \
         \"conns\": {conns},\n  \"queries_per_conn\": {queries},\n  \
         \"server_threads\": {threads},\n  \"cold_ms\": {cold_ms:.3},\n  \
         \"warm_ms\": {warm_ms:.3},\n  \"cold_over_warm\": {:.3},\n  \
         \"throughput_qps\": {qps:.1},\n  \"p50_ms\": {p50:.3},\n  \"p99_ms\": {p99:.3},\n  \
         \"cache_hits\": {hits},\n  \"cache_misses\": {misses}\n}}\n",
        cold_ms / warm_ms.max(1e-9),
    )
}

fn main() -> ExitCode {
    let args = Args::parse();
    let n = ((1_000_000f64 * args.scale) as usize).max(2_000);
    let conns: usize = args.get_or("conns", 4);
    let queries: usize = args.get_or("queries", 25);
    let k: usize = args.get_or("k", 10);
    let t: usize = args.get_or("t", 64);
    let threads: usize = args.get_or("threads", conns);

    eprintln!("# loadgen: scale {} (n = {n}), {conns} conns x {queries} queries, {threads} server threads", args.scale);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        cache_bytes: 64 << 20,
    })
    .expect("bind");
    server.registry().insert_dataset("bench", Family::Ant.generate(n, 3, 91));
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let mut spec = QuerySpec::new("bench", k);
    spec.t = t;
    spec.seed = 7;

    // Cold: the first query fingerprints; warm: best of 5 cache hits.
    let mut probe = Client::connect(addr).expect("connect");
    let (expected, cold_ms) = query_once(&mut probe, &spec);
    assert_eq!(expected.len(), k.min(expected.len()), "query returned a selection");
    let mut warm_ms = f64::INFINITY;
    for _ in 0..5 {
        let (sel, ms) = query_once(&mut probe, &spec);
        assert_eq!(sel, expected, "warm query changed the answer");
        warm_ms = warm_ms.min(ms);
    }

    // Concurrent load: conns clients x queries warm queries each.
    let t0 = Instant::now();
    let mut all_ms: Vec<f64> = Vec::with_capacity(conns * queries);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..conns {
            let spec = spec.clone();
            let expected = &expected;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(queries);
                for _ in 0..queries {
                    let (sel, ms) = query_once(&mut client, &spec);
                    assert_eq!(&sel, expected, "concurrent query changed the answer");
                    lat.push(ms);
                }
                lat
            }));
        }
        for h in handles {
            all_ms.extend(h.join().expect("client thread"));
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let qps = (conns * queries) as f64 / wall_s.max(1e-9);
    all_ms.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&all_ms, 0.50), percentile(&all_ms, 0.99));

    let stats = probe.stats().expect("stats");
    let hits = json_u64(&stats, "cache_hits").unwrap_or(0);
    let misses = json_u64(&stats, "cache_misses").unwrap_or(0);
    probe.shutdown().expect("shutdown");
    handle.join().expect("server exit");

    eprintln!(
        "cold {cold_ms:.2}ms  warm {warm_ms:.2}ms  (ratio {:.1}x)  throughput {qps:.0} q/s  p50 {p50:.2}ms  p99 {p99:.2}ms  cache {hits}h/{misses}m",
        cold_ms / warm_ms.max(1e-9)
    );
    assert!(hits > 0, "warm queries must hit the fingerprint cache");

    let json = report(
        args.scale, n, conns, queries, threads, cold_ms, warm_ms, qps, p50, p99, hits, misses,
    );

    if let Some(baseline_path) = args.get("check") {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (Some(base_ratio), Some(base_n)) = (
            baseline_f64(&baseline, "cold_over_warm"),
            baseline_f64(&baseline, "n"),
        ) else {
            eprintln!("baseline {baseline_path} lacks cold_over_warm / n");
            return ExitCode::FAILURE;
        };
        let ratio = cold_ms / warm_ms.max(1e-9);
        // Pro-rate by cardinality, never below 4x: even the tiniest run
        // must show the cache clearly beating re-fingerprinting.
        let floor = (base_ratio / 4.0 * (n as f64 / base_n.max(1.0))).max(4.0);
        let ok = ratio >= floor;
        eprintln!(
            "CHECK cold_over_warm: {ratio:.2}x at n={n} vs baseline {base_ratio:.2}x at n={base_n} (floor {floor:.2}x) — {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            return ExitCode::FAILURE;
        }
    } else {
        let out = args.get("out").unwrap_or("BENCH_pr3.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}
