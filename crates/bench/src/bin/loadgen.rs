//! `loadgen` — serving-path benchmark: cold-vs-warm query latency and
//! concurrent throughput against an in-process `skydiver-serve`.
//!
//! ```text
//! loadgen [--scale 0.1] [--conns 4] [--queries 25] [--k 10] [--t 64]
//!         [--threads N] [--out BENCH_pr3.json] [--check BENCH_pr3.json]
//! loadgen --mode append [--scale 0.1] [--k 10] [--t 64]
//!         [--out BENCH_pr4.json | --check BENCH_pr4.json]
//! loadgen --mode restart [--scale 0.1] [--k 10] [--t 64]
//!         [--out BENCH_pr6.json | --check BENCH_pr6.json]
//! loadgen --mode kernels [--scale 0.1] [--k 64] [--t 128] [--buckets 8]
//!         [--out BENCH_pr7.json | --check BENCH_pr7.json]
//! loadgen --mode cluster [--scale 0.1] [--conns 4] [--queries 16] [--k 10] [--t 64]
//!         [--out BENCH_pr8.json | --check BENCH_pr8.json]
//! loadgen --mode pipeline [--scale 0.1] [--conns 4] [--depth 32] [--bursts 16]
//!         [--k 10] [--t 64] [--out BENCH_pr9.json | --check BENCH_pr9.json]
//! ```
//!
//! `--mode pipeline` measures the PR 9 readiness-driven server core:
//! the same warm-query stream issued four ways over the same
//! connections — depth-1 text (one round trip per query, the
//! BENCH_pr3 serving shape), depth-`N` text pipelining (one round trip
//! per burst), depth-`N` `SKYWIRE01` binary framing, and `BATCH` (one
//! request, `N` selections). Every reply's selected set is asserted
//! against the sequential answer before timing counts, so the speedup
//! can never come from dropping work. `--check` gates the within-run
//! pipelined/single throughput ratio (machine-independent — both sides
//! share one server, one binary, one box) against the committed
//! baseline's, floored at a quarter (never below 2x), and requires the
//! pipelined warm p99 to stay under 5 ms.
//!
//! `--mode cluster` measures the PR 8 coordinator/worker fan-out: the
//! same dataset served single-process, then by a coordinator over 2 and
//! 4 worker servers (real TCP, one machine). Three numbers per
//! topology: warm throughput (coordinator-memoised, the steady state),
//! cold fan-out latency over distinct seeds (every query re-folds on
//! the workers), and the first-query cold cost. Every topology must
//! return the bit-identical selected set; the timings are
//! **informational** — on one box the fan-out only adds hops, the
//! cluster buys capacity, not single-box speed — so `--check` verifies
//! the committed report exists and describes this contract rather than
//! gating on a ratio.
//!
//! `--mode kernels` measures the PR 7 selection-phase kernels against
//! the engines they replaced, frozen inline in this binary: the
//! spawn-per-round chunked parallel greedy (the 0.29× regression of
//! BENCH_pr2) vs the persistent-pool slot-major engine, sequential
//! `SigGen-IB` vs the active-classification parallel pass, and the
//! per-pair agreement/Hamming loops vs the batched one-vs-all kernels.
//! Every before/after pair asserts bit-identical results before timing
//! counts; `--check` gates the two parallel ratios on
//! `max(baseline/2, 1.0)` — the committed speedup may degrade by at
//! most half, and parallel must never again lose to its own baseline.
//!
//! `--mode restart` measures the durable signature store: server A
//! computes a cold fingerprint with `--store-dir` set, `SNAPSHOT`s and
//! shuts down; server B on the same store directory must answer its
//! first query bit-identically while charging **zero** dominance tests
//! (every shard fold is loaded from disk). The gate is exact, not a
//! ratio — warm restarts are free by contract.
//!
//! `--mode append` measures the shard-native serving path instead: a
//! cold fingerprint of `n` points, a wire `APPEND` of ~5% more points,
//! then the incremental re-fingerprint (which reuses the old shard's
//! cached fold) versus a full cold recompute of the grown dataset (a
//! fresh seed, so nothing is reusable). The per-query `dominance_tests`
//! counter from the response is the machine-independent cost measure;
//! `--check` gates on the cold/append dominance-test ratio. A shard-count
//! sweep (1..8 shards, same data) confirms partitioning itself is free.
//!
//! Starts a real TCP server (ephemeral port, `--threads` workers,
//! default = `--conns`), installs an anticorrelated dataset, then
//! measures:
//!
//! 1. **cold_ms** — the first `QUERY`, which fingerprints the dataset;
//! 2. **warm_ms** — the best of a few repeat queries served from the
//!    fingerprint cache;
//! 3. **throughput** — `--conns` client threads each firing `--queries`
//!    warm queries; per-query latency is measured client-side.
//!
//! Every response's selected set is checked against the first one —
//! concurrency must not change answers.
//!
//! `--out` writes the JSON report; `--check BASELINE` instead gates on
//! the committed report: the measured cold/warm ratio must stay above a
//! quarter of the baseline's, pro-rated by cardinality (cold cost grows
//! at least linearly in `n` while a cache hit is O(1), so the linear
//! pro-rate keeps the floor conservative when CI checks at a smaller
//! scale than the committed baseline). The ratio is within-run, so the
//! gate is machine-independent (absolute times are informational).

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use skydiver_bench::{time_ms, Args, Family};
use skydiver_core::dispersion::{select_diverse_parallel, SeedRule, TieBreak};
use skydiver_core::diversity::SignatureDistance;
use skydiver_core::lsh::{LshIndex, LshParams};
use skydiver_core::minhash::{
    sig_gen_ib, sig_gen_ib_parallel, sig_gen_if, HashFamily, SignatureMatrix, SlotMajorSignatures,
};
use skydiver_data::dominance::MinDominance;
use skydiver_data::{io, Dataset, ShardedDataset};
use skydiver_rtree::{BufferPool, RTree};
use skydiver_serve::protocol::{
    json_u64, json_u64_array, parse_response, BatchSpec, Method, QuerySpec,
};
use skydiver_serve::{Client, ClusterConfig, Server, ServerConfig};
use skydiver_skyline::sfs;

fn query_once(client: &mut Client, spec: &QuerySpec) -> (Vec<u64>, f64) {
    let t0 = Instant::now();
    let payload = client.query(spec).expect("query");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let selected = json_u64_array(&payload, "selected").expect("selected array");
    (selected, ms)
}

/// Like [`query_once`] but also returns the query's `dominance_tests`
/// charge — the machine-independent cost of the fingerprint work it
/// triggered (0 for a memoised artefact).
fn query_counted(client: &mut Client, spec: &QuerySpec) -> (Vec<u64>, f64, u64) {
    let t0 = Instant::now();
    let payload = client.query(spec).expect("query");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let selected = json_u64_array(&payload, "selected").expect("selected array");
    let tests = json_u64(&payload, "dominance_tests").expect("dominance_tests field");
    (selected, ms, tests)
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

/// Extracts `"key": <f64>` from a flat baseline report.
fn baseline_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    let tail = &json[at + needle.len()..];
    let end = tail.find([',', '}', '\n'])?;
    tail[..end].trim().parse().ok()
}

#[allow(clippy::too_many_arguments)]
fn report(
    scale: f64,
    n: usize,
    conns: usize,
    queries: usize,
    threads: usize,
    cold_ms: f64,
    warm_ms: f64,
    qps: f64,
    p50: f64,
    p99: f64,
    hits: u64,
    misses: u64,
) -> String {
    format!(
        "{{\n  \"bench\": \"pr3-loadgen\",\n  \"scale\": {scale},\n  \"n\": {n},\n  \
         \"conns\": {conns},\n  \"queries_per_conn\": {queries},\n  \
         \"server_threads\": {threads},\n  \"cold_ms\": {cold_ms:.3},\n  \
         \"warm_ms\": {warm_ms:.3},\n  \"cold_over_warm\": {:.3},\n  \
         \"throughput_qps\": {qps:.1},\n  \"p50_ms\": {p50:.3},\n  \"p99_ms\": {p99:.3},\n  \
         \"cache_hits\": {hits},\n  \"cache_misses\": {misses}\n}}\n",
        cold_ms / warm_ms.max(1e-9),
    )
}

/// `--mode append`: cold fingerprint, wire `APPEND`, incremental warm
/// re-fingerprint vs full cold recompute, plus a shard-count sweep.
fn run_append_mode(args: &Args) -> ExitCode {
    let n = ((1_000_000f64 * args.scale) as usize).max(2_000);
    let a = (n / 20).max(200);
    let k: usize = args.get_or("k", 10);
    let t: usize = args.get_or("t", 64);
    eprintln!("# loadgen append mode: n = {n}, append = {a}");

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_bytes: 64 << 20,
        ..ServerConfig::default()
    })
    .expect("bind");
    let base = Family::Ant.generate(n, 3, 91);
    server.registry().insert_dataset("bench", base.clone());
    // Shard-count sweep datasets: identical points, 1..8 shards.
    for s in [1usize, 2, 4, 8] {
        server
            .registry()
            .insert_sharded(format!("sweep{s}"), ShardedDataset::partition(&base, s));
    }
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let mut spec = QuerySpec::new("bench", k);
    spec.t = t;
    spec.seed = 7;
    // A never-tripping dominance budget switches the counter on
    // (unlimited budgets skip it entirely).
    spec.max_dominance_tests = Some(u64::MAX / 2);

    let mut probe = Client::connect(addr).expect("connect");
    let (_, cold_ms, cold_tests) = query_counted(&mut probe, &spec);
    assert!(cold_tests > 0, "cold query must charge dominance tests");

    // Grow the dataset by ~5% over the wire. The appended block is
    // anticorrelated data shifted up by 0.25 — plausible "mostly worse"
    // new points, so only a few new skyline columns appear.
    let block = shifted_block(a, 92, 0.25);
    let tmp = format!("target/loadgen_append_{}.csv", std::process::id());
    io::write_csv(&block, &tmp).expect("write append block");
    let reply = probe.append("bench", &tmp).expect("append");
    let _ = std::fs::remove_file(&tmp);
    assert!(reply.contains("shards=2"), "append reply: {reply}");

    let (_, append_ms, append_tests) = query_counted(&mut probe, &spec);
    assert!(append_tests > 0, "the append query re-folds the new shard");

    // Full cold recompute of the grown dataset: a fresh seed shares no
    // cached folds, so every row of every shard is re-scanned.
    let mut grown_spec = spec.clone();
    grown_spec.seed = 8;
    let (_, grown_ms, grown_tests) = query_counted(&mut probe, &grown_spec);
    assert!(
        append_tests < grown_tests,
        "incremental append ({append_tests}) must undercut a cold recompute ({grown_tests})"
    );

    // Shard sweep: cold fingerprint cost must not depend on shard count.
    let mut sweep = Vec::new();
    for s in [1usize, 2, 4, 8] {
        let mut sspec = spec.clone();
        sspec.dataset = format!("sweep{s}");
        let (_, ms, tests) = query_counted(&mut probe, &sspec);
        sweep.push((s, ms, tests));
    }
    let sweep_tests: Vec<u64> = sweep.iter().map(|&(_, _, tests)| tests).collect();
    assert!(
        sweep_tests.iter().all(|&tests| tests == sweep_tests[0]),
        "sharding must not change the dominance-test count: {sweep_tests:?}"
    );

    probe.shutdown().expect("shutdown");
    handle.join().expect("server exit");

    let tests_ratio = grown_tests as f64 / append_tests.max(1) as f64;
    let ms_ratio = grown_ms / append_ms.max(1e-9);
    eprintln!(
        "cold {cold_ms:.2}ms/{cold_tests}t  append-warm {append_ms:.2}ms/{append_tests}t  \
         grown-cold {grown_ms:.2}ms/{grown_tests}t  (saves {tests_ratio:.1}x tests, {ms_ratio:.1}x time)"
    );

    let sweep_json = sweep
        .iter()
        .map(|(s, ms, tests)| {
            format!("{{\"shards\": {s}, \"cold_ms\": {ms:.3}, \"tests\": {tests}}}")
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"pr4-loadgen-append\",\n  \"scale\": {},\n  \"n\": {n},\n  \
         \"append_points\": {a},\n  \"k\": {k},\n  \"t\": {t},\n  \
         \"cold_ms\": {cold_ms:.3},\n  \"cold_tests\": {cold_tests},\n  \
         \"append_ms\": {append_ms:.3},\n  \"append_tests\": {append_tests},\n  \
         \"grown_cold_ms\": {grown_ms:.3},\n  \"grown_cold_tests\": {grown_tests},\n  \
         \"tests_ratio\": {tests_ratio:.3},\n  \"ms_ratio\": {ms_ratio:.3},\n  \
         \"shard_sweep\": [{sweep_json}]\n}}\n",
        args.scale,
    );

    if let Some(baseline_path) = args.get("check") {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(base_ratio) = baseline_f64(&baseline, "tests_ratio") else {
            eprintln!("baseline {baseline_path} lacks tests_ratio");
            return ExitCode::FAILURE;
        };
        // The ratio (n+a)·m / (a·m + n·|new skyline|) is roughly
        // scale-invariant; a quarter of the baseline (never below 2x)
        // still proves the append path skips most of the cold work.
        let floor = (base_ratio / 4.0).max(2.0);
        let ok = tests_ratio >= floor;
        eprintln!(
            "CHECK tests_ratio: {tests_ratio:.2}x vs baseline {base_ratio:.2}x (floor {floor:.2}x) — {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            return ExitCode::FAILURE;
        }
    } else {
        let out = args.get("out").unwrap_or("BENCH_pr4.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}

/// `--mode restart`: cold compute + `SNAPSHOT` in one server process,
/// then a fresh server on the same store directory — its first query
/// must be bit-identical and dominance-test-free.
fn run_restart_mode(args: &Args) -> ExitCode {
    let n = ((1_000_000f64 * args.scale) as usize).max(2_000);
    let k: usize = args.get_or("k", 10);
    let t: usize = args.get_or("t", 64);
    eprintln!("# loadgen restart mode: n = {n}");
    let store_dir = format!("target/loadgen_store_{}", std::process::id());
    let _ = std::fs::remove_dir_all(&store_dir);
    let data = Family::Ant.generate(n, 3, 91);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        store_dir: Some(store_dir.clone()),
        ..ServerConfig::default()
    };

    let mut spec = QuerySpec::new("bench", k);
    spec.t = t;
    spec.seed = 7;
    // A never-tripping budget keeps the dominance-test counter on.
    spec.max_dominance_tests = Some(u64::MAX / 2);

    // Epoch A: restart-to-first-query with a cold (empty) store.
    let t0 = Instant::now();
    let server = Server::bind(&cfg).expect("bind A");
    server.registry().insert_dataset("bench", data.clone());
    let handle = server.spawn().expect("spawn A");
    let mut probe = Client::connect(handle.addr()).expect("connect A");
    let (cold_selected, _, cold_tests) = query_counted(&mut probe, &spec);
    let cold_restart_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(cold_tests > 0, "the cold epoch must compute");
    let reply = probe.snapshot().expect("snapshot");
    let persisted: u64 = reply
        .strip_prefix("persisted=")
        .and_then(|v| v.parse().ok())
        .expect("snapshot reply");
    assert!(
        persisted >= 1,
        "snapshot must make the fold durable: {reply}"
    );
    probe.shutdown().expect("shutdown A");
    handle.join().expect("A exits");

    // Epoch B: same store directory — restart-to-first-undegraded-query.
    let t0 = Instant::now();
    let server = Server::bind(&cfg).expect("bind B");
    server.registry().insert_dataset("bench", data);
    let handle = server.spawn().expect("spawn B");
    let mut probe = Client::connect(handle.addr()).expect("connect B");
    let (warm_selected, _, warm_tests) = query_counted(&mut probe, &spec);
    let warm_restart_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = probe.stats().expect("stats");
    let hits = json_u64(&stats, "store_hits").unwrap_or(0);
    probe.shutdown().expect("shutdown B");
    handle.join().expect("B exits");
    let _ = std::fs::remove_dir_all(&store_dir);

    // The gates are exact contracts, not noisy time ratios.
    let mut failed = false;
    if warm_selected != cold_selected {
        eprintln!("CHECK identical answer: FAILED — restart changed the selection");
        failed = true;
    }
    if warm_tests != 0 {
        eprintln!("CHECK warm restart is free: FAILED — charged {warm_tests} dominance tests");
        failed = true;
    }
    if hits < 1 {
        eprintln!("CHECK store served the restart: FAILED — store_hits = {hits}: {stats}");
        failed = true;
    }
    let speedup = cold_restart_ms / warm_restart_ms.max(1e-9);
    eprintln!(
        "cold restart-to-first-query {cold_restart_ms:.2}ms ({cold_tests} tests)  \
         warm {warm_restart_ms:.2}ms (0 tests, {hits} store hits)  speedup {speedup:.1}x"
    );
    if failed {
        return ExitCode::FAILURE;
    }

    let json = format!(
        "{{\n  \"bench\": \"pr6-loadgen-restart\",\n  \"scale\": {},\n  \"n\": {n},\n  \
         \"k\": {k},\n  \"t\": {t},\n  \"cold_restart_ms\": {cold_restart_ms:.3},\n  \
         \"cold_tests\": {cold_tests},\n  \"warm_restart_ms\": {warm_restart_ms:.3},\n  \
         \"warm_tests\": {warm_tests},\n  \"store_hits\": {hits},\n  \
         \"persisted\": {persisted},\n  \"restart_speedup\": {speedup:.3}\n}}\n",
        args.scale,
    );

    if let Some(baseline_path) = args.get("check") {
        // The exact gates above already ran; the baseline check only
        // confirms the committed report describes the same contract.
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ok = baseline.contains("pr6-loadgen-restart")
            && baseline_f64(&baseline, "warm_tests") == Some(0.0);
        eprintln!(
            "CHECK baseline contract (warm_tests = 0 in {baseline_path}) — {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            return ExitCode::FAILURE;
        }
    } else {
        let out = args.get("out").unwrap_or("BENCH_pr6.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}

/// A before/after timing pair of `--mode kernels`.
struct KernelPair {
    name: &'static str,
    before_ms: f64,
    after_ms: f64,
}

impl KernelPair {
    fn speedup(&self) -> f64 {
        self.before_ms / self.after_ms.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "    \"{}\": {{\"before_ms\": {:.3}, \"after_ms\": {:.3}, \"speedup\": {:.3}}}",
            self.name,
            self.before_ms,
            self.after_ms,
            self.speedup()
        )
    }
}

/// Extracts `"speedup": <f64>` of the named kernel from a nested
/// baseline report (the flat [`baseline_f64`] cannot scope by name).
fn baseline_speedup(json: &str, name: &str) -> Option<f64> {
    let start = json.find(&format!("\"{name}\""))?;
    let rest = &json[start..];
    let sp = rest.find("\"speedup\":")?;
    let tail = &rest[sp + "\"speedup\":".len()..];
    let end = tail.find(['}', ','])?;
    tail[..end].trim().parse().ok()
}

/// The pre-PR 7 parallel greedy selection, frozen verbatim: per round,
/// spawn one scoped thread per chunk of `min_dist`, evaluate the
/// estimated distance per pair, join, fold the chunk argmaxes. The
/// spawn/join cost per round and the per-pair column fetches are
/// exactly what the persistent-pool slot-major engine removed.
fn frozen_parallel_selection(
    sig: &SignatureMatrix,
    scores: &[u64],
    k: usize,
    threads: usize,
) -> Vec<usize> {
    let m = sig.m();
    let seed = (0..m)
        .max_by_key(|&i| (scores[i], std::cmp::Reverse(i)))
        .expect("non-empty skyline");
    let mut selected = vec![seed];
    let mut in_set = vec![false; m];
    in_set[seed] = true;
    let mut min_dist = vec![f64::INFINITY; m];
    while selected.len() < k {
        let last = *selected.last().expect("seeded");
        let chunk = m.div_ceil(threads);
        let mut chunk_bests: Vec<Option<(f64, u64, usize)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (ci, md) in min_dist.chunks_mut(chunk).enumerate() {
                let lo = ci * chunk;
                let in_set = &in_set;
                handles.push(scope.spawn(move || {
                    let mut best: Option<(f64, u64, usize)> = None;
                    for (off, slot) in md.iter_mut().enumerate() {
                        let i = lo + off;
                        if in_set[i] {
                            continue;
                        }
                        let d = sig.estimated_distance(i, last);
                        if d < *slot {
                            *slot = d;
                        }
                        let better = match best {
                            None => true,
                            Some((bd, bs, _)) => *slot > bd || (*slot == bd && scores[i] > bs),
                        };
                        if better {
                            best = Some((*slot, scores[i], i));
                        }
                    }
                    best
                }));
            }
            for h in handles {
                chunk_bests.push(h.join().expect("frozen selection chunk"));
            }
        });
        let mut best: Option<(f64, u64, usize)> = None;
        for cb in chunk_bests.into_iter().flatten() {
            let better = match best {
                None => true,
                Some((bd, bs, _)) => cb.0 > bd || (cb.0 == bd && cb.1 > bs),
            };
            if better {
                best = Some(cb);
            }
        }
        let pick = best.expect("k <= m").2;
        selected.push(pick);
        in_set[pick] = true;
    }
    selected
}

/// `--mode kernels`: before/after pairs for the PR 7 kernel round —
/// parallel selection (frozen spawn-per-round engine vs persistent
/// pool), SigGen-IB (sequential full reclassification vs the
/// active-classification parallel pass), and the batched agreement /
/// Hamming kernels vs their per-pair predecessors.
fn run_kernels_mode(args: &Args) -> ExitCode {
    let n = ((1_000_000f64 * args.scale) as usize).max(2_000);
    let t: usize = args.get_or("t", 128);
    let k_arg: usize = args.get_or("k", 64);
    eprintln!("# loadgen kernels mode: n = {n}, t = {t}");

    let ds = Family::Ant.generate(n, 3, 1901);
    let sky_full = sfs(&ds, &MinDominance);
    // Cap the column count so the frozen per-pair engines stay tractable
    // at every scale; the passes only need the points as columns.
    let sky: Vec<usize> = sky_full.into_iter().take(1024).collect();
    let m = sky.len();
    let k = k_arg.min(m);
    let fam = HashFamily::new(t, 19);
    let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
    eprintln!("# skyline columns m = {m}, k = {k}");

    // Parallel greedy selection: frozen spawn-per-round chunked engine
    // vs the persistent-pool slot-major engine, both at 4 threads.
    let sel_iters = 10;
    let frozen = frozen_parallel_selection(&out.matrix, &out.scores, k, 4);
    let dist = SignatureDistance::new(&out.matrix);
    let current = select_diverse_parallel(
        &dist,
        &out.scores,
        k,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
        4,
    )
    .expect("parallel selection");
    assert_eq!(frozen, current, "engines must pick identical points");
    let (_, sel_before) = time_ms(|| {
        for _ in 0..sel_iters {
            black_box(frozen_parallel_selection(&out.matrix, &out.scores, k, 4));
        }
    });
    let (_, sel_after) = time_ms(|| {
        for _ in 0..sel_iters {
            let dist = SignatureDistance::new(&out.matrix);
            black_box(
                select_diverse_parallel(
                    &dist,
                    &out.scores,
                    k,
                    SeedRule::MaxDominance,
                    TieBreak::MaxDominance,
                    4,
                )
                .expect("parallel selection"),
            );
        }
    });
    let selection = KernelPair {
        name: "selection_par4_old_vs_new",
        before_ms: sel_before,
        after_ms: sel_after,
    };

    // SigGen-IB: the sequential full-reclassification pass (still the
    // threads <= 1 production path) vs the active-classification
    // 4-thread partitioned pass.
    let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
    let tree = RTree::bulk_load(&ds, 4096);
    let mut pool = BufferPool::new(1 << 24);
    let (ib_seq, _) = sig_gen_ib(&tree, &mut pool, &pts, &fam);
    let mut pool = BufferPool::new(1 << 24);
    let (ib_par, _) = sig_gen_ib_parallel(&tree, &mut pool, &pts, &fam, 4);
    assert_eq!(ib_seq.matrix, ib_par.matrix, "IB passes must agree");
    assert_eq!(ib_seq.scores, ib_par.scores, "IB scores must agree");
    let (_, ib_before) = time_ms(|| {
        let mut pool = BufferPool::new(1 << 24);
        black_box(sig_gen_ib(&tree, &mut pool, &pts, &fam));
    });
    let (_, ib_after) = time_ms(|| {
        let mut pool = BufferPool::new(1 << 24);
        black_box(sig_gen_ib_parallel(&tree, &mut pool, &pts, &fam, 4));
    });
    let siggen_ib = KernelPair {
        name: "siggen_ib_seq_vs_par4",
        before_ms: ib_before,
        after_ms: ib_after,
    };

    // One-vs-all agreement distances: hoisted per-pair column loop (the
    // pre-PR 7 distances_row) vs the slot-major batched kernel. The sums
    // accumulate the same values in the same order, so they must be
    // bit-identical.
    let agr_rounds = 64.min(m);
    let agr_iters = 5;
    let mut row = vec![0.0f64; m];
    let before_sum = {
        let mut acc = 0.0f64;
        for p in 0..agr_rounds {
            let col = out.matrix.column(p);
            for j in 0..m {
                acc += 1.0 - SignatureMatrix::similarity_between(col, out.matrix.column(j));
            }
        }
        acc
    };
    let slots = SlotMajorSignatures::from_matrix(&out.matrix);
    let after_sum = {
        let mut acc = 0.0f64;
        for p in 0..agr_rounds {
            slots.distances_into(p, 0, &mut row);
            for &d in row.iter() {
                acc += d;
            }
        }
        acc
    };
    assert_eq!(
        before_sum.to_bits(),
        after_sum.to_bits(),
        "batched agreement must be bit-identical"
    );
    let (_, agr_before) = time_ms(|| {
        for _ in 0..agr_iters {
            let mut acc = 0.0f64;
            for p in 0..agr_rounds {
                let col = out.matrix.column(p);
                for j in 0..m {
                    acc += 1.0 - SignatureMatrix::similarity_between(col, out.matrix.column(j));
                }
            }
            black_box(acc);
        }
    });
    let (_, agr_after) = time_ms(|| {
        for _ in 0..agr_iters {
            // One transpose per selection, amortised over its rounds —
            // exactly the production shape in SignatureDistance::new.
            let slots = SlotMajorSignatures::from_matrix(&out.matrix);
            let mut acc = 0.0f64;
            for p in 0..agr_rounds {
                slots.distances_into(p, 0, &mut row);
                for &d in row.iter() {
                    acc += d;
                }
            }
            black_box(acc);
        }
    });
    let agreement = KernelPair {
        name: "minhash_agreement_batched",
        before_ms: agr_before,
        after_ms: agr_after,
    };

    // One-vs-all Hamming distances: per-pair zone-row agreement vs the
    // packed word-at-a-time popcount rows.
    let buckets: usize = args.get_or("buckets", 8);
    let params = LshParams::from_threshold(t, 0.4).expect("lsh params");
    let zones = params.zones;
    let idx = LshIndex::build(&out.matrix, params, buckets, 23).expect("lsh index");
    let before_sum = {
        let mut acc = 0.0f64;
        for p in 0..agr_rounds {
            let zr = idx.zone_row(p);
            for j in 0..m {
                acc += LshIndex::hamming_between(zr, idx.zone_row(j), zones) as f64;
            }
        }
        acc
    };
    let after_sum = {
        let mut acc = 0.0f64;
        for p in 0..agr_rounds {
            idx.hamming_row_into(p, 0, &mut row);
            for &d in row.iter() {
                acc += d;
            }
        }
        acc
    };
    assert_eq!(
        before_sum.to_bits(),
        after_sum.to_bits(),
        "packed Hamming must be bit-identical"
    );
    let ham_iters = 20;
    let (_, ham_before) = time_ms(|| {
        for _ in 0..ham_iters {
            let mut acc = 0.0f64;
            for p in 0..agr_rounds {
                let zr = idx.zone_row(p);
                for j in 0..m {
                    acc += LshIndex::hamming_between(zr, idx.zone_row(j), zones) as f64;
                }
            }
            black_box(acc);
        }
    });
    let (_, ham_after) = time_ms(|| {
        for _ in 0..ham_iters {
            let mut acc = 0.0f64;
            for p in 0..agr_rounds {
                idx.hamming_row_into(p, 0, &mut row);
                for &d in row.iter() {
                    acc += d;
                }
            }
            black_box(acc);
        }
    });
    let hamming = KernelPair {
        name: "lsh_hamming_batched",
        before_ms: ham_before,
        after_ms: ham_after,
    };

    let checked = [selection, siggen_ib];
    let info = [agreement, hamming];
    for p in checked.iter().chain(&info) {
        eprintln!(
            "{:>26}: before {:>9.2}ms  after {:>9.2}ms  speedup {:.2}x",
            p.name,
            p.before_ms,
            p.after_ms,
            p.speedup()
        );
    }

    let nproc = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::from("{\n  \"bench\": \"pr7-kernels\",\n");
    json.push_str(&format!(
        "  \"scale\": {},\n  \"n\": {n},\n  \"m\": {m},\n  \"t\": {t},\n  \"k\": {k},\n  \
         \"nproc\": {nproc},\n",
        args.scale
    ));
    json.push_str("  \"checked\": {\n");
    let rows: Vec<String> = checked.iter().map(KernelPair::json).collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  },\n  \"informational\": {\n");
    let rows: Vec<String> = info.iter().map(KernelPair::json).collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  }\n}\n");

    if let Some(baseline_path) = args.get("check") {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut failed = false;
        for p in &checked {
            let Some(base) = baseline_speedup(&baseline, p.name) else {
                eprintln!("CHECK {:>24}: missing from baseline — failing", p.name);
                failed = true;
                continue;
            };
            // The committed speedup may halve before failing, but the
            // new engine must never lose outright to the frozen one.
            let floor = (base / 2.0).max(1.0);
            let ok = p.speedup() >= floor;
            eprintln!(
                "CHECK {:>24}: {:.2}x vs baseline {:.2}x (floor {:.2}x) — {}",
                p.name,
                p.speedup(),
                base,
                floor,
                if ok { "ok" } else { "REGRESSED" }
            );
            failed |= !ok;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        eprintln!("loadgen kernels --check: all gates passed");
    } else {
        let out_path = args.get("out").unwrap_or("BENCH_pr7.json");
        if let Err(e) = std::fs::write(out_path, &json) {
            eprintln!("cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out_path}");
    }
    ExitCode::SUCCESS
}

/// One topology's measurements in `--mode cluster`.
struct TopoReport {
    workers: usize,
    cold_ms: f64,
    warm_ms: f64,
    qps: f64,
    p50: f64,
    p99: f64,
    fan_qps: f64,
    fan_p50: f64,
    fan_p99: f64,
    selected: Vec<u64>,
}

impl TopoReport {
    fn json(&self) -> String {
        format!(
            "    {{\"workers\": {}, \"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"throughput_qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"fanout_qps\": {:.1}, \"fanout_p50_ms\": {:.3}, \"fanout_p99_ms\": {:.3}}}",
            self.workers,
            self.cold_ms,
            self.warm_ms,
            self.qps,
            self.p50,
            self.p99,
            self.fan_qps,
            self.fan_p50,
            self.fan_p99,
        )
    }
}

/// Measures one topology: `workers == 0` is the single-process
/// baseline; otherwise a coordinator fans out to that many in-process
/// worker servers over real TCP sockets.
fn run_cluster_topology(
    path: &str,
    workers: usize,
    conns: usize,
    queries: usize,
    k: usize,
    t: usize,
) -> TopoReport {
    let mut worker_handles = Vec::with_capacity(workers);
    let mut addrs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let h = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind worker")
        .spawn()
        .expect("spawn worker");
        addrs.push(h.addr().to_string());
        worker_handles.push(h);
    }
    let cluster = (workers > 0).then(|| ClusterConfig {
        workers: addrs.clone(),
        replication: 1,
        shards: (2 * workers).max(4),
        fanout_timeout_ms: 10_000,
    });
    let handle = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: conns.max(2),
        cluster,
        ..ServerConfig::default()
    })
    .expect("bind coordinator")
    .spawn()
    .expect("spawn coordinator");
    let addr = handle.addr();

    let mut probe = Client::connect(addr).expect("connect");
    probe.load("bench", path).expect("load");

    let mut spec = QuerySpec::new("bench", k);
    spec.t = t;
    spec.seed = 7;
    let (selected, cold_ms) = query_once(&mut probe, &spec);
    let mut warm_ms = f64::INFINITY;
    for _ in 0..5 {
        let (sel, ms) = query_once(&mut probe, &spec);
        assert_eq!(sel, selected, "warm cluster query changed the answer");
        warm_ms = warm_ms.min(ms);
    }

    // Distinct seeds: every query is a fresh fan-out (or a cold local
    // fingerprint at 0 workers) — the distributed work itself, not a
    // memo hit.
    let t0 = Instant::now();
    let mut fan_ms = Vec::with_capacity(queries);
    for q in 0..queries {
        let mut s = spec.clone();
        s.seed = 1_000 + q as u64;
        let (_, ms) = query_once(&mut probe, &s);
        fan_ms.push(ms);
    }
    let fan_qps = queries as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    fan_ms.sort_by(|a, b| a.total_cmp(b));
    let (fan_p50, fan_p99) = (percentile(&fan_ms, 0.50), percentile(&fan_ms, 0.99));

    // Concurrent warm throughput — the steady state every topology
    // serves from the coordinator's memo.
    let t0 = Instant::now();
    let mut all_ms: Vec<f64> = Vec::with_capacity(conns * queries);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..conns {
            let spec = spec.clone();
            let expected = &selected;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(queries);
                for _ in 0..queries {
                    let (sel, ms) = query_once(&mut client, &spec);
                    assert_eq!(
                        &sel, expected,
                        "concurrent cluster query changed the answer"
                    );
                    lat.push(ms);
                }
                lat
            }));
        }
        for h in handles {
            all_ms.extend(h.join().expect("client thread"));
        }
    });
    let qps = (conns * queries) as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    all_ms.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&all_ms, 0.50), percentile(&all_ms, 0.99));

    probe.shutdown().expect("coordinator shutdown");
    handle.join().expect("coordinator exit");
    for (a, h) in addrs.iter().zip(worker_handles) {
        let mut c = Client::connect(a.as_str()).expect("connect worker");
        c.shutdown().ok();
        h.join().ok();
    }

    TopoReport {
        workers,
        cold_ms,
        warm_ms,
        qps,
        p50,
        p99,
        fan_qps,
        fan_p50,
        fan_p99,
        selected,
    }
}

/// `--mode cluster`: single-process vs 2- and 4-worker coordinator
/// topologies over the same dataset — bit-identity asserted, timings
/// informational.
fn run_cluster_mode(args: &Args) -> ExitCode {
    let n = ((1_000_000f64 * args.scale) as usize).max(2_000);
    let conns: usize = args.get_or("conns", 4);
    let queries: usize = args.get_or("queries", 16);
    let k: usize = args.get_or("k", 10);
    let t: usize = args.get_or("t", 64);
    eprintln!("# loadgen cluster mode: n = {n}, {conns} conns x {queries} queries");

    let data = Family::Ant.generate(n, 3, 91);
    let path = format!("target/loadgen_cluster_{}.csv", std::process::id());
    io::write_csv(&data, &path).expect("write dataset");

    let topologies: Vec<TopoReport> = [0usize, 2, 4]
        .iter()
        .map(|&w| run_cluster_topology(&path, w, conns, queries, k, t))
        .collect();
    let _ = std::fs::remove_file(&path);

    for topo in &topologies[1..] {
        assert_eq!(
            topo.selected, topologies[0].selected,
            "{}-worker cluster diverged from the single-process answer",
            topo.workers
        );
    }
    for topo in &topologies {
        eprintln!(
            "{} workers: cold {:>8.2}ms  warm {:>6.2}ms  {:>7.0} q/s (p99 {:.2}ms)  \
             fan-out {:>6.1} q/s (p99 {:.2}ms)",
            topo.workers,
            topo.cold_ms,
            topo.warm_ms,
            topo.qps,
            topo.p99,
            topo.fan_qps,
            topo.fan_p99,
        );
    }

    let rows: Vec<String> = topologies.iter().map(TopoReport::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"pr8-loadgen-cluster\",\n  \"scale\": {},\n  \"n\": {n},\n  \
         \"conns\": {conns},\n  \"queries_per_conn\": {queries},\n  \"k\": {k},\n  \
         \"t\": {t},\n  \"answers_identical\": true,\n  \"topologies\": [\n{}\n  ]\n}}\n",
        args.scale,
        rows.join(",\n"),
    );

    if let Some(baseline_path) = args.get("check") {
        // Bit-identity already gated above (the asserts); the timings
        // are informational, so the baseline check only confirms the
        // committed report describes this bench.
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ok = baseline.contains("pr8-loadgen-cluster")
            && baseline.contains("\"answers_identical\": true");
        eprintln!(
            "CHECK cluster contract (identical answers, report {baseline_path}) — {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            return ExitCode::FAILURE;
        }
    } else {
        let out = args.get("out").unwrap_or("BENCH_pr8.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}

/// One serving shape's measurements in `--mode pipeline`.
struct PipeReport {
    name: &'static str,
    qps: f64,
    p50: f64,
    p99: f64,
}

impl PipeReport {
    fn json(&self) -> String {
        format!(
            "  \"{}_qps\": {:.1},\n  \"{}_p50_ms\": {:.3},\n  \"{}_p99_ms\": {:.3}",
            self.name, self.qps, self.name, self.p50, self.name, self.p99
        )
    }
}

/// Splits a `BATCH` payload's `"results":[...]` array into its
/// per-item objects (flat objects, so splitting on `"},{"` is exact).
fn batch_results(payload: &str) -> Vec<String> {
    let start = payload.find("\"results\":[").expect("results array") + "\"results\":[".len();
    let end = payload[start..].rfind(']').expect("results close") + start;
    payload[start..end]
        .split("},{")
        .map(str::to_string)
        .collect()
}

/// Fires `conns` client threads, each running `bursts` bursts through
/// `burst` (which returns the burst's round-trip in ms and verifies
/// every reply), and reports aggregate throughput plus per-query
/// latency quantiles (burst round-trip divided by `depth`).
fn pipeline_load<F>(
    name: &'static str,
    addr: std::net::SocketAddr,
    conns: usize,
    bursts: usize,
    depth: usize,
    framed: bool,
    burst: F,
) -> PipeReport
where
    F: Fn(&mut Client) -> f64 + Sync,
{
    let t0 = Instant::now();
    let mut per_query_ms: Vec<f64> = Vec::with_capacity(conns * bursts * depth);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..conns {
            let burst = &burst;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                if framed {
                    client.hello().expect("HELLO negotiation");
                }
                let mut lat = Vec::with_capacity(bursts * depth);
                for _ in 0..bursts {
                    let rtt = burst(&mut client);
                    lat.extend(std::iter::repeat_n(rtt / depth as f64, depth));
                }
                lat
            }));
        }
        for h in handles {
            per_query_ms.extend(h.join().expect("client thread"));
        }
    });
    let qps = (conns * bursts * depth) as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    per_query_ms.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (
        percentile(&per_query_ms, 0.50),
        percentile(&per_query_ms, 0.99),
    );
    PipeReport {
        name,
        qps,
        p50,
        p99,
    }
}

/// `--mode pipeline`: the PR 9 serving shapes — depth-1 text (the
/// BENCH_pr3 single-request path), pipelined text, pipelined binary,
/// and `BATCH` — over the same warm query, answers asserted identical.
fn run_pipeline_mode(args: &Args) -> ExitCode {
    let n = ((1_000_000f64 * args.scale) as usize).max(2_000);
    let conns: usize = args.get_or("conns", 4);
    let depth: usize = args.get_or("depth", 32);
    let bursts: usize = args.get_or("bursts", 16);
    let k: usize = args.get_or("k", 10);
    let t: usize = args.get_or("t", 64);
    let threads: usize = args.get_or("threads", conns);
    eprintln!(
        "# loadgen pipeline mode: n = {n}, {conns} conns x {bursts} bursts x depth {depth}"
    );

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        cache_bytes: 64 << 20,
        ..ServerConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert_dataset("bench", Family::Ant.generate(n, 3, 91));
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let mut spec = QuerySpec::new("bench", k);
    spec.t = t;
    spec.seed = 7;
    let line = spec.to_line();

    // Warm the fingerprint once; every timed shape below replays this
    // query and must return this selected set.
    let mut probe = Client::connect(addr).expect("connect");
    let (expected, cold_ms) = query_once(&mut probe, &spec);
    eprintln!("# cold fingerprint {cold_ms:.1}ms, selected |{}|", expected.len());
    let verify = |raw: &str| {
        let payload = parse_response(raw).expect("OK reply");
        let selected = json_u64_array(&payload, "selected").expect("selected array");
        assert_eq!(selected, expected, "serving shape changed the answer");
    };

    // Depth 1, text: one request, one reply, one round trip — the
    // exact shape BENCH_pr3's throughput leg measures.
    let single = pipeline_load("single", addr, conns, bursts * depth, 1, false, |client| {
        let t0 = Instant::now();
        let raw = client.request(&line).expect("request");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        verify(&raw);
        ms
    });

    // Depth N, text then binary: one flush and one round trip per
    // burst; replies must come back in order.
    let lines = vec![line.clone(); depth];
    let pipe_burst = |client: &mut Client| {
        let t0 = Instant::now();
        let replies = client.pipeline(&lines).expect("pipeline");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        for raw in &replies {
            verify(raw);
        }
        ms
    };
    let pipe_text = pipeline_load("pipe_text", addr, conns, bursts, depth, false, pipe_burst);
    let pipe_bin = pipeline_load("pipe_bin", addr, conns, bursts, depth, true, pipe_burst);

    // BATCH: one request resolves the fingerprint once and runs all
    // `depth` selections server-side — no per-item wire cost at all.
    let mut batch = BatchSpec::new("bench", vec![(k, Method::MinHash); depth]);
    batch.t = t;
    batch.seed = 7;
    let batch_rep = pipeline_load("batch", addr, conns, bursts, depth, false, |client| {
        let t0 = Instant::now();
        let payload = client.batch(&batch).expect("batch");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let results = batch_results(&payload);
        assert_eq!(results.len(), depth, "BATCH must answer every item");
        for item in &results {
            let selected = json_u64_array(item, "selected").expect("selected array");
            assert_eq!(selected, expected, "BATCH item changed the answer");
        }
        ms
    });

    let stats = probe.stats().expect("stats");
    let pipelined_reqs = json_u64(&stats, "pipeline_count").unwrap_or(0);
    let hellos = json_u64(&stats, "hellos").unwrap_or(0);
    probe.shutdown().expect("shutdown");
    handle.join().expect("server exit");
    assert!(
        pipelined_reqs > 0,
        "the pipelined legs must batch requests per read: {stats}"
    );
    assert!(hellos >= conns as u64, "binary legs must negotiate: {stats}");

    let shapes = [single, pipe_text, pipe_bin, batch_rep];
    for s in &shapes {
        eprintln!(
            "{:>9}: {:>8.0} q/s  p50 {:.3}ms  p99 {:.3}ms",
            s.name, s.qps, s.p50, s.p99
        );
    }
    let best_pipe = shapes[1].qps.max(shapes[2].qps).max(shapes[3].qps);
    let ratio = best_pipe / shapes[0].qps.max(1e-9);
    let pipe_p99 = shapes[1].p99.max(shapes[2].p99);
    eprintln!("pipelined/single ratio {ratio:.1}x  pipelined p99 {pipe_p99:.3}ms");

    // The headline acceptance compares against the committed PR 3
    // report: the old blocking server's single-request text throughput
    // on this same workload (warm queries, 4 conns).
    let pr3_path = args.get("pr3").unwrap_or("BENCH_pr3.json");
    let pr3_single = std::fs::read_to_string(pr3_path)
        .ok()
        .and_then(|s| baseline_f64(&s, "throughput_qps"));
    let vs_pr3 = pr3_single.map(|qps| best_pipe / qps.max(1e-9));
    let pr3_json = match (pr3_single, vs_pr3) {
        (Some(qps), Some(r)) => {
            eprintln!("vs BENCH_pr3 single-request path ({qps:.1} q/s): {r:.1}x");
            format!("  \"pr3_single_qps\": {qps:.1},\n  \"vs_pr3_single\": {r:.3},\n")
        }
        _ => String::new(),
    };

    let rows: Vec<String> = shapes.iter().map(PipeReport::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"pr9-loadgen-pipeline\",\n  \"scale\": {},\n  \"n\": {n},\n  \
         \"conns\": {conns},\n  \"depth\": {depth},\n  \"bursts\": {bursts},\n  \
         \"k\": {k},\n  \"t\": {t},\n  \"server_threads\": {threads},\n{},\n  \
         \"pipeline_over_single\": {ratio:.3},\n  \"pipelined_p99_ms\": {pipe_p99:.3},\n\
         {pr3_json}  \"answers_identical\": true\n}}\n",
        args.scale,
        rows.join(",\n"),
    );

    if let Some(baseline_path) = args.get("check") {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(base_ratio) = baseline_f64(&baseline, "pipeline_over_single") else {
            eprintln!("baseline {baseline_path} lacks pipeline_over_single");
            return ExitCode::FAILURE;
        };
        // The ratio is within-run (same server, same box, same binary),
        // so it transfers across machines; a quarter of the committed
        // baseline (never below 2x) catches the event loop losing its
        // batching without flaking on scheduler noise.
        let floor = (base_ratio / 4.0).max(2.0);
        let ratio_ok = ratio >= floor;
        eprintln!(
            "CHECK pipeline_over_single: {ratio:.2}x vs baseline {base_ratio:.2}x (floor {floor:.2}x) — {}",
            if ratio_ok { "ok" } else { "REGRESSED" }
        );
        // The acceptance latency bound is absolute and generous enough
        // to hold on small CI runners: warm pipelined queries must stay
        // under 5 ms at p99.
        let p99_ok = pipe_p99 < 5.0;
        eprintln!(
            "CHECK pipelined p99: {pipe_p99:.3}ms (bound 5.000ms) — {}",
            if p99_ok { "ok" } else { "REGRESSED" }
        );
        // The headline 10x: best pipelined throughput vs the committed
        // PR 3 single-request figure. Cross-machine, but the margin is
        // wide — the memo + pipelining path answers a warm query in a
        // few microseconds of server work, so any runner that could
        // record BENCH_pr3-like numbers clears 10x comfortably.
        let pr3_ok = match vs_pr3 {
            Some(r) => {
                let ok = r >= 10.0;
                eprintln!(
                    "CHECK vs BENCH_pr3 single-request path: {r:.1}x (floor 10.0x) — {}",
                    if ok { "ok" } else { "REGRESSED" }
                );
                ok
            }
            None => {
                eprintln!("CHECK vs BENCH_pr3: {pr3_path} unreadable — failing");
                false
            }
        };
        if !ratio_ok || !p99_ok || !pr3_ok {
            return ExitCode::FAILURE;
        }
    } else {
        let out = args.get("out").unwrap_or("BENCH_pr9.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}

/// Anticorrelated points shifted up by `delta` in every dimension —
/// "new data that is mostly worse", so most of it is dominated and only
/// a few new skyline columns appear.
fn shifted_block(a: usize, seed: u64, delta: f64) -> Dataset {
    let raw = Family::Ant.generate(a, 3, seed);
    let rows: Vec<Vec<f64>> = (0..raw.len())
        .map(|i| raw.point(i).iter().map(|v| v + delta).collect())
        .collect();
    Dataset::from_rows(3, &rows)
}

fn main() -> ExitCode {
    let args = Args::parse();
    if args.get("mode") == Some("append") {
        return run_append_mode(&args);
    }
    if args.get("mode") == Some("restart") {
        return run_restart_mode(&args);
    }
    if args.get("mode") == Some("kernels") {
        return run_kernels_mode(&args);
    }
    if args.get("mode") == Some("cluster") {
        return run_cluster_mode(&args);
    }
    if args.get("mode") == Some("pipeline") {
        return run_pipeline_mode(&args);
    }
    let n = ((1_000_000f64 * args.scale) as usize).max(2_000);
    let conns: usize = args.get_or("conns", 4);
    let queries: usize = args.get_or("queries", 25);
    let k: usize = args.get_or("k", 10);
    let t: usize = args.get_or("t", 64);
    let threads: usize = args.get_or("threads", conns);

    eprintln!("# loadgen: scale {} (n = {n}), {conns} conns x {queries} queries, {threads} server threads", args.scale);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        cache_bytes: 64 << 20,
        ..ServerConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert_dataset("bench", Family::Ant.generate(n, 3, 91));
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    let mut spec = QuerySpec::new("bench", k);
    spec.t = t;
    spec.seed = 7;

    // Cold: the first query fingerprints; warm: best of 5 cache hits.
    let mut probe = Client::connect(addr).expect("connect");
    let (expected, cold_ms) = query_once(&mut probe, &spec);
    assert_eq!(
        expected.len(),
        k.min(expected.len()),
        "query returned a selection"
    );
    let mut warm_ms = f64::INFINITY;
    for _ in 0..5 {
        let (sel, ms) = query_once(&mut probe, &spec);
        assert_eq!(sel, expected, "warm query changed the answer");
        warm_ms = warm_ms.min(ms);
    }

    // Concurrent load: conns clients x queries warm queries each.
    let t0 = Instant::now();
    let mut all_ms: Vec<f64> = Vec::with_capacity(conns * queries);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..conns {
            let spec = spec.clone();
            let expected = &expected;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(queries);
                for _ in 0..queries {
                    let (sel, ms) = query_once(&mut client, &spec);
                    assert_eq!(&sel, expected, "concurrent query changed the answer");
                    lat.push(ms);
                }
                lat
            }));
        }
        for h in handles {
            all_ms.extend(h.join().expect("client thread"));
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let qps = (conns * queries) as f64 / wall_s.max(1e-9);
    all_ms.sort_by(|a, b| a.total_cmp(b));
    let (p50, p99) = (percentile(&all_ms, 0.50), percentile(&all_ms, 0.99));

    let stats = probe.stats().expect("stats");
    let hits = json_u64(&stats, "cache_hits").unwrap_or(0);
    let misses = json_u64(&stats, "cache_misses").unwrap_or(0);
    probe.shutdown().expect("shutdown");
    handle.join().expect("server exit");

    eprintln!(
        "cold {cold_ms:.2}ms  warm {warm_ms:.2}ms  (ratio {:.1}x)  throughput {qps:.0} q/s  p50 {p50:.2}ms  p99 {p99:.2}ms  cache {hits}h/{misses}m",
        cold_ms / warm_ms.max(1e-9)
    );
    assert!(hits > 0, "warm queries must hit the fingerprint cache");

    let json = report(
        args.scale, n, conns, queries, threads, cold_ms, warm_ms, qps, p50, p99, hits, misses,
    );

    if let Some(baseline_path) = args.get("check") {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (Some(base_ratio), Some(base_n)) = (
            baseline_f64(&baseline, "cold_over_warm"),
            baseline_f64(&baseline, "n"),
        ) else {
            eprintln!("baseline {baseline_path} lacks cold_over_warm / n");
            return ExitCode::FAILURE;
        };
        let ratio = cold_ms / warm_ms.max(1e-9);
        // Pro-rate by cardinality, never below 4x: even the tiniest run
        // must show the cache clearly beating re-fingerprinting.
        let floor = (base_ratio / 4.0 * (n as f64 / base_n.max(1.0))).max(4.0);
        let ok = ratio >= floor;
        eprintln!(
            "CHECK cold_over_warm: {ratio:.2}x at n={n} vs baseline {base_ratio:.2}x at n={base_n} (floor {floor:.2}x) — {}",
            if ok { "ok" } else { "REGRESSED" }
        );
        if !ok {
            return ExitCode::FAILURE;
        }
    } else {
        let out = args.get("out").unwrap_or("BENCH_pr3.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}
