//! **Table 4** — basic data set characteristics (§5.1), extended with
//! the skyline cardinalities the other experiments operate on.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin table4 [-- --scale 0.1]
//! ```

use skydiver_bench::{print_header, print_row, Args, Family};
use skydiver_data::dominance::MinDominance;
use skydiver_skyline::sfs;

fn main() {
    let args = Args::parse();
    println!(
        "Table 4: data set characteristics at scale {} (paper cardinalities: IND/ANT 1-7M, FC ~581K, REC ~365K)",
        args.scale
    );
    print_header(&["data", "cardinality", "d", "skyline m", "m/n"]);
    for family in [Family::Ind, Family::Ant, Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        for &d in family.paper_dims() {
            let ds = family.generate(n, d, 1);
            let m = sfs(&ds, &MinDominance).len();
            print_row(&[
                family.name().into(),
                n.to_string(),
                d.to_string(),
                m.to_string(),
                format!("{:.4}%", 100.0 * m as f64 / n as f64),
            ]);
        }
    }
    println!("\n(default dims underlined in the paper: IND/ANT 4, FC/REC 5;");
    println!(" the skyline grows as O((ln n)^(d-1)) for IND and much faster");
    println!(" for ANT — the cardinality-explosion problem SkyDiver targets)");
}
