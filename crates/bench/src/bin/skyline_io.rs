//! **Substrate comparison** — I/O behaviour of the skyline algorithms
//! the framework can feed on: the index-free sequential family (SFS
//! over a scan, LESS in the external-memory model of \[29\]) against
//! the index-based BBS of \[24\], across data distributions.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin skyline_io [-- --scale 0.1]
//! ```
//!
//! Expected shape: BBS touches a small fraction of the index (it is
//! I/O-optimal — the reason the paper calls it "the most preferred");
//! LESS pays roughly two to three scans' worth of sequential pages but
//! needs no index; elimination makes LESS cheapest on correlated data.

use skydiver_bench::{print_header, print_row, scan_pages, Args, Family};
use skydiver_data::dominance::MinDominance;
use skydiver_data::generators::correlated;
use skydiver_rtree::{BufferPool, RTree, DEFAULT_CACHE_FRACTION, DEFAULT_PAGE_SIZE};
use skydiver_skyline::{bbs, less_skyline, sfs, ExternalConfig};

fn main() {
    let args = Args::parse();
    let mem_pages = args.get_or("memory-pages", 64usize);

    println!(
        "Skyline substrate I/O (pages; memory {mem_pages} pages; scale {})",
        args.scale
    );
    print_header(&["data", "n", "m", "scan", "LESS io", "LESS runs", "BBS io"]);

    let mut workloads: Vec<(String, skydiver_data::Dataset)> = Vec::new();
    for family in [Family::Ind, Family::Ant, Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        let d = family.default_dims();
        workloads.push((
            format!("{}{}D", family.name(), d),
            family.generate(n, d, 1),
        ));
    }
    workloads.push((
        "COR4D".into(),
        correlated(args.cardinality(Family::Ind), 4, 1),
    ));

    for (name, ds) in workloads {
        let skyline = sfs(&ds, &MinDominance);
        let (less_sky, less_stats) = less_skyline(
            &ds,
            ExternalConfig {
                memory_pages: mem_pages,
                page_size: DEFAULT_PAGE_SIZE,
            },
        );
        assert_eq!(less_sky, skyline, "LESS must be exact");

        let tree = RTree::bulk_load(&ds, DEFAULT_PAGE_SIZE);
        let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
        let bbs_sky = bbs(&tree, &mut pool);
        assert_eq!(bbs_sky, skyline, "BBS must be exact");

        print_row(&[
            name,
            ds.len().to_string(),
            skyline.len().to_string(),
            scan_pages(ds.len(), ds.dims()).to_string(),
            less_stats.io.sequential_pages.to_string(),
            less_stats.runs.to_string(),
            (pool.stats().faults + pool.stats().hits).to_string(),
        ]);
    }
    println!("\n'scan' = one sequential pass over the raw file, for reference.");
}
