//! **Figure 10** — end-to-end runtime of BF, SG, MH100 and LSH100 for
//! k = 10 diverse skyline points, as a function of dimensionality, on
//! IND, ANT, FC and REC.
//!
//! ```sh
//! cargo run --release -p skydiver-bench --bin fig10 [-- --scale 0.05]
//! ```
//!
//! Notes mirroring the paper: BF is reported for k = 2 only (k = 10 "did
//! not finish"), and is skipped entirely when the skyline is too large —
//! exactly as the paper omits BF from the ANT panel and reports DNFs.
//! Expected shape: BF ≫ SG ≫ MH ≈ LSH, with SG 2–3 orders of magnitude
//! above the signature methods except on tiny skylines (IND 2D).

use skydiver_bench::runner::ExperimentContext;
use skydiver_bench::{fmt_ms, print_header, print_row, Args, Family};

fn main() {
    let args = Args::parse();
    let k = args.get_or("k", 10usize);
    let t = args.get_or("t", 100usize);
    let bf_max_m = args.get_or("bf-max-m", 1200usize);
    let sg_max_m = args.get_or("sg-max-m", 30_000usize);

    println!(
        "Figure 10: runtime for k={k} diverse points vs dimensionality (t={t}, scale {})",
        args.scale
    );
    print_header(&["data", "d", "m", "BF(k=2)", "SG", &format!("MH{t}"), &format!("LSH{t}")]);

    for family in [Family::Ind, Family::Ant, Family::Fc, Family::Rec] {
        let n = args.cardinality(family);
        for &d in family.paper_dims() {
            let mut ctx = ExperimentContext::new(family, n, d, 1);
            let m = ctx.m();
            if m < 2 {
                continue;
            }
            let k_eff = k.min(m);

            let bf = ctx
                .run_bf(2, bf_max_m)
                .map(|r| fmt_ms(r.total_ms()))
                .unwrap_or_else(|| "DNF".into());
            let sg = if m <= sg_max_m && k_eff >= 2 {
                fmt_ms(ctx.run_sg(k_eff).total_ms())
            } else {
                "DNF".into()
            };
            let mh = fmt_ms(ctx.run_mh(t, k_eff).total_ms());
            let lsh = fmt_ms(ctx.run_lsh(t, 0.2, 20, k_eff).total_ms());

            print_row(&[
                family.name().into(),
                d.to_string(),
                m.to_string(),
                bf,
                sg,
                mh,
                lsh,
            ]);
        }
    }
    println!("\npaper reference (Fig 10): BF is impractical even at k=2; SG is");
    println!("2-3 orders of magnitude slower than MH/LSH except for IND 2D");
    println!("(tiny skyline); SG did not complete on ANT 6D.");
}
