//! Vendored, dependency-free stand-in for the subset of the `rand` 0.8
//! API that SkyDiver uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, `seq::SliceRandom`).
//!
//! The build environment has no access to crates.io, so this crate is
//! wired in through `[workspace.dependencies] rand = { path = ... }`.
//! The generator is xoshiro256++ seeded via SplitMix64 — statistically
//! strong and fast; streams differ from upstream `StdRng` (ChaCha12),
//! which is fine because the repo only relies on *seeded determinism*,
//! never on upstream's exact byte streams.

#![warn(missing_docs)]

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over the full range,
    /// fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Accept only draws below the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit range: every draw is in range.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + (self.end - self.start) * f64::sample(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator (xoshiro256++ here; upstream
    /// uses ChaCha12 — only seeded determinism is relied upon).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
