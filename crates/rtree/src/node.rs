//! Node and entry types of the aggregate R*-tree.

use crate::mbr::Mbr;

/// Identifier of a tree node; doubles as the page id for the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as a buffer-pool key.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0 as u64
    }

    /// The page id as a slab index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What an entry points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Child {
    /// An internal child node.
    Node(PageId),
    /// A data point, identified by its dataset index.
    Point(u32),
}

/// One slot of a node: bounding box, aggregate count of data points in
/// the subtree (1 for leaf entries), and the child reference.
///
/// The aggregate `count` is what makes this an *aggregate* R-tree: both
/// `SigGen-IB` (paper Fig. 4, `e.count`) and the Simple-Greedy baseline's
/// range-count queries read it to avoid descending fully-covered
/// subtrees.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Bounding box of the subtree (degenerate for leaf entries).
    pub mbr: Mbr,
    /// Number of data points below this entry.
    pub count: u64,
    /// Child node or data point.
    pub child: Child,
}

impl Entry {
    /// A leaf entry for data point `id` at coordinates `p`.
    pub fn point(p: &[f64], id: u32) -> Self {
        Entry {
            mbr: Mbr::point(p),
            count: 1,
            child: Child::Point(id),
        }
    }
}

/// A tree node. `level == 0` means leaf (entries reference points);
/// higher levels reference nodes one level down.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Height of this node above the leaves.
    pub level: u32,
    /// Slots, at most the tree's `max_entries`.
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node at `level`.
    pub fn new(level: u32) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// `true` when this node references data points.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Union of all entry MBRs (empty identity when the node is empty).
    pub fn mbr(&self, dims: usize) -> Mbr {
        let mut m = Mbr::empty(dims);
        for e in &self.entries {
            m.expand(&e.mbr);
        }
        m
    }

    /// Sum of entry counts.
    pub fn count(&self) -> u64 {
        self.entries.iter().map(|e| e.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_entry_is_degenerate() {
        let e = Entry::point(&[1.0, 2.0], 7);
        assert_eq!(e.mbr.lo(), e.mbr.hi());
        assert_eq!(e.count, 1);
        assert_eq!(e.child, Child::Point(7));
    }

    #[test]
    fn node_mbr_and_count_aggregate() {
        let mut n = Node::new(0);
        n.entries.push(Entry::point(&[0.0, 0.0], 0));
        n.entries.push(Entry::point(&[2.0, 1.0], 1));
        let m = n.mbr(2);
        assert_eq!(m.lo(), &[0.0, 0.0]);
        assert_eq!(m.hi(), &[2.0, 1.0]);
        assert_eq!(n.count(), 2);
        assert!(n.is_leaf());
    }

    #[test]
    fn page_id_conversions() {
        let p = PageId(5);
        assert_eq!(p.as_u64(), 5);
        assert_eq!(p.index(), 5);
    }
}
