//! Simulated buffer pool and I/O cost accounting.
//!
//! The paper's experimental setup (§5.1): 4 KiB pages, a cache holding
//! 20 % of the R*-tree's blocks, and a charge of 8 ms per page fault on
//! top of measured CPU time. This module reproduces that model so the
//! I/O-versus-CPU trade-offs (Figures 9–11) keep their shape: page
//! *contents* live in memory, but every logical page access goes through
//! an LRU [`BufferPool`] that records hits and faults.

/// Default page size in bytes (paper §5.1).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Default charge per page fault, in milliseconds (paper §5.1).
pub const DEFAULT_MS_PER_FAULT: f64 = 8.0;

/// Default cache fraction: 20 % of the index's blocks (paper §5.1).
pub const DEFAULT_CACHE_FRACTION: f64 = 0.20;

/// Running I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests satisfied by the buffer pool.
    pub hits: u64,
    /// Page requests that had to "go to disk".
    pub faults: u64,
    /// Pages read by sequential file scans (never cached; the data file
    /// is assumed to be much larger than the pool).
    pub sequential_pages: u64,
}

impl IoStats {
    /// Total logical page requests (random + sequential).
    pub fn accesses(&self) -> u64 {
        self.hits + self.faults + self.sequential_pages
    }

    /// Simulated I/O time in milliseconds under `ms_per_fault`.
    pub fn io_ms(&self, ms_per_fault: f64) -> f64 {
        (self.faults + self.sequential_pages) as f64 * ms_per_fault
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.hits += other.hits;
        self.faults += other.faults;
        self.sequential_pages += other.sequential_pages;
    }
}

/// Deterministic, seed-driven page-read fault injection.
///
/// Attached to a [`BufferPool`] via [`BufferPool::inject_faults`], this
/// simulates media failures for resilience testing: either one exact
/// access fails ([`FaultInjection::at_access`]) or each access fails
/// with probability `1/n` under a seeded hash
/// ([`FaultInjection::one_in`]). Both are pure functions of the access
/// index (and seed), so a failing run replays identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjection {
    /// Fail exactly the access with this 0-based index.
    fail_at_access: Option<u64>,
    /// `(n, seed)`: fail any access whose seeded hash lands in `1/n`.
    one_in: Option<(u64, u64)>,
}

impl FaultInjection {
    /// Fails exactly the `n`-th page access (0-based).
    pub fn at_access(n: u64) -> Self {
        FaultInjection {
            fail_at_access: Some(n),
            one_in: None,
        }
    }

    /// Fails each access independently with probability `1/n`, derived
    /// deterministically from `seed` and the access index.
    pub fn one_in(n: u64, seed: u64) -> Self {
        FaultInjection {
            fail_at_access: None,
            one_in: Some((n.max(1), seed)),
        }
    }

    fn trips(&self, access_index: u64) -> bool {
        if self.fail_at_access == Some(access_index) {
            return true;
        }
        if let Some((n, seed)) = self.one_in {
            return splitmix64(seed ^ access_index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .is_multiple_of(n);
        }
        false
    }
}

/// The first injected read failure observed by a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFailure {
    /// Page whose read failed.
    pub page_id: u64,
    /// 0-based access index at which the failure struck.
    pub access_index: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An LRU page cache with O(1) access/eviction via an intrusive
/// doubly-linked list over a slab.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    stats: IoStats,
    // slot index per cached page id
    map: std::collections::HashMap<u64, usize>,
    // slab of (page_id, prev, next); usize::MAX = none
    slots: Vec<(u64, usize, usize)>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    injection: Option<FaultInjection>,
    accesses_seen: u64,
    failure: Option<ReadFailure>,
}

const NONE: usize = usize::MAX;

impl BufferPool {
    /// A pool caching up to `capacity` pages. A capacity of 0 means every
    /// access faults.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            stats: IoStats::default(),
            map: std::collections::HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            head: NONE,
            tail: NONE,
            free: Vec::new(),
            injection: None,
            accesses_seen: 0,
            failure: None,
        }
    }

    /// A pool sized to the paper's default: `fraction` of `total_pages`,
    /// but at least one page when the index is non-empty.
    pub fn for_index(total_pages: usize, fraction: f64) -> Self {
        let cap = ((total_pages as f64 * fraction).floor() as usize).max(1);
        Self::new(cap)
    }

    /// Attaches a [`FaultInjection`] plan; subsequent accesses that the
    /// plan trips poison the pool (see [`BufferPool::poisoned`]).
    pub fn inject_faults(&mut self, plan: FaultInjection) {
        self.injection = Some(plan);
    }

    /// `true` once an injected page read has failed. Traversals check
    /// this cooperatively and bail out: the simulated page "contents"
    /// are still served (the pool is a counting model, not real
    /// storage), so a caller that ignores the poison gets internally
    /// consistent but incomplete reads — exactly the failure mode a real
    /// partial read produces.
    pub fn poisoned(&self) -> bool {
        self.failure.is_some()
    }

    /// The first injected failure, if any.
    pub fn failure(&self) -> Option<ReadFailure> {
        self.failure
    }

    /// Clears the poisoned state (keeps the injection plan and cache).
    pub fn clear_failure(&mut self) {
        self.failure = None;
    }

    /// Registers a logical access to `page_id`; returns `true` on fault.
    pub fn access(&mut self, page_id: u64) -> bool {
        let access_index = self.accesses_seen;
        self.accesses_seen += 1;
        if self.failure.is_none() {
            if let Some(plan) = &self.injection {
                if plan.trips(access_index) {
                    self.failure = Some(ReadFailure {
                        page_id,
                        access_index,
                    });
                }
            }
        }
        if self.capacity == 0 {
            self.stats.faults += 1;
            return true;
        }
        if let Some(&slot) = self.map.get(&page_id) {
            self.stats.hits += 1;
            self.move_to_front(slot);
            return false;
        }
        self.stats.faults += 1;
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = (page_id, NONE, NONE);
                s
            }
            None => {
                self.slots.push((page_id, NONE, NONE));
                self.slots.len() - 1
            }
        };
        self.map.insert(page_id, slot);
        self.push_front(slot);
        true
    }

    /// Registers `pages` sequential-scan page reads (uncached).
    pub fn sequential_read(&mut self, pages: u64) {
        self.stats.sequential_pages += pages;
    }

    /// Current counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets counters but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Drops all cached pages and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
        self.stats = IoStats::default();
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.map.len()
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].1 = NONE;
        self.slots[slot].2 = self.head;
        if self.head != NONE {
            self.slots[self.head].1 = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (_, prev, next) = self.slots[slot];
        if prev != NONE {
            self.slots[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slots[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn move_to_front(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NONE, "evict called on empty pool");
        let page_id = self.slots[victim].0;
        self.unlink(victim);
        self.map.remove(&page_id);
        self.free.push(victim);
    }
}

/// Pages needed to store `n` records of `record_bytes` each under the
/// sequential-file layout.
pub fn pages_for_records(n: usize, record_bytes: usize, page_size: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    let per_page = (page_size / record_bytes).max(1);
    n.div_ceil(per_page) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_accesses_fault_then_hit() {
        let mut p = BufferPool::new(2);
        assert!(p.access(1));
        assert!(!p.access(1));
        assert_eq!(p.stats(), IoStats { hits: 1, faults: 1, sequential_pages: 0 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = BufferPool::new(2);
        p.access(1); // fault
        p.access(2); // fault
        p.access(1); // hit, 1 is now MRU
        p.access(3); // fault, evicts 2
        assert!(!p.access(1), "1 must still be cached");
        assert!(p.access(2), "2 must have been evicted");
        assert_eq!(p.cached_pages(), 2);
    }

    #[test]
    fn zero_capacity_always_faults() {
        let mut p = BufferPool::new(0);
        p.access(7);
        p.access(7);
        assert_eq!(p.stats().faults, 2);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn sequential_reads_counted_separately() {
        let mut p = BufferPool::new(4);
        p.sequential_read(10);
        assert_eq!(p.stats().sequential_pages, 10);
        assert_eq!(p.stats().io_ms(8.0), 80.0);
    }

    #[test]
    fn for_index_sizes_to_fraction() {
        let p = BufferPool::for_index(100, 0.2);
        assert_eq!(p.capacity(), 20);
        // At least one page even for tiny indexes.
        assert_eq!(BufferPool::for_index(1, 0.2).capacity(), 1);
    }

    #[test]
    fn stats_merge_and_reset() {
        let mut p = BufferPool::new(2);
        p.access(1);
        let mut total = IoStats::default();
        total.merge(&p.stats());
        assert_eq!(total.faults, 1);
        p.reset_stats();
        assert_eq!(p.stats(), IoStats::default());
        assert_eq!(p.cached_pages(), 1, "reset keeps contents");
    }

    #[test]
    fn clear_empties_cache() {
        let mut p = BufferPool::new(2);
        p.access(1);
        p.clear();
        assert_eq!(p.cached_pages(), 0);
        assert!(p.access(1), "page 1 faults again after clear");
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut p = BufferPool::new(16);
        for round in 0..4u64 {
            for id in 0..64u64 {
                p.access(id * 31 % 64 + round);
            }
        }
        assert!(p.cached_pages() <= 16);
        let s = p.stats();
        assert_eq!(s.hits + s.faults, 4 * 64);
    }

    #[test]
    fn fault_at_exact_access_poisons_once() {
        let mut p = BufferPool::new(4);
        p.inject_faults(FaultInjection::at_access(2));
        p.access(10);
        p.access(11);
        assert!(!p.poisoned());
        p.access(12); // access #2 (0-based) trips
        assert_eq!(
            p.failure(),
            Some(ReadFailure { page_id: 12, access_index: 2 })
        );
        // Later accesses do not overwrite the first failure.
        p.access(13);
        assert_eq!(p.failure().unwrap().page_id, 12);
        p.clear_failure();
        assert!(!p.poisoned());
    }

    #[test]
    fn seeded_one_in_faults_are_deterministic() {
        let run = |seed: u64| {
            let mut p = BufferPool::new(8);
            p.inject_faults(FaultInjection::one_in(10, seed));
            for id in 0..1000u64 {
                p.access(id % 50);
                if p.poisoned() {
                    break;
                }
            }
            p.failure()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same failure point");
        assert!(a.is_some(), "1/10 rate must trip within 1000 accesses");
        // A different seed fails elsewhere (with overwhelming probability).
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn injection_does_not_disturb_counters() {
        let mut a = BufferPool::new(2);
        let mut b = BufferPool::new(2);
        b.inject_faults(FaultInjection::at_access(0));
        for id in [1u64, 2, 1, 3, 2] {
            a.access(id);
            b.access(id);
        }
        assert_eq!(a.stats(), b.stats(), "stats model unchanged by faults");
        assert!(b.poisoned());
    }

    #[test]
    fn pages_for_records_math() {
        assert_eq!(pages_for_records(0, 32, 4096), 0);
        assert_eq!(pages_for_records(128, 32, 4096), 1);
        assert_eq!(pages_for_records(129, 32, 4096), 2);
        // Oversized records: one per page.
        assert_eq!(pages_for_records(3, 8192, 4096), 3);
    }
}
