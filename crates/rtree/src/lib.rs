//! Aggregate R*-tree substrate for the SkyDiver framework.
//!
//! The paper indexes every data set with "an aggregate R*-tree, with a
//! 4Kb page size \[and\] an associated cache with 20 % of the
//! corresponding R*-tree's blocks" and charges 8 ms per page fault. This
//! crate provides exactly that stack:
//!
//! * [`mbr`] — bounding-box algebra and the point-vs-MBR dominance
//!   classification of §4.1.2 (full / partial / none),
//! * [`node`] — aggregate nodes (each entry carries a subtree point
//!   count),
//! * [`tree`] — the [`RTree`] with R* insertion (forced
//!   reinsert, topological split) and STR bulk loading,
//! * [`query`] — dominance-region aggregate counts and range queries,
//! * [`buffer`] — the LRU [`BufferPool`] and the
//!   simulated I/O cost model.

#![warn(missing_docs)]

pub mod buffer;
pub mod mbr;
pub mod node;
pub mod query;
pub mod split;
pub mod tree;

pub use buffer::{
    BufferPool, FaultInjection, IoStats, ReadFailure, DEFAULT_CACHE_FRACTION,
    DEFAULT_MS_PER_FAULT, DEFAULT_PAGE_SIZE,
};
pub use mbr::{classify_dominance, Mbr, MbrDominance};
pub use node::{Child, Entry, Node, PageId};
pub use tree::RTree;
