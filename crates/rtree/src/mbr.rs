//! Minimum bounding rectangles and their dominance relations.
//!
//! All geometry is in *canonical min-space*: every dimension is minimised
//! (callers canonicalise max-attributes by negation before indexing), so
//! "better" always means "closer to `-∞` corner-wise". The two MBR
//! dominance predicates implement the paper's §4.1.2 notions: a skyline
//! point *fully dominates* an MBR when it dominates the MBR's lower-left
//! corner (hence every point inside), and *partially dominates* it when it
//! dominates only the upper-right corner.

use skydiver_data::dominance::{dominates_min, Dominance, DominanceOrd, MinDominance};

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbr {
    /// Builds an MBR from corner vectors.
    ///
    /// # Panics
    /// Panics if the corners disagree in length or `lo[j] > hi[j]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a <= b),
            "lo must be <= hi per dimension"
        );
        Self { lo, hi }
    }

    /// A degenerate MBR covering exactly one point.
    pub fn point(p: &[f64]) -> Self {
        Self {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// An "empty" MBR that unions as the identity element.
    pub fn empty(dims: usize) -> Self {
        Self {
            lo: vec![f64::INFINITY; dims],
            hi: vec![f64::NEG_INFINITY; dims],
        }
    }

    /// Lower (best) corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper (worst) corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// `true` for the identity produced by [`Mbr::empty`] (never yielded
    /// by real data).
    pub fn is_empty(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(a, b)| a > b)
    }

    /// Hyper-volume (product of extents).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(a, b)| b - a)
            .product()
    }

    /// Sum of extents (the R*-tree "margin" criterion).
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.lo.iter().zip(&self.hi).map(|(a, b)| b - a).sum()
    }

    /// Centre point.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(a, b)| 0.5 * (a + b))
            .collect()
    }

    /// Smallest MBR containing both `self` and `other`.
    pub fn union(&self, other: &Mbr) -> Mbr {
        debug_assert_eq!(self.dims(), other.dims());
        Mbr {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Grows `self` in place to contain `other`.
    pub fn expand(&mut self, other: &Mbr) {
        debug_assert_eq!(self.dims(), other.dims());
        for j in 0..self.lo.len() {
            self.lo[j] = self.lo[j].min(other.lo[j]);
            self.hi[j] = self.hi[j].max(other.hi[j]);
        }
    }

    /// Area increase needed to also cover `other`.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Hyper-volume of the intersection with `other` (0 when disjoint).
    pub fn overlap(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        let mut v = 1.0;
        for j in 0..self.lo.len() {
            let lo = self.lo[j].max(other.lo[j]);
            let hi = self.hi[j].min(other.hi[j]);
            if lo > hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// `true` when `self` and `other` share at least one point.
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }

    /// `true` when `p` lies inside `self` (closed).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dims(), p.len());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((lo, hi), v)| lo <= v && v <= hi)
    }

    /// `true` when `other` lies entirely inside `self` (closed).
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((alo, ahi), (blo, bhi))| alo <= blo && bhi <= ahi)
    }

    /// Squared Euclidean distance from the origin to the nearest corner of
    /// the MBR — the BBS priority ("mindist"). In canonical min-space the
    /// nearest corner to the origin is `lo` when all coordinates are
    /// non-negative; in general it is the per-dimension clamp of 0.
    pub fn mindist_to_origin(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&lo, &hi)| {
                let c = 0.0f64.clamp(lo, hi);
                c * c
            })
            .sum()
    }

    /// L1 mindist variant (sum of clamped coordinates) — the standard BBS
    /// key of Papadias et al., monotone with dominance.
    pub fn mindist_l1(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&lo, &hi)| 0.0f64.clamp(lo, hi))
            .sum()
    }
}

/// `true` when skyline point `p` dominates every point that could lie in
/// `mbr` (i.e. `p ≺ lo`).
#[inline]
pub fn fully_dominates(p: &[f64], mbr: &Mbr) -> bool {
    dominates_min(p, mbr.lo())
}

/// `true` when skyline point `p` dominates the worst corner of `mbr` but
/// not its best corner — some, possibly not all, enclosed points are
/// dominated, so the subtree must be expanded (paper §4.1.2).
#[inline]
pub fn partially_dominates(p: &[f64], mbr: &Mbr) -> bool {
    dominates_min(p, mbr.hi()) && !dominates_min(p, mbr.lo())
}

/// Classification of the dominance relation between a point and an MBR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbrDominance {
    /// All enclosed points are dominated by `p`.
    Full,
    /// Only part of the region is dominated; the subtree must be visited.
    Partial,
    /// No enclosed point can be dominated by `p`.
    None,
}

/// Classifies `p` against `mbr` in one pass.
pub fn classify_dominance(p: &[f64], mbr: &Mbr) -> MbrDominance {
    match MinDominance.dom_cmp(p, mbr.hi()) {
        Dominance::Dominates => {
            if dominates_min(p, mbr.lo()) {
                MbrDominance::Full
            } else {
                MbrDominance::Partial
            }
        }
        // p == hi: a degenerate MBR equal to p is not dominated;
        // otherwise hi is not dominated so nothing below it is either…
        // except points strictly inside can still not exceed hi, so no
        // point is dominated in every case.
        _ => MbrDominance::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr2(lo: [f64; 2], hi: [f64; 2]) -> Mbr {
        Mbr::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn area_margin_center() {
        let m = mbr2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(m.area(), 6.0);
        assert_eq!(m.margin(), 5.0);
        assert_eq!(m.center(), vec![1.0, 1.5]);
    }

    #[test]
    fn union_and_expand_agree() {
        let a = mbr2([0.0, 0.0], [1.0, 1.0]);
        let b = mbr2([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert_eq!(u, mbr2([0.0, -1.0], [3.0, 1.0]));
        let mut c = a.clone();
        c.expand(&b);
        assert_eq!(c, u);
    }

    #[test]
    fn empty_is_union_identity() {
        let e = Mbr::empty(2);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let a = mbr2([0.0, 0.0], [1.0, 2.0]);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = mbr2([0.0, 0.0], [4.0, 4.0]);
        let b = mbr2([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn overlap_and_intersects() {
        let a = mbr2([0.0, 0.0], [2.0, 2.0]);
        let b = mbr2([1.0, 1.0], [3.0, 3.0]);
        let c = mbr2([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(a.overlap(&b), 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap(&c), 0.0);
        assert!(!a.intersects(&c));
        // Touching edges intersect with zero overlap.
        let d = mbr2([2.0, 0.0], [3.0, 2.0]);
        assert!(a.intersects(&d));
        assert_eq!(a.overlap(&d), 0.0);
    }

    #[test]
    fn containment() {
        let a = mbr2([0.0, 0.0], [2.0, 2.0]);
        assert!(a.contains_point(&[1.0, 2.0]));
        assert!(!a.contains_point(&[1.0, 2.1]));
        assert!(a.contains_mbr(&mbr2([0.5, 0.5], [1.5, 2.0])));
        assert!(!a.contains_mbr(&mbr2([0.5, 0.5], [2.5, 2.0])));
    }

    #[test]
    fn full_partial_none_dominance() {
        let m = mbr2([2.0, 2.0], [4.0, 4.0]);
        // Dominates lo → full.
        assert_eq!(classify_dominance(&[1.0, 1.0], &m), MbrDominance::Full);
        assert!(fully_dominates(&[1.0, 1.0], &m));
        // Dominates hi but not lo → partial.
        assert_eq!(classify_dominance(&[3.0, 1.0], &m), MbrDominance::Partial);
        assert!(partially_dominates(&[3.0, 1.0], &m));
        // Does not dominate hi → none.
        assert_eq!(classify_dominance(&[5.0, 1.0], &m), MbrDominance::None);
        assert!(!partially_dominates(&[5.0, 1.0], &m));
    }

    #[test]
    fn point_mbr_dominance_degenerates_to_point_dominance() {
        let p = Mbr::point(&[2.0, 2.0]);
        assert_eq!(classify_dominance(&[1.0, 1.0], &p), MbrDominance::Full);
        // Equal point: no dominance.
        assert_eq!(classify_dominance(&[2.0, 2.0], &p), MbrDominance::None);
        // Incomparable point: none.
        assert_eq!(classify_dominance(&[1.0, 3.0], &p), MbrDominance::None);
    }

    #[test]
    fn mindist_keys() {
        let m = mbr2([1.0, 2.0], [3.0, 4.0]);
        assert_eq!(m.mindist_to_origin(), 1.0 + 4.0);
        assert_eq!(m.mindist_l1(), 3.0);
        // MBR straddling the origin has mindist 0.
        let z = mbr2([-1.0, -1.0], [1.0, 1.0]);
        assert_eq!(z.mindist_to_origin(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lo must be <= hi")]
    fn inverted_corners_rejected() {
        let _ = Mbr::new(vec![1.0], vec![0.0]);
    }
}
