//! The aggregate R*-tree.
//!
//! Supports dynamic insertion with the full R* heuristics (overlap-aware
//! subtree choice, forced reinsertion, topological split) and
//! Sort-Tile-Recursive bulk loading, which the experiment harnesses use
//! to index multi-million-point data sets quickly.
//!
//! Every *logical* page access of a query goes through a caller-supplied
//! [`BufferPool`], reproducing the paper's
//! I/O accounting (4 KiB pages, LRU cache over 20 % of the blocks, 8 ms
//! per fault).

use skydiver_data::Dataset;

use crate::buffer::{BufferPool, DEFAULT_PAGE_SIZE};
use crate::mbr::Mbr;
use crate::node::{Child, Entry, Node, PageId};
use crate::split::r_star_split;

/// Fraction of entries evicted during R* forced reinsertion.
const REINSERT_FRACTION: f64 = 0.30;

/// An aggregate R*-tree over a fixed-dimensionality point set.
#[derive(Debug, Clone)]
pub struct RTree {
    dims: usize,
    max_entries: usize,
    min_entries: usize,
    nodes: Vec<Node>,
    root: PageId,
    len: u64,
}

impl RTree {
    /// An empty tree for `dims`-dimensional points with node capacities
    /// derived from `page_size` (see [`entry_capacity`]).
    pub fn new(dims: usize, page_size: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        let max_entries = entry_capacity(dims, page_size);
        let min_entries = (max_entries * 2 / 5).max(2);
        RTree {
            dims,
            max_entries,
            min_entries,
            nodes: vec![Node::new(0)],
            root: PageId(0),
            len: 0,
        }
    }

    /// An empty tree with the paper's 4 KiB pages.
    pub fn with_default_pages(dims: usize) -> Self {
        Self::new(dims, DEFAULT_PAGE_SIZE)
    }

    /// Bulk loads a dataset with Sort-Tile-Recursive packing.
    ///
    /// Point ids are the dataset indices. STR produces a tightly packed
    /// tree (≈100 % fill) whose locality `SigGen-IB` exploits.
    pub fn bulk_load(ds: &Dataset, page_size: usize) -> Self {
        let mut tree = Self::new(ds.dims(), page_size);
        if ds.is_empty() {
            return tree;
        }
        tree.len = ds.len() as u64;
        tree.nodes.clear();

        let mut entries: Vec<Entry> = ds
            .iter()
            .enumerate()
            .map(|(i, p)| Entry::point(p, i as u32))
            .collect();
        let mut level = 0u32;
        loop {
            let groups = str_group(entries, tree.max_entries, ds.dims(), 0);
            let mut parents = Vec::with_capacity(groups.len());
            for g in groups {
                let mbr = {
                    let mut m = Mbr::empty(ds.dims());
                    for e in &g {
                        m.expand(&e.mbr);
                    }
                    m
                };
                let count = g.iter().map(|e| e.count).sum();
                let pid = PageId(tree.nodes.len() as u32);
                tree.nodes.push(Node { level, entries: g });
                parents.push(Entry {
                    mbr,
                    count,
                    child: Child::Node(pid),
                });
            }
            if parents.len() == 1 {
                // The single group's node is the root.
                tree.root = match parents[0].child {
                    Child::Node(p) => p,
                    // lint: allow(R1) -- parent entries are built two lines up
                    // wrapping freshly written nodes, never points
                    Child::Point(_) => unreachable!("parents reference nodes"),
                };
                break;
            }
            entries = parents;
            level += 1;
        }
        tree
    }

    /// Inserts one point with R* heuristics (forced reinsert + split).
    pub fn insert(&mut self, p: &[f64], id: u32) {
        assert_eq!(p.len(), self.dims, "point dimensionality mismatch");
        let mut reinserted = vec![false; (self.height() + 2) as usize];
        self.insert_entry(Entry::point(p, id), 0, &mut reinserted);
        self.len += 1;
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Maximum entries per node (derived from the page size).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Number of pages (nodes) in the index.
    pub fn num_pages(&self) -> usize {
        self.nodes.len()
    }

    /// Root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Levels above the leaves of the root node.
    pub fn height(&self) -> u32 {
        self.nodes[self.root.index()].level
    }

    /// Reads a node *through the buffer pool* (counts a hit or fault).
    pub fn read_node<'a>(&'a self, pool: &mut BufferPool, pid: PageId) -> &'a Node {
        pool.access(pid.as_u64());
        &self.nodes[pid.index()]
    }

    /// Reads a node without I/O accounting (tests, maintenance).
    pub fn node(&self, pid: PageId) -> &Node {
        &self.nodes[pid.index()]
    }

    // ---- insertion machinery -------------------------------------------------

    fn child_node_id(e: &Entry) -> PageId {
        match e.child {
            Child::Node(p) => p,
            // lint: allow(R1) -- only called on internal-level entries,
            // whose children are nodes by the level invariant
            Child::Point(_) => unreachable!("internal entry must reference a node"),
        }
    }

    fn insert_entry(&mut self, e: Entry, level: u32, reinserted: &mut Vec<bool>) {
        // Descend from the root to the target level, recording the chosen
        // slot at each step so MBRs/counts can be maintained exactly.
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut cur = self.root;
        while self.nodes[cur.index()].level > level {
            let idx = self.choose_subtree(cur, &e.mbr);
            path.push((cur, idx));
            cur = Self::child_node_id(&self.nodes[cur.index()].entries[idx]);
        }
        for &(n, i) in &path {
            let slot = &mut self.nodes[n.index()].entries[i];
            slot.mbr.expand(&e.mbr);
            slot.count += e.count;
        }
        self.nodes[cur.index()].entries.push(e);
        self.fix_overflow(cur, path, reinserted);
    }

    /// R* ChooseSubtree: overlap-enlargement at the level just above the
    /// leaves, area-enlargement elsewhere (ties: smaller area).
    fn choose_subtree(&self, node_id: PageId, m: &Mbr) -> usize {
        let node = &self.nodes[node_id.index()];
        debug_assert!(!node.is_leaf());
        let entries = &node.entries;
        if node.level == 1 {
            // Children are leaves: minimise overlap enlargement.
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let enlarged = e.mbr.union(m);
                let mut before = 0.0;
                let mut after = 0.0;
                for (j, o) in entries.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    before += e.mbr.overlap(&o.mbr);
                    after += enlarged.overlap(&o.mbr);
                }
                let key = (after - before, e.mbr.enlargement(m), e.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0usize;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let key = (e.mbr.enlargement(m), e.mbr.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    fn fix_overflow(
        &mut self,
        mut cur: PageId,
        mut path: Vec<(PageId, usize)>,
        reinserted: &mut Vec<bool>,
    ) {
        while self.nodes[cur.index()].entries.len() > self.max_entries {
            let level = self.nodes[cur.index()].level as usize;
            if reinserted.len() <= level {
                reinserted.resize(level + 1, false);
            }
            if cur != self.root && !reinserted[level] {
                // Forced reinsertion: evict the entries farthest from the
                // node centre and insert them again at the same level.
                reinserted[level] = true;
                let victims = self.pick_reinsert_victims(cur);
                self.tighten_path(&path);
                for v in victims {
                    self.insert_entry(v, level as u32, reinserted);
                }
                return;
            }
            // Split.
            let node_level = self.nodes[cur.index()].level;
            let entries = std::mem::take(&mut self.nodes[cur.index()].entries);
            let (g1, g2) = r_star_split(entries, self.min_entries, self.dims);
            self.nodes[cur.index()].entries = g1;
            let sibling = PageId(self.nodes.len() as u32);
            self.nodes.push(Node {
                level: node_level,
                entries: g2,
            });

            let entry_for = |tree: &RTree, pid: PageId| {
                let n = &tree.nodes[pid.index()];
                Entry {
                    mbr: n.mbr(tree.dims),
                    count: n.count(),
                    child: Child::Node(pid),
                }
            };

            match path.pop() {
                Some((parent, pidx)) => {
                    let e_cur = entry_for(self, cur);
                    let e_sib = entry_for(self, sibling);
                    let pnode = &mut self.nodes[parent.index()];
                    pnode.entries[pidx] = e_cur;
                    pnode.entries.push(e_sib);
                    cur = parent;
                }
                None => {
                    // Root split: grow the tree by one level.
                    let e_cur = entry_for(self, cur);
                    let e_sib = entry_for(self, sibling);
                    let new_root = PageId(self.nodes.len() as u32);
                    self.nodes.push(Node {
                        level: node_level + 1,
                        entries: vec![e_cur, e_sib],
                    });
                    self.root = new_root;
                    return;
                }
            }
        }
    }

    /// Removes the `REINSERT_FRACTION` entries of `node` farthest from
    /// its centre, returning them ordered closest-first (R* "close
    /// reinsert").
    fn pick_reinsert_victims(&mut self, node_id: PageId) -> Vec<Entry> {
        let dims = self.dims;
        let node = &mut self.nodes[node_id.index()];
        let center = node.mbr(dims).center();
        let p = ((node.entries.len() as f64 * REINSERT_FRACTION).ceil() as usize).max(1);

        let dist2 = |e: &Entry| -> f64 {
            e.mbr
                .center()
                .iter()
                .zip(&center)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        let mut order: Vec<usize> = (0..node.entries.len()).collect();
        order.sort_by(|&a, &b| {
            dist2(&node.entries[b])
                .partial_cmp(&dist2(&node.entries[a]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let victim_set: std::collections::HashSet<usize> =
            order[..p].iter().copied().collect();

        let mut victims = Vec::with_capacity(p);
        let mut keep = Vec::with_capacity(node.entries.len() - p);
        for (i, e) in std::mem::take(&mut node.entries).into_iter().enumerate() {
            if victim_set.contains(&i) {
                victims.push(e);
            } else {
                keep.push(e);
            }
        }
        node.entries = keep;
        // Close reinsert: nearest victims first.
        victims.sort_by(|a, b| {
            dist2(a)
                .partial_cmp(&dist2(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        victims
    }

    /// Recomputes MBRs and counts exactly along a root→node path (after
    /// entries were removed below it).
    fn tighten_path(&mut self, path: &[(PageId, usize)]) {
        for &(n, i) in path.iter().rev() {
            let child = Self::child_node_id(&self.nodes[n.index()].entries[i]);
            let (mbr, count) = {
                let c = &self.nodes[child.index()];
                (c.mbr(self.dims), c.count())
            };
            let slot = &mut self.nodes[n.index()].entries[i];
            slot.mbr = mbr;
            slot.count = count;
        }
    }

    // ---- invariants ----------------------------------------------------------

    /// Exhaustively checks structural invariants; used by tests.
    ///
    /// Verifies: entry MBR/count consistency with child nodes, leaf level
    /// correctness, monotone levels, fill bounds (root exempt), and that
    /// exactly the ids `0..len` are present when `expect_dense_ids`.
    pub fn validate(&self, expect_dense_ids: bool) -> Result<(), String> {
        let mut seen: Vec<u32> = Vec::new();
        self.validate_node(self.root, None, &mut seen)?;
        if seen.len() as u64 != self.len {
            return Err(format!(
                "len {} but {} leaf entries reachable",
                self.len,
                seen.len()
            ));
        }
        if expect_dense_ids {
            seen.sort_unstable();
            for (i, &id) in seen.iter().enumerate() {
                if id != i as u32 {
                    return Err(format!("expected dense ids, missing {i}"));
                }
            }
        }
        Ok(())
    }

    fn validate_node(
        &self,
        pid: PageId,
        parent_entry: Option<&Entry>,
        seen: &mut Vec<u32>,
    ) -> Result<(), String> {
        let node = &self.nodes[pid.index()];
        if pid != self.root
            && node.entries.len() < self.min_entries {
                return Err(format!(
                    "node {pid:?} underfull: {} < {}",
                    node.entries.len(),
                    self.min_entries
                ));
            }
        if node.entries.len() > self.max_entries {
            return Err(format!(
                "node {pid:?} overfull: {} > {}",
                node.entries.len(),
                self.max_entries
            ));
        }
        if let Some(pe) = parent_entry {
            if (pe.mbr.clone(), pe.count) != (node.mbr(self.dims), node.count()) {
                return Err(format!("parent entry for {pid:?} is stale"));
            }
        }
        for e in &node.entries {
            match e.child {
                Child::Point(id) => {
                    if !node.is_leaf() {
                        return Err(format!("point entry in internal node {pid:?}"));
                    }
                    if e.count != 1 {
                        return Err("leaf entry count must be 1".into());
                    }
                    seen.push(id);
                }
                Child::Node(c) => {
                    if node.is_leaf() {
                        return Err(format!("node entry in leaf {pid:?}"));
                    }
                    let child = &self.nodes[c.index()];
                    if child.level + 1 != node.level {
                        return Err(format!("level mismatch under {pid:?}"));
                    }
                    self.validate_node(c, Some(e), seen)?;
                }
            }
        }
        Ok(())
    }
}

/// Entries that fit a page: MBR (2·d·8 bytes) + aggregate count (8) +
/// child pointer (8), with a 32-byte node header. At the paper's 4 KiB
/// pages this yields 50 entries for d=4 and 28 for d=8.
pub fn entry_capacity(dims: usize, page_size: usize) -> usize {
    let entry_bytes = 16 * dims + 16;
    ((page_size.saturating_sub(32)) / entry_bytes).max(4)
}

/// Recursive Sort-Tile groups for STR bulk loading.
fn str_group(mut entries: Vec<Entry>, cap: usize, dims: usize, dim: usize) -> Vec<Vec<Entry>> {
    if entries.len() <= cap {
        return vec![entries];
    }
    sort_by_center(&mut entries, dim);
    if dim + 1 == dims {
        // Balanced chunking: ⌈len/cap⌉ groups of near-equal size, so no
        // trailing group falls under the minimum fill.
        let groups = entries.len().div_ceil(cap);
        return balanced_partition(entries, groups);
    }
    let pages = entries.len().div_ceil(cap);
    let slabs = ((pages as f64)
        .powf(1.0 / (dims - dim) as f64)
        .ceil() as usize)
        .max(1);
    let mut out = Vec::new();
    for slab in balanced_partition(entries, slabs) {
        out.extend(str_group(slab, cap, dims, dim + 1));
    }
    out
}

/// Splits `entries` into `groups` contiguous runs whose sizes differ by
/// at most one.
fn balanced_partition(entries: Vec<Entry>, groups: usize) -> Vec<Vec<Entry>> {
    let len = entries.len();
    let groups = groups.clamp(1, len.max(1));
    let base = len / groups;
    let extra = len % groups;
    let mut out = Vec::with_capacity(groups);
    let mut it = entries.into_iter();
    for g in 0..groups {
        let take = base + usize::from(g < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

fn sort_by_center(entries: &mut [Entry], dim: usize) {
    entries.sort_by(|a, b| {
        let ca = a.mbr.lo()[dim] + a.mbr.hi()[dim];
        let cb = b.mbr.lo()[dim] + b.mbr.hi()[dim];
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::generators::independent;

    #[test]
    fn capacity_formula() {
        assert_eq!(entry_capacity(4, 4096), (4096 - 32) / 80);
        assert!(entry_capacity(100, 64) >= 4, "floor of 4 entries");
    }

    #[test]
    fn empty_tree() {
        let t = RTree::with_default_pages(3);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.validate(true).is_ok());
    }

    #[test]
    fn incremental_insert_keeps_invariants() {
        let ds = independent(2000, 3, 11);
        let mut t = RTree::new(3, 512); // small pages force many splits
        for (i, p) in ds.iter().enumerate() {
            t.insert(p, i as u32);
        }
        assert_eq!(t.len(), 2000);
        t.validate(true).unwrap();
        assert!(t.height() >= 2, "tree must have grown: h={}", t.height());
    }

    #[test]
    fn bulk_load_keeps_invariants() {
        let ds = independent(5000, 4, 12);
        let t = RTree::bulk_load(&ds, 4096);
        assert_eq!(t.len(), 5000);
        t.validate(true).unwrap();
    }

    #[test]
    fn bulk_load_tiny_dataset_is_single_leaf() {
        let ds = independent(5, 2, 1);
        let t = RTree::bulk_load(&ds, 4096);
        assert_eq!(t.height(), 0);
        assert_eq!(t.num_pages(), 1);
        t.validate(true).unwrap();
    }

    #[test]
    fn bulk_load_empty_dataset() {
        let ds = Dataset::new(2);
        let t = RTree::bulk_load(&ds, 4096);
        assert!(t.is_empty());
        t.validate(true).unwrap();
    }

    #[test]
    fn read_node_counts_io() {
        let ds = independent(1000, 2, 3);
        let t = RTree::bulk_load(&ds, 512);
        let mut pool = BufferPool::new(1);
        let root = t.read_node(&mut pool, t.root());
        assert!(!root.entries.is_empty());
        assert_eq!(pool.stats().faults, 1);
        t.read_node(&mut pool, t.root());
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn str_packing_is_tight() {
        let ds = independent(10_000, 2, 5);
        let t = RTree::bulk_load(&ds, 4096);
        // STR should pack leaves to ~full: pages ≈ n/cap (+ internals).
        let cap = t.max_entries();
        let min_leaves = 10_000usize.div_ceil(cap);
        assert!(
            t.num_pages() < min_leaves * 2,
            "too many pages: {} vs optimal {min_leaves}",
            t.num_pages()
        );
    }
}
