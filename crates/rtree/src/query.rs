//! Aggregate and range queries over the R*-tree.
//!
//! These are the "range queries of large volume" that make the
//! Simple-Greedy baseline expensive (paper §3.2/§4.2): computing the
//! Jaccard distance of two skyline points exactly needs `|Γ(p)|`,
//! `|Γ(q)|` and `|Γ(p) ∩ Γ(q)|`, each an aggregate count over a
//! dominance region. The aggregate counts let fully-covered subtrees be
//! answered without descending, but partially-covered ones still incur
//! page reads.

use crate::buffer::BufferPool;
use crate::mbr::{classify_dominance, Mbr, MbrDominance};
use crate::node::{Child, PageId};
use crate::tree::RTree;

impl RTree {
    /// Counts points **strictly dominated** by `p` (`|Γ(p)|`), charging
    /// page reads to `pool`.
    pub fn count_dominated(&self, pool: &mut BufferPool, p: &[f64]) -> u64 {
        assert_eq!(p.len(), self.dims(), "query dimensionality mismatch");
        if self.is_empty() {
            return 0;
        }
        let mut total = 0u64;
        let mut stack: Vec<PageId> = vec![self.root()];
        while let Some(pid) = stack.pop() {
            let node = self.read_node(pool, pid);
            for e in &node.entries {
                match classify_dominance(p, &e.mbr) {
                    MbrDominance::Full => total += e.count,
                    MbrDominance::None => {}
                    MbrDominance::Partial => match e.child {
                        Child::Node(c) => stack.push(c),
                        // lint: allow(R1) -- a degenerate (point) MBR is never Partial
                        Child::Point(_) => unreachable!("point MBRs are full or none"),
                    },
                }
            }
        }
        total
    }

    /// Counts points in the **closed corner region** `{x : x ≥ corner}`
    /// (component-wise). For two incomparable skyline points `p, q`, the
    /// corner `max(p,q)` gives exactly `|Γ(p) ∩ Γ(q)|` — every point in
    /// the region differs from both `p` and `q` on the dimension where
    /// the other is better, so weak containment implies strict dominance
    /// by both.
    pub fn count_weak_region(&self, pool: &mut BufferPool, corner: &[f64]) -> u64 {
        assert_eq!(corner.len(), self.dims(), "query dimensionality mismatch");
        if self.is_empty() {
            return 0;
        }
        let mut total = 0u64;
        let mut stack: Vec<PageId> = vec![self.root()];
        while let Some(pid) = stack.pop() {
            let node = self.read_node(pool, pid);
            for e in &node.entries {
                if weak_contains(corner, e.mbr.lo()) {
                    total += e.count;
                } else if weak_contains(corner, e.mbr.hi()) {
                    match e.child {
                        Child::Node(c) => stack.push(c),
                        // lint: allow(R1) -- a point MBR has lo == hi: containing
                        // hi but not lo is impossible
                        Child::Point(_) => unreachable!("degenerate MBR: lo == hi"),
                    }
                }
            }
        }
        total
    }

    /// Ids of points inside the closed rectangle `[lo, hi]`.
    pub fn range_ids(&self, pool: &mut BufferPool, lo: &[f64], hi: &[f64]) -> Vec<u32> {
        assert_eq!(lo.len(), self.dims());
        assert_eq!(hi.len(), self.dims());
        let query = Mbr::new(lo.to_vec(), hi.to_vec());
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack: Vec<PageId> = vec![self.root()];
        while let Some(pid) = stack.pop() {
            let node = self.read_node(pool, pid);
            for e in &node.entries {
                if !query.intersects(&e.mbr) {
                    continue;
                }
                match e.child {
                    Child::Point(id) => out.push(id),
                    Child::Node(c) => stack.push(c),
                }
            }
        }
        out
    }

    /// Ids of points strictly dominated by `p` (the materialised `Γ(p)`;
    /// used by exact baselines and tests).
    pub fn dominated_ids(&self, pool: &mut BufferPool, p: &[f64]) -> Vec<u32> {
        assert_eq!(p.len(), self.dims());
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack: Vec<PageId> = vec![self.root()];
        while let Some(pid) = stack.pop() {
            let node = self.read_node(pool, pid);
            for e in &node.entries {
                match classify_dominance(p, &e.mbr) {
                    MbrDominance::None => {}
                    MbrDominance::Full | MbrDominance::Partial => match e.child {
                        Child::Point(id) => out.push(id),
                        Child::Node(c) => stack.push(c),
                    },
                }
            }
        }
        out
    }
}

/// `corner ≤ x` component-wise (weak containment in the corner region).
#[inline]
fn weak_contains(corner: &[f64], x: &[f64]) -> bool {
    corner.iter().zip(x).all(|(c, v)| c <= v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::dominance::dominates_min;
    use skydiver_data::generators::{anticorrelated, independent};
    use skydiver_data::Dataset;

    fn big_pool() -> BufferPool {
        BufferPool::new(1 << 20)
    }

    fn scan_dominated(ds: &Dataset, p: &[f64]) -> u64 {
        ds.iter().filter(|q| dominates_min(p, q)).count() as u64
    }

    #[test]
    fn count_dominated_matches_scan() {
        let ds = independent(3000, 3, 21);
        let t = RTree::bulk_load(&ds, 1024);
        let mut pool = big_pool();
        for i in (0..3000).step_by(157) {
            let p = ds.point(i);
            assert_eq!(t.count_dominated(&mut pool, p), scan_dominated(&ds, p));
        }
        // Also from an external query point.
        assert_eq!(
            t.count_dominated(&mut pool, &[0.0, 0.0, 0.0]),
            3000,
            "origin dominates everything"
        );
    }

    #[test]
    fn count_dominated_excludes_equal_point() {
        let ds = Dataset::from_rows(2, &[[0.5, 0.5], [0.5, 0.5], [0.7, 0.7]]);
        let t = RTree::bulk_load(&ds, 4096);
        let mut pool = big_pool();
        // The duplicate of the query point is NOT dominated.
        assert_eq!(t.count_dominated(&mut pool, &[0.5, 0.5]), 1);
    }

    #[test]
    fn weak_region_matches_scan() {
        let ds = anticorrelated(2500, 3, 22);
        let t = RTree::bulk_load(&ds, 1024);
        let mut pool = big_pool();
        for corner in [[0.3, 0.3, 0.3], [0.5, 0.1, 0.6], [0.9, 0.9, 0.9]] {
            let expect = ds
                .iter()
                .filter(|x| corner.iter().zip(*x).all(|(c, v)| c <= v))
                .count() as u64;
            assert_eq!(t.count_weak_region(&mut pool, &corner), expect);
        }
    }

    #[test]
    fn pair_intersection_via_weak_region() {
        // For incomparable p, q: |Γ(p) ∩ Γ(q)| == weak region at max(p,q).
        let ds = independent(4000, 2, 23);
        let t = RTree::bulk_load(&ds, 1024);
        let mut pool = big_pool();
        let p = [0.2, 0.6];
        let q = [0.5, 0.3];
        let corner = [0.5, 0.6];
        let expect = ds
            .iter()
            .filter(|x| dominates_min(&p, x) && dominates_min(&q, x))
            .count() as u64;
        assert_eq!(t.count_weak_region(&mut pool, &corner), expect);
    }

    #[test]
    fn range_ids_matches_scan() {
        let ds = independent(2000, 2, 24);
        let t = RTree::bulk_load(&ds, 512);
        let mut pool = big_pool();
        let (lo, hi) = ([0.25, 0.25], [0.5, 0.75]);
        let mut got = t.range_ids(&mut pool, &lo, &hi);
        got.sort_unstable();
        let expect: Vec<u32> = ds
            .iter()
            .enumerate()
            .filter(|(_, p)| p[0] >= 0.25 && p[0] <= 0.5 && p[1] >= 0.25 && p[1] <= 0.75)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn dominated_ids_matches_scan() {
        let ds = independent(1500, 3, 25);
        let t = RTree::bulk_load(&ds, 1024);
        let mut pool = big_pool();
        let p = ds.point(3).to_vec();
        let mut got = t.dominated_ids(&mut pool, &p);
        got.sort_unstable();
        let expect: Vec<u32> = ds
            .iter()
            .enumerate()
            .filter(|(_, q)| dominates_min(&p, q))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn aggregate_counts_prune_io() {
        // Counting from the origin must answer from the root alone:
        // every root entry is fully dominated.
        let ds = independent(5000, 3, 26);
        let t = RTree::bulk_load(&ds, 1024);
        let mut pool = big_pool();
        pool.reset_stats();
        let c = t.count_dominated(&mut pool, &[-1.0, -1.0, -1.0]);
        assert_eq!(c, 5000);
        assert_eq!(
            pool.stats().faults + pool.stats().hits,
            1,
            "only the root page may be touched"
        );
    }

    #[test]
    fn queries_on_empty_tree() {
        let t = RTree::with_default_pages(2);
        let mut pool = big_pool();
        assert_eq!(t.count_dominated(&mut pool, &[0.0, 0.0]), 0);
        assert_eq!(t.count_weak_region(&mut pool, &[0.0, 0.0]), 0);
        assert!(t.range_ids(&mut pool, &[0.0, 0.0], &[1.0, 1.0]).is_empty());
    }
}
