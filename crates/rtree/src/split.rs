//! R*-tree node split (Beckmann et al.'s topological split).
//!
//! The split picks the axis minimising the summed margins of all
//! candidate distributions, then the distribution on that axis with the
//! least overlap between the two groups (ties: least total area).

use crate::mbr::Mbr;
use crate::node::Entry;

/// Splits `entries` (an overflowing node's slots, `len > max`) into two
/// groups, each with at least `min_entries` slots.
pub fn r_star_split(entries: Vec<Entry>, min_entries: usize, dims: usize) -> (Vec<Entry>, Vec<Entry>) {
    debug_assert!(entries.len() >= 2 * min_entries, "not enough entries to split");

    // Choose the split axis: minimise the margin sum over all candidate
    // distributions of both sortings of each axis.
    let mut best_axis = 0usize;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dims {
        let mut margin = 0.0;
        for by_hi in [false, true] {
            let order = sorted_order(&entries, axis, by_hi);
            for k in split_points(entries.len(), min_entries) {
                let (m1, m2) = group_mbrs(&entries, &order, k, dims);
                margin += m1.margin() + m2.margin();
            }
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }

    // Choose the distribution on that axis: minimise overlap, tie-break
    // on total area.
    let mut best: Option<(f64, f64, Vec<usize>, usize)> = None;
    for by_hi in [false, true] {
        let order = sorted_order(&entries, best_axis, by_hi);
        for k in split_points(entries.len(), min_entries) {
            let (m1, m2) = group_mbrs(&entries, &order, k, dims);
            let overlap = m1.overlap(&m2);
            let area = m1.area() + m2.area();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => {
                    overlap < *bo || (overlap == *bo && area < *ba)
                }
            };
            if better {
                best = Some((overlap, area, order.clone(), k));
            }
        }
    }

    // lint: allow(R1) -- split_points is non-empty for any overflowing
    // node (len > 2 * min_entries), so the scan always yields a best
    let (_, _, order, k) = best.expect("at least one distribution exists");
    distribute(entries, &order, k)
}

/// Valid first-group sizes: `min ..= len - min`.
fn split_points(len: usize, min_entries: usize) -> std::ops::RangeInclusive<usize> {
    min_entries..=(len - min_entries)
}

/// Index permutation of `entries` sorted along `axis` by `(lo, hi)` or
/// `(hi, lo)`.
fn sorted_order(entries: &[Entry], axis: usize, by_hi: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let (ka, kb) = if by_hi {
            (
                (entries[a].mbr.hi()[axis], entries[a].mbr.lo()[axis]),
                (entries[b].mbr.hi()[axis], entries[b].mbr.lo()[axis]),
            )
        } else {
            (
                (entries[a].mbr.lo()[axis], entries[a].mbr.hi()[axis]),
                (entries[b].mbr.lo()[axis], entries[b].mbr.hi()[axis]),
            )
        };
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

/// Bounding boxes of the first `k` and remaining entries under `order`.
fn group_mbrs(entries: &[Entry], order: &[usize], k: usize, dims: usize) -> (Mbr, Mbr) {
    let mut m1 = Mbr::empty(dims);
    let mut m2 = Mbr::empty(dims);
    for (pos, &i) in order.iter().enumerate() {
        if pos < k {
            m1.expand(&entries[i].mbr);
        } else {
            m2.expand(&entries[i].mbr);
        }
    }
    (m1, m2)
}

/// Materialises the two groups from the chosen order/split point.
fn distribute(entries: Vec<Entry>, order: &[usize], k: usize) -> (Vec<Entry>, Vec<Entry>) {
    let mut slots: Vec<Option<Entry>> = entries.into_iter().map(Some).collect();
    let mut g1 = Vec::with_capacity(k);
    let mut g2 = Vec::with_capacity(order.len() - k);
    for (pos, &i) in order.iter().enumerate() {
        // lint: allow(R1) -- `order` is a permutation of 0..len, so every
        // slot is taken exactly once
        let e = slots[i].take().expect("each index used once");
        if pos < k {
            g1.push(e);
        } else {
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Child;
    use crate::node::Entry;

    fn pt(x: f64, y: f64, id: u32) -> Entry {
        Entry::point(&[x, y], id)
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clear clusters on the x axis must be split between them.
        let entries = vec![
            pt(0.0, 0.0, 0),
            pt(0.1, 0.2, 1),
            pt(0.2, 0.1, 2),
            pt(9.0, 0.0, 3),
            pt(9.1, 0.2, 4),
            pt(9.2, 0.1, 5),
        ];
        let (g1, g2) = r_star_split(entries, 2, 2);
        assert_eq!(g1.len() + g2.len(), 6);
        let xs1: Vec<f64> = g1.iter().map(|e| e.mbr.lo()[0]).collect();
        let xs2: Vec<f64> = g2.iter().map(|e| e.mbr.lo()[0]).collect();
        let max1 = xs1.iter().cloned().fold(f64::MIN, f64::max);
        let min2 = xs2.iter().cloned().fold(f64::MAX, f64::min);
        // One group entirely left of the other (either orientation).
        assert!(max1 < min2 || xs2.iter().cloned().fold(f64::MIN, f64::max) < xs1.iter().cloned().fold(f64::MAX, f64::min));
    }

    #[test]
    fn split_respects_min_entries() {
        let entries: Vec<Entry> = (0..10).map(|i| pt(i as f64, 0.0, i as u32)).collect();
        let (g1, g2) = r_star_split(entries, 4, 2);
        assert!(g1.len() >= 4 && g2.len() >= 4);
        assert_eq!(g1.len() + g2.len(), 10);
    }

    #[test]
    fn split_preserves_all_children() {
        let entries: Vec<Entry> = (0..9).map(|i| pt((i * 7 % 9) as f64, (i * 4 % 9) as f64, i as u32)).collect();
        let (g1, g2) = r_star_split(entries, 3, 2);
        let mut ids: Vec<u32> = g1
            .iter()
            .chain(&g2)
            .map(|e| match e.child {
                Child::Point(i) => i,
                _ => unreachable!(),
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..9).collect::<Vec<u32>>());
    }
}
