//! The k-max-coverage baseline (Lin et al., "Selecting Stars: the k most
//! representative skyline operator").
//!
//! Selects `k` skyline points maximising the number of *distinct*
//! non-skyline points dominated by at least one of them. Table 1 of the
//! paper contrasts this objective with k-dispersion: coverage picks
//! points with heavily overlapping dominance regions (low diversity),
//! while dispersion keeps coverage "still high enough". The greedy
//! algorithm is the standard `1 − 1/e` approximation for max-coverage
//! (and, per the paper's Lemma 1 remark, better for this finite-VC set
//! system).

use crate::bitset::BitSet;
use crate::error::{Result, SkyDiverError};
use crate::gamma::GammaSets;

/// Greedy k-max-coverage over materialised Γ sets. Returns the selected
/// skyline indices in selection order (ties: lower index).
pub fn greedy_max_coverage(gamma: &GammaSets, k: usize) -> Result<Vec<usize>> {
    let m = gamma.len();
    if m == 0 {
        return Err(SkyDiverError::EmptySkyline);
    }
    if k < 2 {
        return Err(SkyDiverError::KTooSmall { k });
    }
    if k > m {
        return Err(SkyDiverError::KExceedsSkyline { k, m });
    }
    let mut covered = BitSet::new(gamma.rows());
    let mut taken = vec![false; m];
    let mut selected = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (j, &already) in taken.iter().enumerate() {
            if already {
                continue;
            }
            let gain = covered.new_bits_from(gamma.set(j));
            let better = match best {
                None => true,
                Some((bg, _)) => gain > bg,
            };
            if better {
                best = Some((gain, j));
            }
        }
        // lint: allow(R1) -- the scan visits the >= 1 untaken candidates
        // (k <= m is validated at entry), so a best always exists
        let (_, j) = best.expect("k <= m");
        taken[j] = true;
        covered.union_with(gamma.set(j));
        selected.push(j);
    }
    Ok(selected)
}

/// Fraction of all dominated points covered by `selection`
/// (the "coverage" column of Table 1). Returns 1.0 when nothing is
/// dominated at all.
pub fn coverage_fraction(gamma: &GammaSets, selection: &[usize]) -> f64 {
    let total = gamma.total_dominated();
    if total == 0 {
        return 1.0;
    }
    gamma.union_coverage(selection) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 instance (see `gamma.rs`): coverage with
    /// k = 2 returns (b, c); SkyDiver returns (c, a).
    fn figure1() -> GammaSets {
        GammaSets::from_edges(
            11,
            &[
                vec![0],
                vec![0, 1, 2, 3, 4, 5],
                vec![3, 4, 5, 6, 7, 8, 9, 10],
                vec![6, 7, 8, 9],
            ],
        )
    }

    #[test]
    fn figure1_coverage_picks_b_and_c() {
        let g = figure1();
        let sel = greedy_max_coverage(&g, 2).unwrap();
        // c (idx 2, |Γ|=8) first, then b (idx 1, gain 6 vs a's 1, d's 0).
        assert_eq!(sel, vec![2, 1]);
        assert!((coverage_fraction(&g, &sel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn figure1_dispersion_prefers_c_and_a() {
        // Companion check to the intro example: the dispersion pick
        // (c, a) has Jd = 1, while coverage's (b, c) overlap heavily.
        use crate::dispersion::{select_diverse, SeedRule, TieBreak};
        use crate::diversity::ExactJaccardDistance;
        let g = figure1();
        let scores = g.scores();
        let mut dist = ExactJaccardDistance::new(&g);
        let sel = select_diverse(
            &mut dist,
            &scores,
            2,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .unwrap();
        assert_eq!(sel, vec![2, 0], "SkyDiver returns (c, a)");
        assert_eq!(g.jaccard_distance(sel[0], sel[1]), 1.0);
        // Coverage's pair is far less diverse.
        assert!(g.jaccard_distance(2, 1) < 1.0);
    }

    #[test]
    fn greedy_gain_is_marginal_not_absolute() {
        // Second pick must maximise *new* coverage, not |Γ|.
        let g = GammaSets::from_edges(
            10,
            &[
                vec![0, 1, 2, 3, 4, 5],    // big
                vec![0, 1, 2, 3, 4],       // big but subsumed
                vec![6, 7],                // small but disjoint
            ],
        );
        let sel = greedy_max_coverage(&g, 2).unwrap();
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn coverage_fraction_partial() {
        let g = figure1();
        // a alone covers 1 of the 11 dominated points.
        assert!((coverage_fraction(&g, &[0]) - 1.0 / 11.0).abs() < 1e-12);
        assert_eq!(coverage_fraction(&g, &[]), 0.0);
    }

    #[test]
    fn validation_errors() {
        let g = figure1();
        assert!(matches!(
            greedy_max_coverage(&g, 1),
            Err(SkyDiverError::KTooSmall { .. })
        ));
        assert!(matches!(
            greedy_max_coverage(&g, 9),
            Err(SkyDiverError::KExceedsSkyline { .. })
        ));
    }
}
