//! Canonicalisation into min-space.
//!
//! The paper works "w.l.o.g. \[where\] smaller values are preferred"; the
//! public API accepts per-attribute [`Preference`]s and negates maximised
//! attributes once up front so every downstream component (skyline,
//! R-tree, fingerprints) can assume minimisation.

use std::borrow::Cow;

use skydiver_data::{Dataset, Preference};

use crate::error::{Result, SkyDiverError};

/// Returns a dataset in canonical min-space: maximised attributes are
/// negated; an all-[`Preference::Min`] input is borrowed unchanged.
///
/// Rejects NaN and ±∞ coordinates with
/// [`SkyDiverError::NonFiniteCoordinate`]: dominance comparisons (and
/// the downstream R-tree geometry) are only defined over finite values,
/// and `dom_cmp` implementations assume finite inputs. Validating once
/// here keeps the hot loops free of per-comparison checks.
pub fn canonicalise<'a>(ds: &'a Dataset, prefs: &[Preference]) -> Result<Cow<'a, Dataset>> {
    if prefs.len() != ds.dims() {
        return Err(SkyDiverError::DimsMismatch {
            data: ds.dims(),
            prefs: prefs.len(),
        });
    }
    for (row, p) in ds.iter().enumerate() {
        for (dim, &v) in p.iter().enumerate() {
            if !v.is_finite() {
                return Err(SkyDiverError::NonFiniteCoordinate { row, dim });
            }
        }
    }
    if prefs.iter().all(|&p| p == Preference::Min) {
        return Ok(Cow::Borrowed(ds));
    }
    let mut out = Dataset::with_capacity(ds.dims(), ds.len());
    let mut row = vec![0.0f64; ds.dims()];
    for p in ds.iter() {
        for (j, (&v, &pref)) in p.iter().zip(prefs).enumerate() {
            row[j] = pref.canonicalise(v);
        }
        out.push(&row);
    }
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::dominance::{dominates_min, MinMaxDominance};
    use skydiver_data::DominanceOrd;

    #[test]
    fn all_min_is_borrowed() {
        let ds = Dataset::from_rows(2, &[[1.0, 2.0]]);
        let c = canonicalise(&ds, &Preference::all_min(2)).unwrap();
        assert!(matches!(c, Cow::Borrowed(_)));
    }

    #[test]
    fn max_dims_are_negated() {
        let ds = Dataset::from_rows(2, &[[10.0, 0.9], [20.0, 0.5]]);
        let prefs = vec![Preference::Min, Preference::Max];
        let c = canonicalise(&ds, &prefs).unwrap();
        assert_eq!(c.point(0), &[10.0, -0.9]);
        // Dominance in canonical space matches MinMaxDominance on raw data.
        let ord = MinMaxDominance::new(prefs);
        assert_eq!(
            ord.dominates(ds.point(0), ds.point(1)),
            dominates_min(c.point(0), c.point(1))
        );
    }

    #[test]
    fn non_finite_coordinates_rejected() {
        // NaN in the borrowed (all-Min) path.
        let ds = Dataset::from_rows(2, &[[1.0, 2.0], [f64::NAN, 0.5]]);
        assert_eq!(
            canonicalise(&ds, &Preference::all_min(2)).unwrap_err(),
            SkyDiverError::NonFiniteCoordinate { row: 1, dim: 0 }
        );
        // Infinity in the owned (negating) path.
        let ds = Dataset::from_rows(2, &[[1.0, f64::INFINITY]]);
        let prefs = vec![Preference::Min, Preference::Max];
        assert_eq!(
            canonicalise(&ds, &prefs).unwrap_err(),
            SkyDiverError::NonFiniteCoordinate { row: 0, dim: 1 }
        );
        // Negative infinity too.
        let ds = Dataset::from_rows(1, &[[f64::NEG_INFINITY]]);
        assert!(matches!(
            canonicalise(&ds, &Preference::all_min(1)),
            Err(SkyDiverError::NonFiniteCoordinate { row: 0, dim: 0 })
        ));
    }

    #[test]
    fn dims_mismatch_rejected() {
        let ds = Dataset::from_rows(2, &[[1.0, 2.0]]);
        assert_eq!(
            canonicalise(&ds, &Preference::all_min(3)).unwrap_err(),
            SkyDiverError::DimsMismatch { data: 2, prefs: 3 }
        );
    }
}
