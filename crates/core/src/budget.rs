//! Resilient execution: run budgets, cooperative cancellation and
//! degradation reporting.
//!
//! A production deployment cannot let one `SkyDiver::run` call hold a
//! worker hostage: fingerprinting is `O(n·m)` dominance tests and the
//! greedy selection is `O(k·m)` distance evaluations per round, both
//! unbounded in the face of adversarial inputs. This module provides
//!
//! * [`RunBudget`] — a declarative ceiling on wall-clock time, phase-2
//!   representation memory (signatures / LSH bit-vectors) and dominance
//!   tests,
//! * [`CancelToken`] — a shareable cooperative cancellation flag that
//!   another thread (an admission controller, a client disconnect
//!   handler) can trip at any time,
//! * [`ExecContext`] — the internal carrier threaded through
//!   `sig_gen_if` / `sig_gen_parallel` / `sig_gen_ib` and each round of
//!   `select_diverse`,
//! * [`Degradation`] — the report attached to every
//!   [`DiverseResult`](crate::DiverseResult) describing what (if
//!   anything) was curtailed or substituted.
//!
//! The key design point is that a tripped budget is **not an error**:
//! the paper's greedy `SelectDiverseSet` is incremental — a prefix of
//! the selection is itself a valid diverse set for a smaller `k` — so
//! an interrupted run returns a partial result plus a report, never
//! throwing away completed work.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cooperative cancellation flag.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
/// Budgeted loops poll [`CancelToken::is_cancelled`] at phase
/// checkpoints, so cancellation latency is one checkpoint interval, not
/// instantaneous.
///
/// ```
/// use skydiver_core::CancelToken;
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    /// When `Some`-like (`fuse_limit > 0`), the token self-cancels after
    /// that many polls — a deterministic trigger for tests and fault
    /// injection.
    fuse_limit: u64,
    polls: AtomicU64,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that trips itself after exactly `polls` calls to
    /// [`CancelToken::is_cancelled`]. Deterministic — the tool for
    /// driving interruption paths in tests without racing wall-clock
    /// time.
    pub fn after_polls(polls: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                fuse_limit: polls.max(1),
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// Trips the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Polls the token. Each call counts toward the poll counter (and,
    /// for fused tokens from [`CancelToken::after_polls`], the fuse).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let polled = self.inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.inner.fuse_limit > 0 && polled >= self.inner.fuse_limit {
            self.cancel();
            return true;
        }
        false
    }

    /// How many times [`CancelToken::is_cancelled`] has been called.
    /// Useful to calibrate a deterministic [`CancelToken::after_polls`]
    /// fuse from a reference run.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }
}

/// Declarative resource ceilings for one pipeline run.
///
/// All limits are optional; [`RunBudget::none`] (the default) never
/// trips. Budgets compose: the first exhausted limit stops the run.
///
/// ```
/// use std::time::Duration;
/// use skydiver_core::RunBudget;
/// let budget = RunBudget::none()
///     .with_deadline(Duration::from_millis(250))
///     .with_max_memory_bytes(64 << 20)
///     .with_max_dominance_tests(50_000_000);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    pub(crate) deadline: Option<Duration>,
    pub(crate) max_memory_bytes: Option<usize>,
    pub(crate) max_dominance_tests: Option<u64>,
    pub(crate) cancel: Option<CancelToken>,
}

impl RunBudget {
    /// A budget with no limits (never trips).
    pub fn none() -> Self {
        Self::default()
    }

    /// Caps wall-clock time, measured from the start of the run.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the bytes held by the phase-2 representation (the `t × m`
    /// signature matrix, or the LSH bit-vectors). When the configured
    /// signature size would exceed the cap, the run *degrades* — it
    /// shrinks `t` (recorded in the [`Degradation`] report) rather than
    /// failing, unless even `t = 1` does not fit.
    pub fn with_max_memory_bytes(mut self, bytes: usize) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Caps the number of dominance tests performed by the
    /// fingerprinting phase.
    pub fn with_max_dominance_tests(mut self, tests: u64) -> Self {
        self.max_dominance_tests = Some(tests);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// `true` when no limit or token is set (checks are free).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_memory_bytes.is_none()
            && self.max_dominance_tests.is_none()
            && self.cancel.is_none()
    }

    /// The configured memory ceiling, if any.
    pub fn max_memory_bytes(&self) -> Option<usize> {
        self.max_memory_bytes
    }
}

/// The pipeline phase at which an interruption occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPhase {
    /// Preference canonicalisation and input validation.
    Canonicalise,
    /// Skyline computation (SFS or BBS).
    Skyline,
    /// MinHash fingerprinting (`SigGen-IF` / `SigGen-IB` / parallel).
    Fingerprint,
    /// LSH index construction.
    Lsh,
    /// Greedy max–min selection.
    Selection,
}

impl std::fmt::Display for ExecPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecPhase::Canonicalise => "canonicalise",
            ExecPhase::Skyline => "skyline",
            ExecPhase::Fingerprint => "fingerprint",
            ExecPhase::Lsh => "lsh-build",
            ExecPhase::Selection => "selection",
        })
    }
}

/// Why a budgeted run stopped early.
#[derive(Debug, Clone, PartialEq)]
pub enum StopReason {
    /// The [`CancelToken`] was tripped.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// Time elapsed when the overrun was detected.
        elapsed: Duration,
    },
    /// The dominance-test ceiling was reached.
    DominanceBudgetExhausted {
        /// Tests performed when the ceiling was hit.
        used: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// The memory ceiling cannot accommodate even a minimal
    /// representation.
    MemoryBudgetExhausted {
        /// Bytes the minimal configuration would need.
        needed: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// A distributed fold could not reach any owner of a shard (every
    /// replica failed or missed its deadline); the fingerprint is a
    /// partial merge of the shards that did answer.
    ShardUnavailable {
        /// Index of the first shard with no reachable owner.
        shard: usize,
    },
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::DeadlineExceeded { elapsed } => {
                write!(
                    f,
                    "deadline exceeded after {:.1} ms",
                    elapsed.as_secs_f64() * 1e3
                )
            }
            StopReason::DominanceBudgetExhausted { used, limit } => {
                write!(f, "dominance-test budget exhausted ({used} of {limit})")
            }
            StopReason::MemoryBudgetExhausted { needed, limit } => {
                write!(
                    f,
                    "memory budget exhausted (need {needed} B, limit {limit} B)"
                )
            }
            StopReason::ShardUnavailable { shard } => {
                write!(f, "shard {shard} unavailable (no reachable owner)")
            }
        }
    }
}

/// A budget trip: which phase stopped and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Interrupt {
    /// Phase executing when the budget tripped.
    pub phase: ExecPhase,
    /// The exhausted limit.
    pub reason: StopReason,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} during {}", self.reason, self.phase)
    }
}

/// One graceful-degradation step taken during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationEvent {
    /// The signature size `t` was reduced to fit the memory ceiling.
    SignatureSizeReduced {
        /// Configured signature size.
        from: usize,
        /// Size actually used.
        to: usize,
    },
    /// The LSH buckets-per-zone `B` was reduced to fit the memory
    /// ceiling.
    LshBucketsReduced {
        /// Configured buckets per zone.
        from: usize,
        /// Buckets actually used.
        to: usize,
    },
    /// Fingerprinting stopped before scanning every data row; the
    /// signature matrix (and the domination scores) cover only a prefix
    /// of the data.
    FingerprintCurtailed {
        /// Rows folded into the signatures before the stop.
        rows_scanned: usize,
        /// Total data rows.
        rows_total: usize,
    },
    /// Selection stopped before reaching `k`; the returned prefix is
    /// itself the greedy diverse set for the smaller size.
    SelectionCurtailed {
        /// Points selected before the stop.
        selected: usize,
        /// The requested `k`.
        requested: usize,
    },
    /// The index-based path failed and the run fell back to the
    /// index-free pipeline.
    IndexFreeFallback {
        /// Human-readable cause (e.g. the page-read failure).
        cause: String,
    },
    /// The requested LSH configuration admitted no usable banding and
    /// the run fell back to MinHash selection (opt-in).
    MinHashFallback {
        /// Human-readable cause.
        cause: String,
    },
}

impl std::fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationEvent::SignatureSizeReduced { from, to } => {
                write!(
                    f,
                    "signature size reduced {from} → {to} to fit memory budget"
                )
            }
            DegradationEvent::LshBucketsReduced { from, to } => {
                write!(f, "LSH buckets reduced {from} → {to} to fit memory budget")
            }
            DegradationEvent::FingerprintCurtailed {
                rows_scanned,
                rows_total,
            } => {
                write!(
                    f,
                    "fingerprinting curtailed at {rows_scanned} of {rows_total} rows"
                )
            }
            DegradationEvent::SelectionCurtailed {
                selected,
                requested,
            } => {
                write!(f, "selection curtailed at {selected} of {requested} points")
            }
            DegradationEvent::IndexFreeFallback { cause } => {
                write!(f, "fell back to index-free pipeline: {cause}")
            }
            DegradationEvent::MinHashFallback { cause } => {
                write!(f, "fell back to MinHash selection: {cause}")
            }
        }
    }
}

/// The degradation report of one run. Attached to every
/// [`DiverseResult`](crate::DiverseResult); an unconstrained, fully
/// successful run reports [`Degradation::is_degraded`] `== false`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Degradation {
    /// The budget trip that ended the run early, if any.
    pub interrupt: Option<Interrupt>,
    /// Every degradation step taken, in order.
    pub events: Vec<DegradationEvent>,
}

impl Degradation {
    /// An empty report (nothing was curtailed).
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when anything was curtailed, substituted or interrupted.
    pub fn is_degraded(&self) -> bool {
        self.interrupt.is_some() || !self.events.is_empty()
    }

    /// One-line human-readable summary, or `"complete"`.
    pub fn summary(&self) -> String {
        if !self.is_degraded() {
            return "complete".to_string();
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(i) = &self.interrupt {
            parts.push(format!("stopped in {} ({})", i.phase, i.reason));
        }
        parts.extend(self.events.iter().map(|e| e.to_string()));
        parts.join("; ")
    }
}

/// The execution context threaded through budgeted phases: tracks
/// elapsed time and dominance tests against a [`RunBudget`].
///
/// Checks are designed for per-row granularity: when the budget is
/// unlimited a check is a single branch, otherwise an atomic add plus a
/// clock read every [`ExecContext::CHECK_INTERVAL`] charges.
#[derive(Debug)]
pub struct ExecContext {
    budget: RunBudget,
    start: Instant,
    dominance_tests: AtomicU64,
    checks: AtomicU64,
}

impl ExecContext {
    /// Deadline / cancellation polls happen at most once per this many
    /// charge calls (a charge call is typically one data row).
    pub const CHECK_INTERVAL: u64 = 256;

    /// A context enforcing `budget`, with the clock starting now.
    pub fn new(budget: RunBudget) -> Self {
        ExecContext {
            budget,
            start: Instant::now(),
            dominance_tests: AtomicU64::new(0),
            checks: AtomicU64::new(0),
        }
    }

    /// A context that never trips.
    pub fn unlimited() -> Self {
        Self::new(RunBudget::none())
    }

    /// Wall-clock time since the context was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Dominance tests charged so far.
    pub fn dominance_tests(&self) -> u64 {
        self.dominance_tests.load(Ordering::Relaxed)
    }

    /// The budget this context enforces.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Full check: cancellation + deadline. Call at phase boundaries
    /// and round granularity (not per element).
    pub fn check(&self, phase: ExecPhase) -> Result<(), Interrupt> {
        if self.budget.is_unlimited() {
            return Ok(());
        }
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                return Err(Interrupt {
                    phase,
                    reason: StopReason::Cancelled,
                });
            }
        }
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(Interrupt {
                    phase,
                    reason: StopReason::DeadlineExceeded { elapsed },
                });
            }
        }
        Ok(())
    }

    /// Charges `n` dominance tests and periodically runs the full
    /// check. Call once per data row with `n = m`.
    pub fn charge_dominance_tests(&self, n: u64, phase: ExecPhase) -> Result<(), Interrupt> {
        if self.budget.is_unlimited() {
            return Ok(());
        }
        let used = self.dominance_tests.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(limit) = self.budget.max_dominance_tests {
            if used > limit {
                return Err(Interrupt {
                    phase,
                    reason: StopReason::DominanceBudgetExhausted { used, limit },
                });
            }
        }
        // Deadline / cancellation polling is amortised.
        if self
            .checks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(Self::CHECK_INTERVAL)
        {
            self.check(phase)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_context_never_trips() {
        let ctx = ExecContext::unlimited();
        for _ in 0..10_000 {
            ctx.charge_dominance_tests(1_000, ExecPhase::Fingerprint)
                .unwrap();
        }
        ctx.check(ExecPhase::Selection).unwrap();
        // Unlimited contexts skip the counter entirely.
        assert_eq!(ctx.dominance_tests(), 0);
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn fused_token_trips_after_polls() {
        let t = CancelToken::after_polls(3);
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled(), "third poll trips the fuse");
        assert!(t.is_cancelled(), "stays tripped");
    }

    #[test]
    fn dominance_budget_trips_with_exact_counts() {
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(100));
        ctx.charge_dominance_tests(60, ExecPhase::Fingerprint)
            .unwrap();
        ctx.charge_dominance_tests(40, ExecPhase::Fingerprint)
            .unwrap();
        let err = ctx
            .charge_dominance_tests(1, ExecPhase::Fingerprint)
            .unwrap_err();
        assert_eq!(err.phase, ExecPhase::Fingerprint);
        assert!(matches!(
            err.reason,
            StopReason::DominanceBudgetExhausted {
                used: 101,
                limit: 100
            }
        ));
    }

    #[test]
    fn deadline_trips() {
        let ctx = ExecContext::new(RunBudget::none().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        let err = ctx.check(ExecPhase::Skyline).unwrap_err();
        assert!(matches!(err.reason, StopReason::DeadlineExceeded { .. }));
    }

    #[test]
    fn cancellation_preempts_other_limits() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = ExecContext::new(
            RunBudget::none()
                .with_deadline(Duration::from_secs(3600))
                .with_cancel_token(token),
        );
        let err = ctx.check(ExecPhase::Selection).unwrap_err();
        assert_eq!(err.reason, StopReason::Cancelled);
    }

    #[test]
    fn degradation_summary_reads_well() {
        let d = Degradation::none();
        assert_eq!(d.summary(), "complete");
        assert!(!d.is_degraded());
        let d = Degradation {
            interrupt: Some(Interrupt {
                phase: ExecPhase::Selection,
                reason: StopReason::Cancelled,
            }),
            events: vec![DegradationEvent::SelectionCurtailed {
                selected: 3,
                requested: 10,
            }],
        };
        assert!(d.is_degraded());
        let s = d.summary();
        assert!(s.contains("selection"), "{s}");
        assert!(s.contains("3 of 10"), "{s}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(ExecPhase::Fingerprint.to_string(), "fingerprint");
        let i = Interrupt {
            phase: ExecPhase::Fingerprint,
            reason: StopReason::DominanceBudgetExhausted { used: 5, limit: 4 },
        };
        assert!(i.to_string().contains("during fingerprint"), "{i}");
        let e = DegradationEvent::IndexFreeFallback {
            cause: "page 7 unreadable".into(),
        };
        assert!(e.to_string().contains("index-free"), "{e}");
    }
}
