//! Diversification from a bare dominance graph (paper Fig. 1).
//!
//! "The entire representation only relies on the dominance relation
//! because this may be all we have" — product reviews, web pages, click
//! preferences, or third-party data that is anonymised down to the
//! relation. This module accepts such a bipartite graph (skyline nodes →
//! dominated nodes) and drives both the exact and the MinHash pipelines
//! without any coordinates or index.

use crate::error::{Result, SkyDiverError};
use crate::gamma::GammaSets;
use crate::minhash::{HashFamily, SigGenOutput, SignatureMatrix};

/// A bipartite dominance graph: `m` skyline nodes on the left, `rows`
/// dominated candidates on the right, an edge per dominance pair.
///
/// ```
/// use skydiver_core::{DominanceGraph, SkyDiver};
///
/// // The paper's Figure 1: documents a..d over p1..p11.
/// let graph = DominanceGraph::from_edges(11, vec![
///     vec![0],
///     vec![0, 1, 2, 3, 4, 5],
///     vec![3, 4, 5, 6, 7, 8, 9, 10],
///     vec![6, 7, 8, 9],
/// ]);
/// let result = SkyDiver::new(2).signature_size(256).run_graph(&graph).unwrap();
/// assert_eq!(result.selected, vec![2, 0]); // (c, a)
/// ```
#[derive(Debug, Clone, Default)]
pub struct DominanceGraph {
    rows: usize,
    edges: Vec<Vec<usize>>,
}

impl DominanceGraph {
    /// An empty graph over `rows` right-side nodes.
    pub fn new(rows: usize) -> Self {
        DominanceGraph {
            rows,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from per-skyline-point edge lists.
    ///
    /// # Panics
    /// Panics if any edge references a right-side node `>= rows`.
    pub fn from_edges(rows: usize, edges: Vec<Vec<usize>>) -> Self {
        for (j, dominated) in edges.iter().enumerate() {
            for &i in dominated {
                assert!(i < rows, "skyline node {j} has edge to out-of-range node {i}");
            }
        }
        DominanceGraph { rows, edges }
    }

    /// Appends a skyline node with the given dominated set; returns its
    /// index.
    pub fn add_skyline_node(&mut self, dominated: Vec<usize>) -> usize {
        for &i in &dominated {
            assert!(i < self.rows, "edge to out-of-range node {i}");
        }
        self.edges.push(dominated);
        self.edges.len() - 1
    }

    /// Number of skyline (left) nodes.
    pub fn num_skyline(&self) -> usize {
        self.edges.len()
    }

    /// Number of dominated-candidate (right) nodes.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Domination score of skyline node `j` (its out-degree).
    pub fn score(&self, j: usize) -> u64 {
        self.edges[j].len() as u64
    }

    /// All domination scores.
    pub fn scores(&self) -> Vec<u64> {
        (0..self.num_skyline()).map(|j| self.score(j)).collect()
    }

    /// Materialises exact Γ bitsets.
    pub fn gamma_sets(&self) -> GammaSets {
        GammaSets::from_edges(self.rows, &self.edges)
    }

    /// MinHash fingerprints straight from the edge lists — the
    /// index-free pass when only the relation is known. Returns an error
    /// if the graph has no skyline nodes.
    pub fn fingerprint(&self, family: &HashFamily) -> Result<SigGenOutput> {
        if self.edges.is_empty() {
            return Err(SkyDiverError::EmptySkyline);
        }
        let t = family.len();
        let mut matrix = SignatureMatrix::new(t, self.num_skyline());
        let mut row_hashes = vec![0u64; t];
        // Iterate rows so each right-side node is hashed once even when
        // several skyline nodes dominate it.
        let mut dominators: Vec<Vec<usize>> = vec![Vec::new(); self.rows];
        for (j, dominated) in self.edges.iter().enumerate() {
            for &i in dominated {
                dominators[i].push(j);
            }
        }
        for (row, doms) in dominators.iter().enumerate() {
            if doms.is_empty() {
                continue;
            }
            family.hash_all(row as u64, &mut row_hashes);
            for &j in doms {
                matrix.update_column(j, &row_hashes);
            }
        }
        Ok(SigGenOutput {
            matrix,
            scores: self.scores(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispersion::{select_diverse, SeedRule, TieBreak};
    use crate::diversity::{ExactJaccardDistance, SignatureDistance};

    fn figure1() -> DominanceGraph {
        DominanceGraph::from_edges(
            11,
            vec![
                vec![0],
                vec![0, 1, 2, 3, 4, 5],
                vec![3, 4, 5, 6, 7, 8, 9, 10],
                vec![6, 7, 8, 9],
            ],
        )
    }

    #[test]
    fn scores_are_out_degrees() {
        let g = figure1();
        assert_eq!(g.scores(), vec![1, 6, 8, 4]);
        assert_eq!(g.num_skyline(), 4);
        assert_eq!(g.rows(), 11);
    }

    #[test]
    fn exact_pipeline_returns_c_a() {
        let g = figure1();
        let gamma = g.gamma_sets();
        let mut dist = ExactJaccardDistance::new(&gamma);
        let sel = select_diverse(
            &mut dist,
            &g.scores(),
            2,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .unwrap();
        assert_eq!(sel, vec![2, 0]);
    }

    #[test]
    fn minhash_pipeline_agrees_with_exact_on_figure1() {
        let g = figure1();
        let fam = HashFamily::new(256, 200);
        let out = g.fingerprint(&fam).unwrap();
        assert_eq!(out.scores, vec![1, 6, 8, 4]);
        let mut dist = SignatureDistance::new(&out.matrix);
        let sel = select_diverse(
            &mut dist,
            &out.scores,
            2,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .unwrap();
        // With 256 slots the estimate is easily sharp enough to pick the
        // fully disjoint pair.
        assert_eq!(sel, vec![2, 0]);
    }

    #[test]
    fn incremental_construction() {
        let mut g = DominanceGraph::new(3);
        assert_eq!(g.add_skyline_node(vec![0, 1]), 0);
        assert_eq!(g.add_skyline_node(vec![2]), 1);
        assert_eq!(g.num_skyline(), 2);
        assert_eq!(g.gamma_sets().jaccard_distance(0, 1), 1.0);
    }

    #[test]
    fn empty_graph_fingerprint_errors() {
        let g = DominanceGraph::new(5);
        let fam = HashFamily::new(4, 0);
        assert_eq!(g.fingerprint(&fam).unwrap_err(), SkyDiverError::EmptySkyline);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_edges_rejected() {
        let _ = DominanceGraph::from_edges(2, vec![vec![5]]);
    }
}
