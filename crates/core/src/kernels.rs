//! Hot-path performance kernels shared across the pipeline.
//!
//! Two loops dominate end-to-end runtime: the `n × m` dominance scan of
//! `SigGen-IF` and the slot-agreement count behind every Jaccard/Hamming
//! distance evaluation of the selection phase. This module packages both
//! as tight, allocation-free kernels:
//!
//! * [`SkylinePack`] — skyline coordinates packed into one contiguous
//!   row-major buffer, scanned in L1-sized tiles with the inner
//!   dominance test monomorphized for `d = 2..=5` (generic fallback
//!   above). Eliminates the per-test `ds.point(s)` indirection of the
//!   naive loop and keeps each tile hot across a block of data rows.
//! * [`agreement_count`] / [`agreement_count_u32`] — branchless chunked
//!   equality counts over signature columns and LSH zone assignments,
//!   written so the autovectorizer can keep the comparison loop free of
//!   per-element bounds checks and branches.
//!
//! Every kernel is observationally identical to the scalar code it
//! replaces — same dominance outcomes, same counts — so all downstream
//! results stay bit-identical.

/// Number of skyline points per tile of the packed dominance scan.
///
/// A tile of 64 points at d ≤ 8 occupies at most 4 KiB — comfortably
/// within L1 — so a tile stays cache-resident while a whole block of
/// data rows (see [`ROW_BLOCK`]) is tested against it.
pub const SKYLINE_TILE: usize = 64;

/// Number of data rows tested per skyline tile before moving to the
/// next tile. Larger blocks amortise the tile's cache footprint over
/// more rows; 128 rows × 8 dims × 8 B = 8 KiB of row data per block.
pub const ROW_BLOCK: usize = 128;

/// Counts slots where two equally-long `u64` signature columns agree.
///
/// Branchless compare-and-accumulate over length-equalised slices: the
/// up-front reslice erases per-element bounds checks so LLVM
/// auto-vectorises the loop (SSE2 `pcmpeqd`-based 64-bit equality with
/// unrolled accumulators). Hand-chunked variants measurably *defeat*
/// that vectorisation here — keep this the simple form.
#[inline]
pub fn agreement_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut agree = 0usize;
    for i in 0..n {
        // lint: allow(R2) -- exactly t slot comparisons per distance
        // evaluation; the greedy round that calls it polls per round
        agree += usize::from(a[i] == b[i]);
    }
    agree
}

/// One slot-row of the slot-major batched agreement count: for every
/// candidate column `j` of the block, adds `1` to `acc[j]` when
/// `row[j] == pivot`.
///
/// The accumulators are `u64` on purpose: the compare and the add then
/// share one lane width (`pcmpeqq` + mask subtract), which LLVM
/// vectorises cleanly — accumulating into `f64` instead forces a scalar
/// `u64 → f64` convert per element (no packed form on x86-64) and
/// measures ~3× *slower* than the per-pair kernel. The caller converts
/// each count once per tile with the same `1 − count/t` expression as
/// the per-pair path; counts are integers `≤ t`, exactly representable,
/// so the distances stay bit-identical.
#[inline]
pub fn equality_accumulate(row: &[u64], pivot: u64, acc: &mut [u64]) {
    debug_assert_eq!(row.len(), acc.len());
    let n = row.len().min(acc.len());
    let (row, acc) = (&row[..n], &mut acc[..n]);
    for j in 0..n {
        // lint: allow(R2) -- one pass over a candidate block (≤ the
        // slot-major tile); the greedy round that calls it polls the
        // budget once per selection round
        acc[j] += u64::from(row[j] == pivot);
    }
}

/// Four slot-rows of the slot-major batched agreement count in one
/// pass: for every candidate column `j` of the block, adds to `acc[j]`
/// how many of the four `(row, pivot)` pairs agree at `j`.
///
/// Processing four rows per accumulator visit quarters the
/// load/add/store traffic on `acc` — the read-modify-write on the
/// counts tile is what made the one-row kernel trail the per-pair
/// path (~0.9×); with the 4-way join the batched kernel comes out
/// ahead (1.1–1.3× measured across t ∈ {32..128}, m ∈ {0.4k..4k}).
/// Wider joins (8-way) measured no better and double the register
/// pressure, so four is the shipped width.
#[inline]
pub fn equality_accumulate4(rows: [&[u64]; 4], pivots: [u64; 4], acc: &mut [u64]) {
    let n = acc.len();
    debug_assert!(rows.iter().all(|r| r.len() == n));
    let (r0, r1, r2, r3) = (&rows[0][..n], &rows[1][..n], &rows[2][..n], &rows[3][..n]);
    for j in 0..n {
        // lint: allow(R2) -- one pass over a candidate block (≤ the
        // slot-major tile); the greedy round that calls it polls the
        // budget once per selection round
        acc[j] += u64::from(r0[j] == pivots[0])
            + u64::from(r1[j] == pivots[1])
            + u64::from(r2[j] == pivots[2])
            + u64::from(r3[j] == pivots[3]);
    }
}

/// [`agreement_count`] over `u32` slices (LSH zone assignments).
#[inline]
pub fn agreement_count_u32(a: &[u32], b: &[u32]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut agree = 0usize;
    for i in 0..n {
        // lint: allow(R2) -- exactly ζ zone comparisons per Hamming
        // evaluation; the greedy round that calls it polls per round
        agree += usize::from(a[i] == b[i]);
    }
    agree
}

/// Skyline coordinates packed into a contiguous row-major scratch
/// buffer for the blocked `n × m` dominance scan.
///
/// The naive loop fetches `ds.point(s)` once per `(row, skyline)` pair —
/// an index computation and bounds check per dominance test, on
/// coordinates scattered across the full dataset. Packing the `m`
/// skyline points once up front makes the inner loop a linear walk over
/// `m · d` contiguous floats, processed in [`SKYLINE_TILE`]-sized tiles
/// so each tile is read from L1 for every row of a [`ROW_BLOCK`].
#[derive(Debug, Clone)]
pub struct SkylinePack {
    d: usize,
    m: usize,
    coords: Vec<f64>,
}

impl SkylinePack {
    /// Packs the given skyline coordinate slices (row-major copy).
    pub fn pack<'a, I>(d: usize, points: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut coords = Vec::new();
        let mut m = 0usize;
        for p in points {
            // lint: allow(R2) -- one-time O(m·d) copy at scan setup; the
            // row loop that consumes the pack charges the budget
            debug_assert_eq!(p.len(), d);
            coords.extend_from_slice(p);
            m += 1;
        }
        SkylinePack { d, m, coords }
    }

    /// Number of packed skyline points `m`.
    pub fn len(&self) -> usize {
        self.m
    }

    /// `true` when no points are packed.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Appends to `out` the (ascending) indices of packed skyline
    /// points that dominate `p` under all-minimisation — identical
    /// outcomes to `MinDominance::dominates(sky[j], p)` for every `j`.
    #[inline]
    pub fn dominators_into(&self, p: &[f64], out: &mut Vec<usize>) {
        debug_assert_eq!(p.len(), self.d);
        match self.d {
            2 => self.dominators_const::<2>(p, 0, self.m, out),
            3 => self.dominators_const::<3>(p, 0, self.m, out),
            4 => self.dominators_const::<4>(p, 0, self.m, out),
            5 => self.dominators_const::<5>(p, 0, self.m, out),
            _ => self.dominators_generic(p, 0, self.m, out),
        }
    }

    /// Tiled block scan: tests every row of `rows` (`rows[i]` is the
    /// coordinate slice of block row `i`) against every packed skyline
    /// point, pushing dominating skyline indices into `out[i]`.
    ///
    /// The tile loop is outermost so one [`SKYLINE_TILE`] of packed
    /// coordinates services the whole row block from L1 before the next
    /// tile streams in. Per row, indices arrive in ascending order —
    /// the same order the naive scan produces.
    pub fn dominators_block(&self, rows: &[&[f64]], out: &mut [Vec<usize>]) {
        debug_assert_eq!(rows.len(), out.len());
        let mut lo = 0;
        while lo < self.m {
            // lint: allow(R2) -- one blocked m×|rows| scan per row block;
            // the SigGen-IF row loop charges the budget per block
            let hi = (lo + SKYLINE_TILE).min(self.m);
            match self.d {
                2 => self.tile_const::<2>(lo, hi, rows, out),
                3 => self.tile_const::<3>(lo, hi, rows, out),
                4 => self.tile_const::<4>(lo, hi, rows, out),
                5 => self.tile_const::<5>(lo, hi, rows, out),
                _ => self.tile_generic(lo, hi, rows, out),
            }
            lo = hi;
        }
    }

    #[inline]
    fn tile_const<const D: usize>(&self, lo: usize, hi: usize, rows: &[&[f64]], out: &mut [Vec<usize>]) {
        let tile = &self.coords[lo * D..hi * D];
        for (bi, &p) in rows.iter().enumerate() {
            // lint: allow(R2) -- one SKYLINE_TILE × ROW_BLOCK tile pass;
            // the caller's row loop charges the budget per block
            // lint: allow(R1) -- the const-D dispatch only runs when
            // self.d == D, so every row slice has exactly D elements
            let p: &[f64; D] = p.try_into().expect("dimensionality matches pack");
            for (jj, s) in tile.chunks_exact(D).enumerate() {
                if dominates_min_const::<D>(s, p) {
                    out[bi].push(lo + jj);
                }
            }
        }
    }

    fn tile_generic(&self, lo: usize, hi: usize, rows: &[&[f64]], out: &mut [Vec<usize>]) {
        let d = self.d;
        let tile = &self.coords[lo * d..hi * d];
        for (bi, &p) in rows.iter().enumerate() {
            // lint: allow(R2) -- one SKYLINE_TILE × ROW_BLOCK tile pass;
            // the caller's row loop charges the budget per block
            for (jj, s) in tile.chunks_exact(d).enumerate() {
                if dominates_min_generic(s, p) {
                    out[bi].push(lo + jj);
                }
            }
        }
    }

    #[inline]
    fn dominators_const<const D: usize>(&self, p: &[f64], lo: usize, hi: usize, out: &mut Vec<usize>) {
        // lint: allow(R1) -- the const-D dispatch only runs when
        // self.d == D, so the query point has exactly D elements
        let p: &[f64; D] = p.try_into().expect("dimensionality matches pack");
        let tile = &self.coords[lo * D..hi * D];
        for (jj, s) in tile.chunks_exact(D).enumerate() {
            // lint: allow(R2) -- m dominance tests for one data row; the
            // SigGen-IF row loop charges the budget per row
            if dominates_min_const::<D>(s, p) {
                out.push(lo + jj);
            }
        }
    }

    fn dominators_generic(&self, p: &[f64], lo: usize, hi: usize, out: &mut Vec<usize>) {
        let d = self.d;
        let tile = &self.coords[lo * d..hi * d];
        for (jj, s) in tile.chunks_exact(d).enumerate() {
            // lint: allow(R2) -- m dominance tests for one data row; the
            // SigGen-IF row loop charges the budget per row
            if dominates_min_generic(s, p) {
                out.push(lo + jj);
            }
        }
    }
}

/// Monomorphized all-minimise dominance test: `a ≺ b` iff `a[i] ≤ b[i]`
/// everywhere and `a[i] < b[i]` somewhere. Identical outcomes to
/// `MinDominance::dominates`, including on equal points (false) and on
/// the non-finite inputs the pipeline has already rejected upstream.
#[inline]
fn dominates_min_const<const D: usize>(a: &[f64], b: &[f64; D]) -> bool {
    let mut strict = false;
    for i in 0..D {
        // lint: allow(R2) -- exactly D <= 5 coordinate comparisons
        if a[i] > b[i] {
            return false;
        }
        strict |= a[i] < b[i];
    }
    strict
}

/// Generic-dimension fallback of [`dominates_min_const`].
#[inline]
fn dominates_min_generic(a: &[f64], b: &[f64]) -> bool {
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b) {
        // lint: allow(R2) -- exactly d coordinate comparisons per test
        if x > y {
            return false;
        }
        strict |= x < y;
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_data::DominanceOrd;

    #[test]
    fn agreement_matches_scalar_zip() {
        let a: Vec<u64> = (0..37).map(|i| i % 5).collect();
        let b: Vec<u64> = (0..37).map(|i| i % 3).collect();
        let scalar = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert_eq!(agreement_count(&a, &b), scalar);
        assert_eq!(agreement_count(&a, &a), 37);
        assert_eq!(agreement_count(&[], &[]), 0);
    }

    #[test]
    fn equality_accumulate_matches_agreement_count() {
        let a: Vec<u64> = (0..97).map(|i| i % 6).collect();
        for pivot in 0..6u64 {
            let mut acc = vec![0u64; a.len()];
            equality_accumulate(&a, pivot, &mut acc);
            let total: u64 = acc.iter().sum();
            let pivots = vec![pivot; a.len()];
            assert_eq!(total, agreement_count(&a, &pivots) as u64);
            for (j, &v) in acc.iter().enumerate() {
                assert_eq!(v, u64::from(a[j] == pivot));
            }
        }
    }

    #[test]
    fn equality_accumulate4_matches_four_single_rows() {
        let rows: Vec<Vec<u64>> = (0..4)
            .map(|r| (0..131).map(|i| (i * 7 + r) % 5).collect())
            .collect();
        let pivots = [0u64, 1, 2, 4];
        let mut acc4 = vec![0u64; 131];
        equality_accumulate4(
            [&rows[0], &rows[1], &rows[2], &rows[3]],
            pivots,
            &mut acc4,
        );
        let mut acc1 = vec![0u64; 131];
        for (row, &pv) in rows.iter().zip(&pivots) {
            equality_accumulate(row, pv, &mut acc1);
        }
        assert_eq!(acc4, acc1);
    }

    #[test]
    fn agreement_u32_matches_scalar_zip() {
        let a: Vec<u32> = (0..29).map(|i| i % 4).collect();
        let b: Vec<u32> = (0..29).map(|i| i % 7).collect();
        let scalar = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert_eq!(agreement_count_u32(&a, &b), scalar);
    }

    #[test]
    fn packed_dominators_match_min_dominance() {
        // Cover every monomorphized arm plus the generic fallback.
        for d in [2usize, 3, 4, 5, 6] {
            let ds = independent(300, d, 7 + d as u64);
            let sky: Vec<usize> = (0..100).collect();
            let pack = SkylinePack::pack(d, sky.iter().map(|&s| ds.point(s)));
            let mut got = Vec::new();
            for row in 100..300 {
                got.clear();
                pack.dominators_into(ds.point(row), &mut got);
                let want: Vec<usize> = sky
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| MinDominance.dominates(ds.point(s), ds.point(row)))
                    .map(|(j, _)| j)
                    .collect();
                assert_eq!(got, want, "d = {d}, row = {row}");
            }
        }
    }

    #[test]
    fn blocked_scan_matches_single_row_scan() {
        let d = 3;
        let ds = independent(500, d, 11);
        // More skyline points than one tile to exercise the tile loop.
        let pack = SkylinePack::pack(d, (0..150).map(|s| ds.point(s)));
        let rows: Vec<&[f64]> = (150..350).map(|r| ds.point(r)).collect();
        let mut blocked: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
        pack.dominators_block(&rows, &mut blocked);
        for (bi, &p) in rows.iter().enumerate() {
            let mut single = Vec::new();
            pack.dominators_into(p, &mut single);
            assert_eq!(blocked[bi], single, "block row {bi}");
        }
    }

    #[test]
    fn equal_points_do_not_dominate() {
        let pack = SkylinePack::pack(3, [[1.0, 2.0, 3.0].as_slice()]);
        let mut out = Vec::new();
        pack.dominators_into(&[1.0, 2.0, 3.0], &mut out);
        assert!(out.is_empty(), "irreflexivity");
        pack.dominators_into(&[1.0, 2.0, 3.1], &mut out);
        assert_eq!(out, vec![0], "weak dominance with one strict dim");
    }
}
