//! L<sub>p</sub>-distance baselines — the "state-of-the-art"
//! competitors the paper argues against (§2 *Skyline Diversity*):
//! distance-based representative skylines (Tao et al., ICDE'09 \[32\])
//! and l-SkyDiv (\[38\]) both measure skyline diversity with the
//! Euclidean distance **between the skyline points themselves**,
//! ignoring the rest of the data.
//!
//! This module implements that family as [`DiversityDistance`] backends
//! so they plug into the same greedy dispersion machinery, making the
//! comparison apples-to-apples. Their documented weaknesses —
//! sensitivity to per-attribute scaling, blindness to domination
//! structure — are demonstrated by the `scale_invariance` experiment
//! harness and by tests here.

use skydiver_data::Dataset;

use crate::dispersion::{select_diverse, SeedRule, TieBreak};
use crate::diversity::DiversityDistance;
use crate::error::Result;

/// Euclidean (`L2`) distance between skyline points' raw coordinates.
#[derive(Debug, Clone)]
pub struct EuclideanDistance {
    points: Vec<Vec<f64>>,
}

impl EuclideanDistance {
    /// Backend over the `skyline` members of `ds` (raw attribute
    /// values, exactly as \[32\]/\[38\] use them).
    pub fn new(ds: &Dataset, skyline: &[usize]) -> Self {
        Self {
            points: skyline.iter().map(|&s| ds.point(s).to_vec()).collect(),
        }
    }

    /// Backend with per-dimension min–max normalisation into `[0, 1]` — a
    /// common mitigation for scale sensitivity (which still cannot
    /// recover domination structure).
    pub fn normalized(ds: &Dataset, skyline: &[usize]) -> Self {
        let d = ds.dims();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for &s in skyline {
            for (j, &v) in ds.point(s).iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        let points = skyline
            .iter()
            .map(|&s| {
                ds.point(s)
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let span = hi[j] - lo[j];
                        if span > 0.0 {
                            (v - lo[j]) / span
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        Self { points }
    }
}

impl DiversityDistance for EuclideanDistance {
    fn num_points(&self) -> usize {
        self.points.len()
    }

    fn distance(&mut self, i: usize, j: usize) -> f64 {
        self.points[i]
            .iter()
            .zip(&self.points[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Distance-based representative skyline (Tao et al. \[32\]): the
/// greedy 2-approximation of k-center/max–min dispersion under `L2`
/// over the skyline coordinates, seeded at the farthest pair. Returns
/// positions within `skyline`.
pub fn distance_based_representatives(
    ds: &Dataset,
    skyline: &[usize],
    k: usize,
) -> Result<Vec<usize>> {
    let mut dist = EuclideanDistance::new(ds, skyline);
    // No domination scores exist in the Lp world; tie-break by index.
    let scores = vec![0u64; skyline.len()];
    select_diverse(&mut dist, &scores, k, SeedRule::FarthestPair, TieBreak::FirstIndex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::GammaSets;
    use crate::diversity::ExactJaccardDistance;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::anticorrelated;
    use skydiver_skyline::naive_skyline;

    #[test]
    fn euclidean_backend_is_a_metric() {
        let ds = anticorrelated(500, 3, 160);
        let sky = naive_skyline(&ds, &MinDominance);
        let mut d = EuclideanDistance::new(&ds, &sky);
        let m = sky.len().min(12);
        for i in 0..m {
            assert_eq!(d.distance(i, i), 0.0);
            for j in 0..m {
                assert!((d.distance(i, j) - d.distance(j, i)).abs() < 1e-12);
                for l in 0..m {
                    assert!(d.distance(i, l) <= d.distance(i, j) + d.distance(j, l) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn lp_selection_changes_under_rescaling_jd_does_not() {
        // The paper's core critique: multiply one attribute by 1000 and
        // the L2 pick changes; the dominance relation — hence SkyDiver's
        // pick — is untouched.
        let ds = anticorrelated(2000, 3, 161);
        let sky = naive_skyline(&ds, &MinDominance);
        assert!(sky.len() >= 8);
        let k = 4;

        // Rescaled copy: dimension 0 blown up ×1000.
        let mut scaled = Dataset::with_capacity(3, ds.len());
        for p in ds.iter() {
            scaled.push(&[p[0] * 1000.0, p[1], p[2]]);
        }
        let sky_scaled = naive_skyline(&scaled, &MinDominance);
        assert_eq!(sky, sky_scaled, "dominance is scale-invariant");

        let lp_raw = distance_based_representatives(&ds, &sky, k).unwrap();
        let lp_scaled = distance_based_representatives(&scaled, &sky, k).unwrap();
        assert_ne!(
            sorted(&lp_raw),
            sorted(&lp_scaled),
            "L2 representatives must drift under rescaling on this instance"
        );

        // SkyDiver's exact selection is identical on both.
        let g1 = GammaSets::build(&ds, &MinDominance, &sky);
        let g2 = GammaSets::build(&scaled, &MinDominance, &sky);
        let scores = g1.scores();
        assert_eq!(scores, g2.scores());
        let mut e1 = ExactJaccardDistance::new(&g1);
        let mut e2 = ExactJaccardDistance::new(&g2);
        let s1 = select_diverse(&mut e1, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
            .unwrap();
        let s2 = select_diverse(&mut e2, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
            .unwrap();
        assert_eq!(s1, s2, "dominance-based selection is scale-invariant");
    }

    #[test]
    fn normalization_restores_stability_but_not_structure() {
        let ds = anticorrelated(1500, 2, 162);
        let sky = naive_skyline(&ds, &MinDominance);
        assert!(sky.len() >= 5);
        let mut scaled = Dataset::with_capacity(2, ds.len());
        for p in ds.iter() {
            scaled.push(&[p[0] * 1000.0, p[1]]);
        }
        // Min–max normalised L2 is invariant under per-dim rescaling...
        let mut a = EuclideanDistance::normalized(&ds, &sky);
        let mut b = EuclideanDistance::normalized(&scaled, &sky);
        for i in 0..sky.len().min(10) {
            for j in 0..sky.len().min(10) {
                assert!((a.distance(i, j) - b.distance(i, j)).abs() < 1e-9);
            }
        }
        // ...but it still measures contour geometry, not domination
        // overlap: two adjacent skyline points with heavily overlapping
        // Γ sets stay "close" in Jd terms yet may be far in L2 and vice
        // versa; see the lp_compare harness for the aggregate picture.
    }

    #[test]
    fn representatives_have_k_distinct_members() {
        let ds = anticorrelated(800, 3, 163);
        let sky = naive_skyline(&ds, &MinDominance);
        let k = 5.min(sky.len());
        let sel = distance_based_representatives(&ds, &sky, k).unwrap();
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), k);
    }

    fn sorted(v: &[usize]) -> Vec<usize> {
        let mut s = v.to_vec();
        s.sort_unstable();
        s
    }
}
