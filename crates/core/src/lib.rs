//! **SkyDiver** — skyline diversification via the dominance relation
//! (Valkanas, Papadopoulos, Gunopulos, EDBT 2013).
//!
//! Given a dataset `D` and its skyline `S`, SkyDiver returns the `k`
//! skyline points that maximise pairwise diversity, where the diversity
//! of two skyline points is the **Jaccard distance of their dominated
//! sets**: `Jd(p, q) = 1 − |Γ(p)∩Γ(q)| / |Γ(p)∪Γ(q)|`. No `Lp` norms, no
//! user-supplied distance — just dominance, so the framework also works
//! over categorical attributes, partially-ordered domains, and bare
//! dominance graphs.
//!
//! The pipeline has two phases:
//!
//! 1. **Fingerprinting** ([`minhash`]): each skyline point's dominated
//!    set is compressed into a MinHash signature of `t` slots — one pass
//!    over the data, index-free or accelerated by an aggregate R*-tree.
//! 2. **Selection** ([`dispersion`]): k-diversification is a max–min
//!    dispersion problem (NP-hard); a greedy heuristic over the
//!    signature distances (or the Hamming distances of [`lsh`]
//!    bit-vectors) gives a 2-approximation.
//!
//! Quick start:
//!
//! ```
//! use skydiver_core::SkyDiver;
//! use skydiver_data::{generators, Preference};
//!
//! let data = generators::anticorrelated(10_000, 3, 42);
//! let result = SkyDiver::new(5)            // k = 5 diverse points
//!     .signature_size(100)                  // the paper's default t
//!     .run(&data, &Preference::all_min(3))
//!     .unwrap();
//! assert_eq!(result.selected.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod budget;
pub mod canonical;
pub mod coverage;
pub mod cross;
pub mod dispersion;
pub mod diversity;
pub mod dynamic;
pub mod error;
pub mod gamma;
pub mod graph;
pub mod kernels;
pub mod lp_baselines;
pub mod lsh;
pub mod minhash;
pub mod pipeline;

pub use budget::{
    CancelToken, Degradation, DegradationEvent, ExecContext, ExecPhase, Interrupt, RunBudget,
    StopReason,
};
pub use canonical::canonicalise;
pub use coverage::{coverage_fraction, greedy_max_coverage};
pub use cross::{cross_fingerprint, cross_gamma_sets, diversify_cross};
pub use dispersion::{
    brute_force_mmdp, brute_force_msdp, greedy_msdp, min_pairwise, select_diverse,
    select_diverse_budgeted, select_diverse_parallel, select_diverse_parallel_budgeted, SeedRule,
    TieBreak,
};
pub use diversity::{
    DiversityDistance, ExactJaccardDistance, LshDistance, RTreeJaccardDistance, SignatureDistance,
    SyncDiversityDistance,
};
pub use dynamic::DynamicDiversifier;
pub use error::{Result, SkyDiverError};
pub use gamma::GammaSets;
pub use graph::DominanceGraph;
pub use lp_baselines::{distance_based_representatives, EuclideanDistance};
pub use lsh::{LshIndex, LshParams};
pub use minhash::{
    diversify_generic, fold_shard, scan_columns_budgeted, scan_columns_parallel_budgeted,
    sig_gen_ib, sig_gen_ib_active, sig_gen_ib_budgeted, sig_gen_ib_parallel,
    sig_gen_ib_parallel_budgeted, sig_gen_if, sig_gen_if_budgeted, sig_gen_if_generic,
    sig_gen_parallel, sig_gen_parallel_budgeted, HashFamily, ShardFingerprint, ShardFold,
    SigGenOutput, SignatureAccumulator, SignatureMatrix,
};
pub use pipeline::{DiverseResult, Fingerprint, SelectionMethod, ShardedFingerprintRun, SkyDiver};
