//! Error type of the SkyDiver core.

/// Errors surfaced by the diversification framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkyDiverError {
    /// `k` must be at least 2 (diversity of a single point is undefined;
    /// the paper requires `k ≥ 2`).
    KTooSmall {
        /// The offending `k`.
        k: usize,
    },
    /// `k` exceeds the skyline cardinality `m`.
    KExceedsSkyline {
        /// The requested `k`.
        k: usize,
        /// Skyline cardinality.
        m: usize,
    },
    /// The skyline set was empty.
    EmptySkyline,
    /// A signature size of zero was requested.
    ZeroSignatureSize,
    /// The LSH banding `ζ·r = t` admits no factorisation for this
    /// signature size (e.g. `t = 1`).
    NoLshFactorisation {
        /// Signature size that could not be factorised.
        t: usize,
    },
    /// LSH requires at least one bucket per zone.
    ZeroBuckets,
    /// Brute force enumeration would exceed the configured limit.
    BruteForceTooLarge {
        /// Number of subsets that enumeration would visit.
        combinations: u128,
        /// Configured ceiling.
        limit: u128,
    },
    /// Mismatched dimensionality between dataset and preferences.
    DimsMismatch {
        /// Dataset dimensionality.
        data: usize,
        /// Preference vector length.
        prefs: usize,
    },
}

impl std::fmt::Display for SkyDiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkyDiverError::KTooSmall { k } => write!(f, "k must be >= 2, got {k}"),
            SkyDiverError::KExceedsSkyline { k, m } => {
                write!(f, "k = {k} exceeds skyline cardinality m = {m}")
            }
            SkyDiverError::EmptySkyline => write!(f, "the skyline set is empty"),
            SkyDiverError::ZeroSignatureSize => write!(f, "signature size must be positive"),
            SkyDiverError::NoLshFactorisation { t } => {
                write!(f, "no zones × rows factorisation for signature size {t}")
            }
            SkyDiverError::ZeroBuckets => write!(f, "LSH needs at least one bucket per zone"),
            SkyDiverError::BruteForceTooLarge {
                combinations,
                limit,
            } => write!(
                f,
                "brute force would enumerate {combinations} subsets (limit {limit})"
            ),
            SkyDiverError::DimsMismatch { data, prefs } => write!(
                f,
                "dataset has {data} dimensions but {prefs} preferences were given"
            ),
        }
    }
}

impl std::error::Error for SkyDiverError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SkyDiverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SkyDiverError, &str)> = vec![
            (SkyDiverError::KTooSmall { k: 1 }, "k must be >= 2"),
            (
                SkyDiverError::KExceedsSkyline { k: 9, m: 3 },
                "exceeds skyline cardinality",
            ),
            (SkyDiverError::EmptySkyline, "empty"),
            (SkyDiverError::ZeroSignatureSize, "positive"),
            (SkyDiverError::NoLshFactorisation { t: 1 }, "factorisation"),
            (SkyDiverError::ZeroBuckets, "bucket"),
            (
                SkyDiverError::BruteForceTooLarge {
                    combinations: 10,
                    limit: 5,
                },
                "enumerate",
            ),
            (
                SkyDiverError::DimsMismatch { data: 3, prefs: 2 },
                "preferences",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
