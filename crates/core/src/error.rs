//! Error type of the SkyDiver core.

/// Errors surfaced by the diversification framework.
///
/// Every invalid configuration or unreadable input reachable through the
/// public API maps to one of these variants — builder inputs never
/// panic. (No `Eq`: [`SkyDiverError::InvalidLshThreshold`] carries the
/// offending `f64`.)
#[derive(Debug, Clone, PartialEq)]
pub enum SkyDiverError {
    /// `k` must be at least 2 (diversity of a single point is undefined;
    /// the paper requires `k ≥ 2`).
    KTooSmall {
        /// The offending `k`.
        k: usize,
    },
    /// `k` exceeds the skyline cardinality `m`.
    KExceedsSkyline {
        /// The requested `k`.
        k: usize,
        /// Skyline cardinality.
        m: usize,
    },
    /// The skyline set was empty.
    EmptySkyline,
    /// A signature size of zero was requested.
    ZeroSignatureSize,
    /// The LSH banding `ζ·r = t` admits no factorisation for this
    /// signature size (e.g. `t = 1`).
    NoLshFactorisation {
        /// Signature size that could not be factorised.
        t: usize,
    },
    /// LSH requires at least one bucket per zone.
    ZeroBuckets,
    /// Brute force enumeration would exceed the configured limit.
    BruteForceTooLarge {
        /// Number of subsets that enumeration would visit.
        combinations: u128,
        /// Configured ceiling.
        limit: u128,
    },
    /// Mismatched dimensionality between dataset and preferences.
    DimsMismatch {
        /// Dataset dimensionality.
        data: usize,
        /// Preference vector length.
        prefs: usize,
    },
    /// The LSH similarity threshold `ξ` must lie in `[0, 1]`.
    InvalidLshThreshold {
        /// The offending threshold.
        xi: f64,
    },
    /// The banding `ζ·r` does not fit into the signature size `t`.
    BandingExceedsSignature {
        /// Zones `ζ`.
        zones: usize,
        /// Rows per zone `r`.
        rows_per_zone: usize,
        /// Signature size `t`.
        t: usize,
    },
    /// A dataset coordinate was NaN or infinite. Dominance comparisons
    /// are only defined over finite values, so canonicalisation rejects
    /// the input up front.
    NonFiniteCoordinate {
        /// Row (point index) of the offending value.
        row: usize,
        /// Dimension of the offending value.
        dim: usize,
    },
    /// The domination-score vector does not match the point count.
    ScoresLengthMismatch {
        /// Scores supplied.
        scores: usize,
        /// Points in the distance backend.
        points: usize,
    },
    /// A simulated page read failed (fault injection); the index-based
    /// pipeline cannot trust partially-read structures and aborts. See
    /// `SkyDiver::run_auto` for the graceful index-free fallback.
    IndexReadFailure {
        /// Page whose read failed.
        page: u64,
        /// 0-based access index at which the failure struck.
        access: u64,
    },
}

impl std::fmt::Display for SkyDiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkyDiverError::KTooSmall { k } => write!(f, "k must be >= 2, got {k}"),
            SkyDiverError::KExceedsSkyline { k, m } => {
                write!(f, "k = {k} exceeds skyline cardinality m = {m}")
            }
            SkyDiverError::EmptySkyline => write!(f, "the skyline set is empty"),
            SkyDiverError::ZeroSignatureSize => write!(f, "signature size must be positive"),
            SkyDiverError::NoLshFactorisation { t } => {
                write!(f, "no zones × rows factorisation for signature size {t}")
            }
            SkyDiverError::ZeroBuckets => write!(f, "LSH needs at least one bucket per zone"),
            SkyDiverError::BruteForceTooLarge {
                combinations,
                limit,
            } => write!(
                f,
                "brute force would enumerate {combinations} subsets (limit {limit})"
            ),
            SkyDiverError::DimsMismatch { data, prefs } => write!(
                f,
                "dataset has {data} dimensions but {prefs} preferences were given"
            ),
            SkyDiverError::InvalidLshThreshold { xi } => {
                write!(f, "LSH threshold must be in [0, 1], got {xi}")
            }
            SkyDiverError::BandingExceedsSignature {
                zones,
                rows_per_zone,
                t,
            } => write!(
                f,
                "banding {zones} zones x {rows_per_zone} rows exceeds signature size {t}"
            ),
            SkyDiverError::NonFiniteCoordinate { row, dim } => write!(
                f,
                "non-finite coordinate at row {row}, dimension {dim} (NaN/infinity are not comparable under dominance)"
            ),
            SkyDiverError::ScoresLengthMismatch { scores, points } => write!(
                f,
                "{scores} domination scores supplied for {points} points"
            ),
            SkyDiverError::IndexReadFailure { page, access } => write!(
                f,
                "page {page} could not be read (access #{access})"
            ),
        }
    }
}

impl std::error::Error for SkyDiverError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SkyDiverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(SkyDiverError, &str)> = vec![
            (SkyDiverError::KTooSmall { k: 1 }, "k must be >= 2"),
            (
                SkyDiverError::KExceedsSkyline { k: 9, m: 3 },
                "exceeds skyline cardinality",
            ),
            (SkyDiverError::EmptySkyline, "empty"),
            (SkyDiverError::ZeroSignatureSize, "positive"),
            (SkyDiverError::NoLshFactorisation { t: 1 }, "factorisation"),
            (SkyDiverError::ZeroBuckets, "bucket"),
            (
                SkyDiverError::BruteForceTooLarge {
                    combinations: 10,
                    limit: 5,
                },
                "enumerate",
            ),
            (
                SkyDiverError::DimsMismatch { data: 3, prefs: 2 },
                "preferences",
            ),
            (
                SkyDiverError::InvalidLshThreshold { xi: 1.5 },
                "[0, 1]",
            ),
            (
                SkyDiverError::BandingExceedsSignature {
                    zones: 5,
                    rows_per_zone: 3,
                    t: 8,
                },
                "exceeds signature size",
            ),
            (
                SkyDiverError::NonFiniteCoordinate { row: 7, dim: 1 },
                "non-finite",
            ),
            (
                SkyDiverError::ScoresLengthMismatch { scores: 2, points: 3 },
                "scores",
            ),
            (
                SkyDiverError::IndexReadFailure { page: 12, access: 99 },
                "could not be read",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
