//! Diversity distance backends.
//!
//! The selection phase (`SelectDiverseSet`, Fig. 6) is generic over "a
//! distance measure used" `F(·)`; this module provides every backend the
//! paper evaluates behind one trait:
//!
//! * [`ExactJaccardDistance`] — materialised Γ bitsets (Brute-Force and
//!   quality re-scoring),
//! * [`SignatureDistance`] — estimated Jaccard from MinHash signatures
//!   (SkyDiver-MH),
//! * [`LshDistance`] — Hamming distance of LSH bit-vectors
//!   (SkyDiver-LSH),
//! * [`RTreeJaccardDistance`] — exact Jaccard evaluated through
//!   aggregate range-count queries with simulated I/O (Simple-Greedy).

use skydiver_rtree::{BufferPool, RTree};

use crate::gamma::GammaSets;
use crate::lsh::LshIndex;
use crate::minhash::{SignatureMatrix, SlotMajorSignatures};

/// A (not necessarily cheap) pairwise distance over the skyline points
/// `0..num_points()`. `&mut self` lets backends cache and charge I/O.
pub trait DiversityDistance {
    /// Number of skyline points `m`.
    fn num_points(&self) -> usize;

    /// Distance between skyline points `i` and `j`. Must be symmetric
    /// and satisfy the triangle inequality for the greedy heuristic's
    /// 2-approximation guarantee to hold.
    fn distance(&mut self, i: usize, j: usize) -> f64;

    /// Writes `distance(i, lo + jj)` into `out[jj]` for every `jj` in
    /// `0..out.len()`. Backends override this to hoist per-`i` work —
    /// the signature column or LSH zone-row fetch — out of the inner
    /// loop; the default simply loops [`DiversityDistance::distance`].
    fn distances_row(&mut self, i: usize, lo: usize, out: &mut [f64]) {
        for (jj, slot) in out.iter_mut().enumerate() {
            *slot = self.distance(i, lo + jj);
        }
    }

    /// One greedy relaxation round: folds `distance(i, x)` into
    /// `min_dist[i]` (element-wise minimum) for every `i` with
    /// `!in_set[i]`.
    ///
    /// The default evaluates pairs one at a time and *skips* selected
    /// entries — exactly the historical behaviour, which stateful
    /// backends such as [`RTreeJaccardDistance`] rely on for their
    /// per-evaluation I/O charging. Pure backends override it with a
    /// batched full-row kernel; such an override may also evaluate
    /// already-selected entries (their `min_dist` slots are never read
    /// by the argmax), but must relax unselected entries identically.
    fn relax_min_dist(&mut self, x: usize, in_set: &[bool], min_dist: &mut [f64]) {
        debug_assert_eq!(in_set.len(), min_dist.len());
        for i in 0..min_dist.len() {
            if in_set[i] {
                continue;
            }
            let d = self.distance(i, x);
            if d < min_dist[i] {
                min_dist[i] = d;
            }
        }
    }
}

/// A [`DiversityDistance`] whose evaluations are pure shared reads, safe
/// to run from several threads at once: the parallel greedy selection
/// requires `&self` distance evaluation plus [`Sync`].
///
/// Implemented by the signature and LSH backends (their distance is a
/// pure function of immutable buffers). [`RTreeJaccardDistance`] cannot
/// implement it — its evaluations mutate the buffer pool to charge I/O.
pub trait SyncDiversityDistance: DiversityDistance + Sync {
    /// Distance between skyline points `i` and `j` through a shared
    /// reference — must return exactly what
    /// [`DiversityDistance::distance`] would.
    fn distance_shared(&self, i: usize, j: usize) -> f64;

    /// Shared-reference batch form of
    /// [`DiversityDistance::distances_row`]: writes
    /// `distance_shared(i, lo + jj)` into `out[jj]`. The parallel
    /// selection workers call this so each partition gets the batched
    /// kernel without `&mut` access; overrides must return bitwise the
    /// same values as `distance_shared` (the trait already requires the
    /// distance to be symmetric, so row orientation cannot matter).
    fn distances_row_shared(&self, i: usize, lo: usize, out: &mut [f64]) {
        for (jj, slot) in out.iter_mut().enumerate() {
            *slot = self.distance_shared(i, lo + jj);
        }
    }
}

/// Exact Jaccard distance over materialised Γ sets.
#[derive(Debug)]
pub struct ExactJaccardDistance<'a> {
    gamma: &'a GammaSets,
}

impl<'a> ExactJaccardDistance<'a> {
    /// Wraps pre-built Γ sets.
    pub fn new(gamma: &'a GammaSets) -> Self {
        Self { gamma }
    }
}

impl DiversityDistance for ExactJaccardDistance<'_> {
    fn num_points(&self) -> usize {
        self.gamma.len()
    }

    fn distance(&mut self, i: usize, j: usize) -> f64 {
        self.gamma.jaccard_distance(i, j)
    }
}

impl SyncDiversityDistance for ExactJaccardDistance<'_> {
    fn distance_shared(&self, i: usize, j: usize) -> f64 {
        self.gamma.jaccard_distance(i, j)
    }
}

/// Estimated Jaccard distance from MinHash signatures (`Ĵd`).
///
/// Construction materialises a [`SlotMajorSignatures`] transpose of the
/// matrix (one `t · m` copy — about one greedy round's reads), so every
/// batched row evaluation afterwards streams contiguous `u64` lanes
/// instead of striding across columns. Pairwise [`distance`] calls keep
/// using the column-major matrix directly; both paths compute
/// `1 − agreement/t` and are bit-identical.
///
/// [`distance`]: DiversityDistance::distance
#[derive(Debug)]
pub struct SignatureDistance<'a> {
    sig: &'a SignatureMatrix,
    slots: SlotMajorSignatures,
    scratch: Vec<f64>,
}

impl<'a> SignatureDistance<'a> {
    /// Wraps a signature matrix, building the slot-major transpose.
    pub fn new(sig: &'a SignatureMatrix) -> Self {
        Self {
            sig,
            slots: SlotMajorSignatures::from_matrix(sig),
            scratch: Vec::new(),
        }
    }

    /// Bytes the distance oracle itself pins on top of the borrowed
    /// matrix — exactly the slot-major transpose (`t · m · 8`).
    pub fn memory_bytes(&self) -> usize {
        self.slots.memory_bytes()
    }
}

impl DiversityDistance for SignatureDistance<'_> {
    fn num_points(&self) -> usize {
        self.sig.m()
    }

    fn distance(&mut self, i: usize, j: usize) -> f64 {
        self.sig.estimated_distance(i, j)
    }

    fn distances_row(&mut self, i: usize, lo: usize, out: &mut [f64]) {
        self.slots.distances_into(i, lo, out);
    }

    fn relax_min_dist(&mut self, x: usize, in_set: &[bool], min_dist: &mut [f64]) {
        debug_assert_eq!(in_set.len(), min_dist.len());
        let m = min_dist.len();
        self.scratch.resize(m, 0.0);
        self.slots.distances_into(x, 0, &mut self.scratch[..m]);
        for i in 0..m {
            if !in_set[i] && self.scratch[i] < min_dist[i] {
                min_dist[i] = self.scratch[i];
            }
        }
    }
}

impl SyncDiversityDistance for SignatureDistance<'_> {
    fn distance_shared(&self, i: usize, j: usize) -> f64 {
        self.sig.estimated_distance(i, j)
    }

    fn distances_row_shared(&self, i: usize, lo: usize, out: &mut [f64]) {
        self.slots.distances_into(i, lo, out);
    }
}

/// Hamming distance between LSH bucket bit-vectors.
#[derive(Debug)]
pub struct LshDistance<'a> {
    idx: &'a LshIndex,
    scratch: Vec<f64>,
}

impl<'a> LshDistance<'a> {
    /// Wraps an LSH index.
    pub fn new(idx: &'a LshIndex) -> Self {
        Self { idx, scratch: Vec::new() }
    }
}

impl DiversityDistance for LshDistance<'_> {
    fn num_points(&self) -> usize {
        self.idx.len()
    }

    fn distance(&mut self, i: usize, j: usize) -> f64 {
        self.idx.hamming(i, j) as f64
    }

    fn distances_row(&mut self, i: usize, lo: usize, out: &mut [f64]) {
        self.idx.hamming_row_into(i, lo, out);
    }

    fn relax_min_dist(&mut self, x: usize, in_set: &[bool], min_dist: &mut [f64]) {
        debug_assert_eq!(in_set.len(), min_dist.len());
        let m = min_dist.len();
        self.scratch.resize(m, 0.0);
        self.idx.hamming_row_into(x, 0, &mut self.scratch[..m]);
        for i in 0..m {
            if !in_set[i] && self.scratch[i] < min_dist[i] {
                min_dist[i] = self.scratch[i];
            }
        }
    }
}

impl SyncDiversityDistance for LshDistance<'_> {
    fn distance_shared(&self, i: usize, j: usize) -> f64 {
        self.idx.hamming(i, j) as f64
    }

    fn distances_row_shared(&self, i: usize, lo: usize, out: &mut [f64]) {
        self.idx.hamming_row_into(i, lo, out);
    }
}

/// Exact Jaccard distance computed **through the index**, the way the
/// Simple-Greedy baseline must: `|Γ(p)|` and `|Γ(q)|` by dominance-region
/// counts (cached), `|Γ(p) ∩ Γ(q)|` by a corner-region count per pair.
/// Every node visit is charged to the buffer pool — this is what makes
/// SG 2–3 orders of magnitude slower than the signature methods in
/// Figures 10–11.
pub struct RTreeJaccardDistance<'a> {
    tree: &'a RTree,
    pool: &'a mut BufferPool,
    points: Vec<Vec<f64>>,
    gamma_cache: Vec<Option<u64>>,
}

impl<'a> RTreeJaccardDistance<'a> {
    /// Builds the backend for `points` (the skyline coordinates, in
    /// canonical min-space, in column order).
    pub fn new(tree: &'a RTree, pool: &'a mut BufferPool, points: Vec<Vec<f64>>) -> Self {
        let m = points.len();
        Self {
            tree,
            pool,
            points,
            gamma_cache: vec![None; m],
        }
    }

    fn gamma_size(&mut self, i: usize) -> u64 {
        if let Some(g) = self.gamma_cache[i] {
            return g;
        }
        let g = self.tree.count_dominated(self.pool, &self.points[i]);
        self.gamma_cache[i] = Some(g);
        g
    }
}

impl DiversityDistance for RTreeJaccardDistance<'_> {
    fn num_points(&self) -> usize {
        self.points.len()
    }

    fn distance(&mut self, i: usize, j: usize) -> f64 {
        let gi = self.gamma_size(i);
        let gj = self.gamma_size(j);
        // Corner of the intersection region: component-wise max. Skyline
        // points are pairwise incomparable, so the closed corner region
        // is exactly Γ(i) ∩ Γ(j) (see `count_weak_region`).
        let corner: Vec<f64> = self.points[i]
            .iter()
            .zip(&self.points[j])
            .map(|(a, b)| a.max(*b))
            .collect();
        let inter = self.tree.count_weak_region(self.pool, &corner);
        let union = gi + gj - inter;
        if union == 0 {
            // Two empty dominated sets: identical by convention.
            return 0.0;
        }
        1.0 - inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_skyline::naive_skyline;

    fn setup(n: usize, d: usize, seed: u64) -> (skydiver_data::Dataset, Vec<usize>, GammaSets) {
        let ds = independent(n, d, seed);
        let sky = naive_skyline(&ds, &MinDominance);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        (ds, sky, g)
    }

    #[test]
    fn rtree_backend_matches_exact_jaccard() {
        let (ds, sky, g) = setup(1200, 3, 130);
        let tree = RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let pts: Vec<Vec<f64>> = sky.iter().map(|&s| ds.point(s).to_vec()).collect();
        let mut sg = RTreeJaccardDistance::new(&tree, &mut pool, pts);
        let mut exact = ExactJaccardDistance::new(&g);
        for i in 0..sky.len() {
            for j in (i + 1)..sky.len() {
                let a = sg.distance(i, j);
                let b = exact.distance(i, j);
                assert!((a - b).abs() < 1e-12, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn rtree_backend_charges_io() {
        let (ds, sky, _) = setup(3000, 3, 131);
        assert!(sky.len() >= 2);
        let tree = RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(4);
        let pts: Vec<Vec<f64>> = sky.iter().map(|&s| ds.point(s).to_vec()).collect();
        let mut sg = RTreeJaccardDistance::new(&tree, &mut pool, pts);
        let _ = sg.distance(0, 1);
        assert!(sg.pool.stats().faults > 0, "range queries must cost I/O");
    }

    #[test]
    fn gamma_cache_avoids_recounting() {
        let (ds, sky, _) = setup(1000, 2, 132);
        assert!(sky.len() >= 3);
        let tree = RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let pts: Vec<Vec<f64>> = sky.iter().map(|&s| ds.point(s).to_vec()).collect();
        let mut sg = RTreeJaccardDistance::new(&tree, &mut pool, pts);
        let _ = sg.distance(0, 1);
        let after_first = sg.pool.stats().accesses();
        let _ = sg.distance(0, 1);
        let after_second = sg.pool.stats().accesses();
        // Second evaluation only pays the intersection query, not the
        // two Γ counts.
        assert!(after_second - after_first < after_first);
    }

    #[test]
    fn signature_backend_reports_m() {
        let sig = SignatureMatrix::new(8, 5);
        let d = SignatureDistance::new(&sig);
        assert_eq!(d.num_points(), 5);
    }

    #[test]
    fn hoisted_rows_match_pairwise_distance() {
        use crate::lsh::{LshIndex, LshParams};
        let mut sig = SignatureMatrix::new(8, 6);
        for j in 0..6 {
            let vals: Vec<u64> = (0..8).map(|i| ((j * i + j) % 5) as u64).collect();
            sig.update_column(j, &vals);
        }
        let mut sd = SignatureDistance::new(&sig);
        let idx = LshIndex::build(
            &sig,
            LshParams {
                zones: 4,
                rows_per_zone: 2,
            },
            16,
            9,
        )
        .unwrap();
        let mut ld = LshDistance::new(&idx);
        let mut row = [0.0f64; 6];
        for i in 0..6 {
            for lo in 0..6 {
                let out = &mut row[..6 - lo];
                sd.distances_row(i, lo, out);
                for (jj, &d) in out.iter().enumerate() {
                    assert_eq!(d, sd.distance(i, lo + jj));
                    assert_eq!(d, sd.distance_shared(i, lo + jj));
                }
                sd.distances_row_shared(i, lo, out);
                for (jj, &d) in out.iter().enumerate() {
                    assert_eq!(d, sd.distance_shared(i, lo + jj));
                }
                ld.distances_row(i, lo, out);
                for (jj, &d) in out.iter().enumerate() {
                    assert_eq!(d, ld.distance(i, lo + jj));
                    assert_eq!(d, ld.distance_shared(i, lo + jj));
                }
                ld.distances_row_shared(i, lo, out);
                for (jj, &d) in out.iter().enumerate() {
                    assert_eq!(d, ld.distance_shared(i, lo + jj));
                }
            }
        }
    }

    /// The batched `relax_min_dist` overrides must fold unselected
    /// entries exactly as the default pair-at-a-time loop does.
    #[test]
    fn batched_relax_matches_default_relax() {
        let mut sig = SignatureMatrix::new(8, 10);
        for j in 0..10 {
            let vals: Vec<u64> = (0..8).map(|i| ((j * i + 3 * j) % 4) as u64).collect();
            sig.update_column(j, &vals);
        }
        let (_ds, _sky, g) = setup(400, 3, 133);
        let m_exact = g.len().min(10);

        // Signature backend vs the trait default on an exact backend
        // with the same override-free semantics.
        let mut sd = SignatureDistance::new(&sig);
        let in_set: Vec<bool> = (0..10).map(|i| i % 3 == 0).collect();
        let mut batched = vec![0.9f64; 10];
        let mut reference = batched.clone();
        sd.relax_min_dist(4, &in_set, &mut batched);
        for i in 0..10 {
            if !in_set[i] {
                let d = sd.distance(i, 4);
                if d < reference[i] {
                    reference[i] = d;
                }
            }
        }
        for i in 0..10 {
            if !in_set[i] {
                assert_eq!(batched[i].to_bits(), reference[i].to_bits(), "slot {i}");
            }
        }

        // The default implementation itself (exact backend, no override).
        let mut exact = ExactJaccardDistance::new(&g);
        let in_set: Vec<bool> = (0..m_exact).map(|i| i % 2 == 0).collect();
        let mut md = vec![0.8f64; m_exact];
        let want = md.clone();
        exact.relax_min_dist(0, &in_set, &mut md);
        for i in 0..m_exact {
            let d = exact.distance(i, 0);
            if in_set[i] {
                assert_eq!(md[i], want[i], "selected slots untouched by default");
            } else {
                assert_eq!(md[i], want[i].min(d));
            }
        }
    }
}
