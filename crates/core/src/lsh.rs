//! Phase 2 alternative — Locality-Sensitive Hashing over the MinHash
//! signatures (paper §4.2.2).
//!
//! The signature matrix is split into `ζ` zones of `r` rows
//! (`ζ·r ≤ t`, governed by the similarity threshold
//! `ξ ≈ (1/ζ)^(1/r)`); each zone of each signature hashes into one of
//! `B` buckets. A skyline point then *is* a `ζ·B`-bit vector with
//! exactly `ζ` ones (one per zone), and diversity is the Hamming
//! distance between bit-vectors — which equals twice the number of zones
//! where the bucket assignments differ. Hamming distance satisfies the
//! triangle inequality, so the greedy 2-approximation applies unchanged.
//!
//! Compared to raw signatures this trades accuracy for memory: `ζ·B`
//! bits per point instead of `t` 64-bit integers (Figure 13).
//!
//! Note: the paper prints the banding constraint as `ζ·r = m`; the
//! signature matrix has `t` rows (`m` is the skyline cardinality), so
//! the constraint is `ζ·r = t` — implemented here as `ζ·r ≤ t`, using as
//! many slots as the best-fitting factorisation allows.

use crate::error::{Result, SkyDiverError};
use crate::minhash::SignatureMatrix;

/// Banding parameters: `zones` (`ζ`) zones of `rows_per_zone` (`r`)
/// signature slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Number of zones `ζ`.
    pub zones: usize,
    /// Signature slots per zone `r`.
    pub rows_per_zone: usize,
}

impl LshParams {
    /// Picks `ζ, r` with `ζ·r ≤ t` whose induced threshold
    /// `(1/ζ)^(1/r)` is closest to `xi` (ties prefer using more slots).
    ///
    /// Fails with [`SkyDiverError::InvalidLshThreshold`] for `ξ` outside
    /// `[0, 1]` (including NaN) and with
    /// [`SkyDiverError::NoLshFactorisation`] when the signature admits
    /// only the degenerate `ζ = r = 1` banding (`t = 1`), which hashes
    /// the whole one-slot signature into a single zone and carries no
    /// banding signal.
    ///
    /// ```
    /// use skydiver_core::LshParams;
    /// let p = LshParams::from_threshold(100, 0.4).unwrap();
    /// assert_eq!((p.zones, p.rows_per_zone), (25, 4));
    /// ```
    pub fn from_threshold(t: usize, xi: f64) -> Result<Self> {
        if t == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        if !(0.0..=1.0).contains(&xi) {
            return Err(SkyDiverError::InvalidLshThreshold { xi });
        }
        if t == 1 {
            return Err(SkyDiverError::NoLshFactorisation { t });
        }
        let mut best: Option<(f64, usize, LshParams)> = None;
        // lint: allow(R2) -- O(t) parameter search at configuration
        // time, before any budgeted phase starts
        for r in 1..=t {
            let zones = t / r;
            if zones == 0 {
                break;
            }
            let p = LshParams {
                zones,
                rows_per_zone: r,
            };
            let diff = (p.threshold() - xi).abs();
            let used = zones * r;
            let better = match &best {
                None => true,
                Some((bd, bu, _)) => diff < *bd || (diff == *bd && used > *bu),
            };
            if better {
                best = Some((diff, used, p));
            }
        }
        best.map(|(_, _, p)| p)
            .ok_or(SkyDiverError::NoLshFactorisation { t })
    }

    /// The induced similarity threshold `ξ = (1/ζ)^(1/r)`.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.zones as f64).powf(1.0 / self.rows_per_zone as f64)
    }

    /// Probability that two points with Jaccard similarity `s` share a
    /// bucket in at least one zone: `1 − (1 − sʳ)^ζ` (the S-curve).
    pub fn collision_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows_per_zone as i32)).powi(self.zones as i32)
    }
}

/// The per-zone bucket assignment of every skyline point.
#[derive(Debug, Clone)]
pub struct LshIndex {
    zones: usize,
    buckets: usize,
    /// `m × zones`, row-major per point.
    assignment: Vec<u32>,
    /// The explicit `ζ·B`-bit vectors of every point, packed row-major
    /// into `m × words_per_point` words — materialised only when they
    /// are at most half the size of the `u32` assignment (small `B`),
    /// so `hamming` runs word-at-a-time popcounts over XOR-ed lanes
    /// instead of comparing `ζ` bucket ids. `None` for large `B`, where
    /// the bit-vectors would rival or dwarf the assignment and the
    /// `u32` agreement kernel stays the faster representation.
    packed: Option<Vec<u64>>,
    /// Words per packed bit-vector: `⌈ζ·B / 64⌉`.
    words_per_point: usize,
}

impl LshIndex {
    /// Hashes every signature zone into one of `buckets` buckets.
    pub fn build(
        sig: &SignatureMatrix,
        params: LshParams,
        buckets: usize,
        seed: u64,
    ) -> Result<Self> {
        if buckets == 0 {
            return Err(SkyDiverError::ZeroBuckets);
        }
        let m = sig.m();
        let (z, r) = (params.zones, params.rows_per_zone);
        if z * r > sig.t() {
            return Err(SkyDiverError::BandingExceedsSignature {
                zones: z,
                rows_per_zone: r,
                t: sig.t(),
            });
        }
        let mut assignment = Vec::with_capacity(m * z);
        for j in 0..m {
            // lint: allow(R2) -- one bounded m·ζ hashing pass at index
            // build; the caller's fingerprint phase has already charged
            // the budget for every row
            let col = sig.column(j);
            for zone in 0..z {
                let slice = &col[zone * r..(zone + 1) * r];
                let h = hash_zone(slice, zone as u64, seed);
                assignment.push((h % buckets as u64) as u32);
            }
        }
        let words_per_point = (z * buckets).div_ceil(64);
        // Pack iff the bit-vectors are at most *half* the assignment
        // (8·wpp ≤ 2·ζ bytes per point, i.e. B ≲ 16): below that the
        // word-at-a-time XOR-popcount rows stream strictly less memory
        // than the ζ-wide u32 agreement kernel and measure faster;
        // at the old break-even point (bit-vectors == assignment bytes)
        // the SWAR popcounts already *lose* to the vectorised compares,
        // so equality of memory is not worth the extra resident bytes.
        let packed = if words_per_point * 4 <= z {
            let mut bits = vec![0u64; m * words_per_point];
            for (j, row) in assignment.chunks_exact(z.max(1)).enumerate() {
                // lint: allow(R2) -- bounded m·ζ bit-set pass at index
                // build, strictly cheaper than the hashing pass above
                let base = j * words_per_point;
                for (zone, &b) in row.iter().enumerate() {
                    let pos = zone * buckets + b as usize;
                    bits[base + pos / 64] |= 1 << (pos % 64);
                }
            }
            Some(bits)
        } else {
            None
        };
        Ok(LshIndex {
            zones: z,
            buckets,
            assignment,
            packed,
            words_per_point,
        })
    }

    /// Number of skyline points.
    pub fn len(&self) -> usize {
        self.assignment.len().checked_div(self.zones).unwrap_or(0)
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of zones `ζ`.
    pub fn zones(&self) -> usize {
        self.zones
    }

    /// Buckets per zone `B`.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Bucket of point `j` in `zone`.
    pub fn bucket(&self, j: usize, zone: usize) -> u32 {
        self.assignment[j * self.zones + zone]
    }

    /// The per-zone bucket assignments of point `j` (length `ζ`) — the
    /// kernel entry point for callers that hoist the row fetch out of an
    /// inner loop over partners.
    #[inline]
    pub fn zone_row(&self, j: usize) -> &[u32] {
        &self.assignment[j * self.zones..(j + 1) * self.zones]
    }

    /// Hamming distance between the bit-vector representations — twice
    /// the number of zones whose buckets disagree (each point sets
    /// exactly one bit per zone).
    ///
    /// When the packed bit-vectors are materialised this is a
    /// word-at-a-time `popcount(a ⊕ b)`; the two paths are exactly equal
    /// because each point sets one bit per zone, so every disagreeing
    /// zone contributes exactly two set bits to the XOR.
    #[inline]
    pub fn hamming(&self, i: usize, j: usize) -> u64 {
        if let Some(bits) = &self.packed {
            let w = self.words_per_point;
            let (a, b) = (&bits[i * w..(i + 1) * w], &bits[j * w..(j + 1) * w]);
            return a.iter().zip(b).map(|(&x, &y)| u64::from((x ^ y).count_ones())).sum();
        }
        Self::hamming_between(self.zone_row(i), self.zone_row(j), self.zones)
    }

    /// Batched one-vs-all Hamming distances: writes
    /// `hamming(i, lo + jj) as f64` into `out[jj]` for every
    /// `jj < out.len()`, streaming the packed bit-vectors when they are
    /// materialised and falling back to the zone-row agreement kernel
    /// otherwise. Bit-identical to per-pair [`LshIndex::hamming`].
    pub fn hamming_row_into(&self, i: usize, lo: usize, out: &mut [f64]) {
        if let Some(bits) = &self.packed {
            let w = self.words_per_point;
            let pivot = &bits[i * w..(i + 1) * w];
            for (jj, slot) in out.iter_mut().enumerate() {
                // lint: allow(R2) -- one O(m·wpp) pass per greedy round;
                // the selection round loop polls the budget
                let row = &bits[(lo + jj) * w..(lo + jj + 1) * w];
                let h: u64 = pivot.iter().zip(row).map(|(&x, &y)| u64::from((x ^ y).count_ones())).sum();
                *slot = h as f64;
            }
            return;
        }
        let row_i = self.zone_row(i);
        for (jj, slot) in out.iter_mut().enumerate() {
            // lint: allow(R2) -- same bounded per-round pass, unpacked
            // fallback for huge bucket counts
            *slot = Self::hamming_between(row_i, self.zone_row(lo + jj), self.zones) as f64;
        }
    }

    /// Hamming distance between two explicit zone rows.
    #[inline]
    pub fn hamming_between(a: &[u32], b: &[u32], zones: usize) -> u64 {
        debug_assert_eq!(a.len(), zones);
        debug_assert_eq!(b.len(), zones);
        2 * (zones - crate::kernels::agreement_count_u32(a, b)) as u64
    }

    /// The explicit `ζ·B`-bit vector of point `j` (Example 3 of the
    /// paper); exposed for inspection and tests.
    pub fn bit_vector(&self, j: usize) -> Vec<u64> {
        let bits = self.zones * self.buckets;
        let mut v = vec![0u64; bits.div_ceil(64)];
        // lint: allow(R2) -- O(ζ) bit sets for one inspected point
        for zone in 0..self.zones {
            let pos = zone * self.buckets + self.bucket(j, zone) as usize;
            v[pos / 64] |= 1 << (pos % 64);
        }
        v
    }

    /// Exact bytes resident in the index: the `u32` zone assignment plus
    /// the packed `ζ·B`-bit vectors when those are materialised — the
    /// LSH side of the Figure 13 memory comparison, reported as what the
    /// process actually holds rather than the idealised `m·ζ·B/8`.
    pub fn memory_bytes(&self) -> usize {
        let packed_bytes = self
            .packed
            .as_ref()
            .map_or(0, |bits| bits.len() * std::mem::size_of::<u64>());
        self.assignment.len() * std::mem::size_of::<u32>() + packed_bytes
    }
}

/// FNV-1a-style mix of a zone's signature slots, salted by zone & seed.
fn hash_zone(slots: &[u64], zone: u64, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= zone.wrapping_mul(0xff51_afd7_ed55_8ccd);
    // lint: allow(R2) -- O(r) mixing of one zone's slots, r ≤ t
    for &s in slots {
        h ^= s;
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
    }
    // final avalanche
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_factorisation_examples() {
        // t = 100: the classic banding table.
        let p = LshParams::from_threshold(100, 0.4).unwrap();
        assert_eq!((p.zones, p.rows_per_zone), (25, 4));
        let p = LshParams::from_threshold(100, 0.2).unwrap();
        assert_eq!((p.zones, p.rows_per_zone), (50, 2));
        // Higher thresholds use fewer zones → less memory.
        let lo = LshParams::from_threshold(100, 0.1).unwrap();
        let hi = LshParams::from_threshold(100, 0.8).unwrap();
        assert!(hi.zones < lo.zones);
    }

    #[test]
    fn collision_curve_is_sigmoidal() {
        let p = LshParams {
            zones: 20,
            rows_per_zone: 5,
        };
        assert!(p.collision_probability(0.1) < 0.01);
        assert!(p.collision_probability(0.9) > 0.99);
        let t = p.threshold();
        let mid = p.collision_probability(t);
        assert!(mid > 0.3 && mid < 0.9, "threshold sits on the ramp: {mid}");
    }

    fn toy_sig() -> SignatureMatrix {
        let mut sig = SignatureMatrix::new(6, 3);
        sig.update_column(0, &[1, 2, 3, 4, 5, 6]);
        sig.update_column(1, &[1, 2, 3, 9, 9, 9]); // shares zone 0 with col 0 (r=3)
        sig.update_column(2, &[7, 7, 7, 8, 8, 8]);
        sig
    }

    #[test]
    fn identical_zones_share_buckets() {
        let sig = toy_sig();
        let params = LshParams {
            zones: 2,
            rows_per_zone: 3,
        };
        let idx = LshIndex::build(&sig, params, 16, 1).unwrap();
        assert_eq!(idx.bucket(0, 0), idx.bucket(1, 0), "equal slices collide");
        assert_eq!(idx.hamming(0, 0), 0);
        // Points 0 and 1 agree on zone 0 → Hamming ≤ 2.
        assert!(idx.hamming(0, 1) <= 2);
    }

    #[test]
    fn hamming_is_twice_zone_mismatches() {
        let sig = toy_sig();
        let params = LshParams {
            zones: 3,
            rows_per_zone: 2,
        };
        let idx = LshIndex::build(&sig, params, 1 << 16, 2).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mism = (0..3).filter(|&z| idx.bucket(i, z) != idx.bucket(j, z)).count();
                assert_eq!(idx.hamming(i, j), 2 * mism as u64);
            }
        }
    }

    #[test]
    fn bit_vectors_have_one_bit_per_zone() {
        let sig = toy_sig();
        let params = LshParams {
            zones: 2,
            rows_per_zone: 3,
        };
        let idx = LshIndex::build(&sig, params, 12, 3).unwrap();
        for j in 0..3 {
            let ones: u32 = idx.bit_vector(j).iter().map(|w| w.count_ones()).sum();
            assert_eq!(ones, 2, "L1 norm equals ζ (paper §4.2.2)");
        }
        // Hamming via explicit vectors matches the fast path.
        let hv = |j: usize| idx.bit_vector(j);
        let slow = hv(0)
            .iter()
            .zip(hv(1))
            .map(|(a, b)| (a ^ b).count_ones() as u64)
            .sum::<u64>();
        assert_eq!(slow, idx.hamming(0, 1));
    }

    #[test]
    fn memory_accounting() {
        let sig = SignatureMatrix::new(100, 40);
        let params = LshParams::from_threshold(100, 0.2).unwrap();
        let idx = LshIndex::build(&sig, params, 12, 4).unwrap();
        // Exact resident bytes: the u32 assignment (40 · 50 · 4) plus
        // the packed bit-vectors (ζ·B = 600 bits → 10 words per point,
        // 40 · 10 · 8 bytes; the pack gate holds: 10 · 4 ≤ 50).
        assert_eq!((50 * 12usize).div_ceil(64), 10);
        assert_eq!(idx.memory_bytes(), 40 * 50 * 4 + 40 * 10 * 8);
        assert!(idx.memory_bytes() < sig.memory_bytes());
        // Above the gate the bit-vectors are skipped and the resident
        // bytes are the assignment alone.
        let params = LshParams::from_threshold(100, 0.2).unwrap();
        let big = LshIndex::build(&sig, params, 20, 4).unwrap();
        assert_eq!(big.memory_bytes(), 40 * 50 * 4);
    }

    #[test]
    fn packed_and_unpacked_hamming_agree() {
        let mut sig = SignatureMatrix::new(8, 9);
        for j in 0..9 {
            let vals: Vec<u64> = (0..8).map(|i| ((j * i + 2 * j) % 6) as u64).collect();
            sig.update_column(j, &vals);
        }
        let params = LshParams {
            zones: 4,
            rows_per_zone: 2,
        };
        // Small B packs; huge B falls back to the u32 agreement kernel.
        let packed = LshIndex::build(&sig, params, 16, 11).unwrap();
        let unpacked = LshIndex::build(&sig, params, 1 << 16, 11).unwrap();
        let mut row = [0.0f64; 9];
        for idx in [&packed, &unpacked] {
            for i in 0..9 {
                for lo in 0..9 {
                    let out = &mut row[..9 - lo];
                    idx.hamming_row_into(i, lo, out);
                    for (jj, &d) in out.iter().enumerate() {
                        assert_eq!(d, idx.hamming(i, lo + jj) as f64);
                        // Cross-check against the explicit bit-vector
                        // XOR-popcount reference.
                        let slow: u64 = idx
                            .bit_vector(i)
                            .iter()
                            .zip(idx.bit_vector(lo + jj))
                            .map(|(a, b)| u64::from((a ^ b).count_ones()))
                            .sum();
                        assert_eq!(d, slow as f64);
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_builder_inputs_are_errors_not_panics() {
        // Threshold outside [0, 1] — including NaN — is a typed error.
        for xi in [-0.1, 1.1, f64::NAN] {
            assert!(matches!(
                LshParams::from_threshold(100, xi),
                Err(SkyDiverError::InvalidLshThreshold { .. })
            ));
        }
        // t = 1 admits only the degenerate 1 × 1 banding.
        assert_eq!(
            LshParams::from_threshold(1, 0.5).unwrap_err(),
            SkyDiverError::NoLshFactorisation { t: 1 }
        );
        // Banding larger than the signature is a typed error.
        let sig = SignatureMatrix::new(4, 2);
        let params = LshParams {
            zones: 3,
            rows_per_zone: 2,
        };
        assert_eq!(
            LshIndex::build(&sig, params, 8, 0).unwrap_err(),
            SkyDiverError::BandingExceedsSignature {
                zones: 3,
                rows_per_zone: 2,
                t: 4
            }
        );
    }

    #[test]
    fn zero_buckets_rejected() {
        let sig = SignatureMatrix::new(4, 1);
        let params = LshParams {
            zones: 2,
            rows_per_zone: 2,
        };
        assert_eq!(
            LshIndex::build(&sig, params, 0, 0).unwrap_err(),
            SkyDiverError::ZeroBuckets
        );
    }

    #[test]
    fn empirical_collision_rate_tracks_the_s_curve() {
        // Build many signature pairs with a known agreement fraction s
        // and check that the measured any-zone collision rate matches
        // 1 − (1 − s^r)^ζ within statistical tolerance.
        let (zones, r) = (10usize, 2usize);
        let t = zones * r;
        let params = LshParams {
            zones,
            rows_per_zone: r,
        };
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x15AC_0111);
        for s in [0.3f64, 0.6, 0.9] {
            let trials = 600;
            let mut collided = 0usize;
            for trial in 0..trials {
                let mut sig = SignatureMatrix::new(t, 2);
                // Column 0: unique values; column 1 agrees on each slot
                // independently with probability s (the MinHash model).
                let base: Vec<u64> = (0..t).map(|i| (trial * 1000 + i) as u64).collect();
                let other: Vec<u64> = base
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if rng.gen_bool(s) {
                            v
                        } else {
                            (500_000 + trial * 1000 + i) as u64
                        }
                    })
                    .collect();
                sig.update_column(0, &base);
                sig.update_column(1, &other);
                let idx = LshIndex::build(&sig, params, 1 << 20, trial as u64).unwrap();
                if (0..zones).any(|z| idx.bucket(0, z) == idx.bucket(1, z)) {
                    collided += 1;
                }
            }
            let expect = params.collision_probability(s);
            let got = collided as f64 / trials as f64;
            // se ≈ sqrt(p(1-p)/600) ≤ 0.021; allow 5σ plus a little for
            // the tiny accidental-bucket-collision rate.
            assert!(
                (got - expect).abs() < 0.11,
                "s={s}: measured {got}, curve {expect}"
            );
        }
        // Monotonicity of the curve itself.
        assert!(params.collision_probability(0.9) > params.collision_probability(0.3));
    }

    #[test]
    fn triangle_inequality_of_hamming() {
        let mut sig = SignatureMatrix::new(8, 5);
        for j in 0..5 {
            let vals: Vec<u64> = (0..8).map(|i| ((j * i) % 4) as u64).collect();
            sig.update_column(j, &vals);
        }
        let params = LshParams {
            zones: 4,
            rows_per_zone: 2,
        };
        let idx = LshIndex::build(&sig, params, 8, 5).unwrap();
        for a in 0..5 {
            for b in 0..5 {
                for c in 0..5 {
                    assert!(idx.hamming(a, c) <= idx.hamming(a, b) + idx.hamming(b, c));
                }
            }
        }
    }
}
