//! Dynamic (continuous) diversification.
//!
//! The paper adopts the dispersion view of diversity from Drosou &
//! Pitoura (EDBT'12, reference \[13\]), who study the *dynamic* case:
//! items arrive and expire, and the k-diverse set must be maintained
//! without recomputing from scratch. This module brings that setting to
//! SkyDiver: skyline points arrive with their MinHash signatures (e.g.
//! produced incrementally by a streaming skyline) and a
//! [`DynamicDiversifier`] maintains a k-set under the estimated Jaccard
//! distance with an interchange (local-swap) heuristic — the standard
//! approach for dynamic max–min dispersion.

use crate::minhash::SignatureMatrix;

/// Maintains the k most diverse points under insertions and removals.
///
/// Distances are estimated Jaccard distances between stored MinHash
/// signatures. Each insertion costs `O(k · t)` for the distance
/// computations plus `O(k²)` for the swap check; removals trigger a
/// greedy repair over the archive.
#[derive(Debug, Clone)]
pub struct DynamicDiversifier {
    k: usize,
    t: usize,
    /// Signature per known point (the archive).
    columns: Vec<Vec<u64>>,
    scores: Vec<u64>,
    alive: Vec<bool>,
    selected: Vec<usize>,
}

impl DynamicDiversifier {
    /// A diversifier targeting `k` points with signature size `t`.
    ///
    /// # Panics
    /// Panics if `k < 2` or `t == 0`.
    pub fn new(k: usize, t: usize) -> Self {
        assert!(k >= 2, "k must be at least 2");
        assert!(t > 0, "signature size must be positive");
        DynamicDiversifier {
            k,
            t,
            columns: Vec::new(),
            scores: Vec::new(),
            alive: Vec::new(),
            selected: Vec::new(),
        }
    }

    /// Number of points ever inserted (alive or not).
    pub fn archive_len(&self) -> usize {
        self.columns.len()
    }

    /// The current diverse selection (internal ids in insertion order).
    pub fn current(&self) -> &[usize] {
        &self.selected
    }

    /// Minimum pairwise estimated distance of the current selection
    /// (`∞` when fewer than two points are selected).
    pub fn min_diversity(&self) -> f64 {
        let mut best = f64::INFINITY;
        for (a, &i) in self.selected.iter().enumerate() {
            for &j in &self.selected[a + 1..] {
                best = best.min(self.dist(i, j));
            }
        }
        best
    }

    /// Inserts a point (its signature column and domination score);
    /// returns its internal id. The selection is updated in place.
    ///
    /// # Panics
    /// Panics if the signature length differs from `t`.
    pub fn insert(&mut self, signature: Vec<u64>, score: u64) -> usize {
        assert_eq!(signature.len(), self.t, "signature size mismatch");
        let id = self.columns.len();
        self.columns.push(signature);
        self.scores.push(score);
        self.alive.push(true);
        if self.selected.len() < self.k {
            self.selected.push(id);
        } else {
            self.try_swap_in(id);
        }
        id
    }

    /// Replaces a point's signature and score in place. In continuous
    /// settings a surviving skyline point's dominated set — hence its
    /// signature — keeps growing as new rows arrive; callers push the
    /// refreshed column here and may run [`DynamicDiversifier::reselect`]
    /// periodically to re-optimise against the drift.
    ///
    /// # Panics
    /// Panics on a signature-size mismatch or an unknown id.
    pub fn update(&mut self, id: usize, signature: Vec<u64>, score: u64) {
        assert_eq!(signature.len(), self.t, "signature size mismatch");
        assert!(id < self.columns.len(), "unknown point id {id}");
        self.columns[id] = signature;
        self.scores[id] = score;
    }

    /// Removes a point (e.g. it expired from the window). If it was
    /// selected, the selection is repaired greedily from the archive.
    pub fn remove(&mut self, id: usize) {
        if id >= self.alive.len() || !self.alive[id] {
            return;
        }
        self.alive[id] = false;
        if let Some(pos) = self.selected.iter().position(|&s| s == id) {
            self.selected.swap_remove(pos);
            self.refill();
        }
    }

    /// Rebuilds the selection from scratch with the greedy heuristic
    /// over all alive points (useful as a periodic re-optimisation).
    pub fn reselect(&mut self) {
        self.selected.clear();
        self.refill();
    }

    fn dist(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.columns[i], &self.columns[j]);
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
        1.0 - agree as f64 / self.t as f64
    }

    /// Interchange step: admit `id` if swapping it for one selected
    /// member improves the max–min objective.
    fn try_swap_in(&mut self, id: usize) {
        let current = self.min_diversity();
        let mut best: Option<(f64, usize)> = None; // (new min, victim pos)
        for victim in 0..self.selected.len() {
            let mut new_min = f64::INFINITY;
            for (a, &i) in self.selected.iter().enumerate() {
                if a == victim {
                    continue;
                }
                new_min = new_min.min(self.dist(i, id));
                for &j in self.selected.iter().skip(a + 1) {
                    if self.selected[victim] == j {
                        continue;
                    }
                    new_min = new_min.min(self.dist(i, j));
                }
            }
            if new_min > current {
                let better = match best {
                    None => true,
                    Some((b, _)) => new_min > b,
                };
                if better {
                    best = Some((new_min, victim));
                }
            }
        }
        if let Some((_, victim)) = best {
            self.selected[victim] = id;
        }
    }

    /// Greedy refill up to `k` from alive, non-selected archive points.
    fn refill(&mut self) {
        while self.selected.len() < self.k {
            let mut best: Option<(f64, u64, usize)> = None;
            for id in 0..self.columns.len() {
                if !self.alive[id] || self.selected.contains(&id) {
                    continue;
                }
                let d = if self.selected.is_empty() {
                    f64::INFINITY
                } else {
                    self.selected
                        .iter()
                        .map(|&s| self.dist(id, s))
                        .fold(f64::INFINITY, f64::min)
                };
                let key = (d, self.scores[id], id);
                let better = match best {
                    None => true,
                    Some((bd, bs, _)) => d > bd || (d == bd && self.scores[id] > bs),
                };
                if better {
                    best = Some((key.0, key.1, id));
                }
            }
            match best {
                Some((_, _, id)) => self.selected.push(id),
                None => break, // fewer alive points than k
            }
        }
    }
}

/// Convenience: seed a [`DynamicDiversifier`] from an existing batch
/// fingerprint (all columns inserted in order).
pub fn from_batch(matrix: &SignatureMatrix, scores: &[u64], k: usize) -> DynamicDiversifier {
    let mut d = DynamicDiversifier::new(k, matrix.t());
    for (j, &score) in scores.iter().enumerate().take(matrix.m()) {
        d.insert(matrix.column(j).to_vec(), score);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Signatures engineered so that distances are controllable:
    /// identical prefixes share slots.
    fn sig(t: usize, tag: u64, shared: usize) -> Vec<u64> {
        // `shared` leading slots equal to 1; the rest unique per tag.
        (0..t)
            .map(|i| if i < shared { 1 } else { 1000 + tag * 100 + i as u64 })
            .collect()
    }

    #[test]
    fn fills_to_k_then_swaps_for_improvement() {
        let t = 10;
        let mut d = DynamicDiversifier::new(2, t);
        // Two near-duplicates (90 % agreement).
        let a = d.insert(sig(t, 1, 9), 5);
        let _b = d.insert(sig(t, 2, 9), 4);
        assert_eq!(d.current().len(), 2);
        let before = d.min_diversity();
        assert!(before < 0.2, "near-duplicates: {before}");
        // A fully distinct point must swap in.
        let c = d.insert(sig(t, 3, 0), 3);
        assert!(d.min_diversity() > before);
        assert!(d.current().contains(&c));
        // One of the duplicates survives.
        assert!(d.current().contains(&a) || d.current().len() == 2);
    }

    #[test]
    fn rejects_non_improving_points() {
        let t = 10;
        let mut d = DynamicDiversifier::new(2, t);
        d.insert(sig(t, 1, 0), 1);
        d.insert(sig(t, 2, 0), 1);
        let before = d.min_diversity();
        assert_eq!(before, 1.0);
        // A clone of point 1 cannot improve anything.
        let clone = d.insert(sig(t, 1, 0), 9);
        assert!(!d.current().contains(&clone));
        assert_eq!(d.min_diversity(), before);
    }

    #[test]
    fn removal_triggers_repair_from_archive() {
        let t = 10;
        let mut d = DynamicDiversifier::new(2, t);
        let a = d.insert(sig(t, 1, 0), 1);
        let b = d.insert(sig(t, 2, 0), 1);
        let c = d.insert(sig(t, 3, 0), 1); // archive only (no improvement)
        let in_set = d.current().to_vec();
        assert_eq!(in_set.len(), 2);
        // Remove a selected member; the archived point must refill.
        let victim = in_set[0];
        d.remove(victim);
        assert_eq!(d.current().len(), 2);
        assert!(!d.current().contains(&victim));
        let members: std::collections::HashSet<usize> = d.current().iter().copied().collect();
        assert!(members.is_subset(&[a, b, c].into_iter().collect()));
    }

    #[test]
    fn update_changes_distances_in_place() {
        let t = 10;
        let mut d = DynamicDiversifier::new(2, t);
        let a = d.insert(sig(t, 1, 0), 1);
        let _b = d.insert(sig(t, 2, 0), 1);
        assert_eq!(d.min_diversity(), 1.0);
        // Morph a into a clone of b: diversity collapses.
        d.update(a, sig(t, 2, 0), 1);
        assert_eq!(d.min_diversity(), 0.0);
        // A later distinct arrival swaps the redundancy away again.
        d.insert(sig(t, 7, 0), 1);
        assert_eq!(d.min_diversity(), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown point id")]
    fn update_unknown_id_panics() {
        let mut d = DynamicDiversifier::new(2, 4);
        d.update(3, vec![0; 4], 0);
    }

    #[test]
    fn removing_unselected_or_unknown_is_noop() {
        let t = 4;
        let mut d = DynamicDiversifier::new(2, t);
        d.insert(sig(t, 1, 0), 1);
        d.insert(sig(t, 2, 0), 1);
        let extra = d.insert(sig(t, 1, 0), 1); // clone, unselected
        let before = d.current().to_vec();
        d.remove(extra);
        d.remove(9999);
        assert_eq!(d.current(), before.as_slice());
    }

    #[test]
    fn dynamic_tracks_batch_greedy_quality() {
        use crate::dispersion::{select_diverse, SeedRule, TieBreak};
        use crate::diversity::SignatureDistance;
        use crate::minhash::{sig_gen_if, HashFamily};
        use skydiver_data::dominance::MinDominance;
        use skydiver_data::generators::anticorrelated;
        use skydiver_skyline::naive_skyline;

        let ds = anticorrelated(3000, 3, 190);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(64, 191);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);

        let k = 5.min(sky.len());
        // Batch greedy.
        let mut dist = SignatureDistance::new(&out.matrix);
        let batch = select_diverse(&mut dist, &out.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
            .unwrap();
        let batch_div = crate::dispersion::min_pairwise(&mut dist, &batch);

        // Dynamic: stream the skyline points in index order.
        let mut dynamic = DynamicDiversifier::new(k, 64);
        for j in 0..sky.len() {
            dynamic.insert(out.matrix.column(j).to_vec(), out.scores[j]);
        }
        let dyn_div = dynamic.min_diversity();
        assert!(
            dyn_div >= 0.5 * batch_div,
            "dynamic {dyn_div} too far below batch {batch_div}"
        );
    }

    #[test]
    #[should_panic(expected = "signature size mismatch")]
    fn wrong_signature_size_panics() {
        let mut d = DynamicDiversifier::new(2, 8);
        d.insert(vec![1, 2, 3], 0);
    }

    #[test]
    fn removing_a_selected_point_reselects_correctly() {
        let t = 10;
        let k = 3;
        let mut d = DynamicDiversifier::new(k, t);
        // Five mutually distinct points; three get selected, two archive.
        let ids: Vec<usize> = (0..5).map(|i| d.insert(sig(t, i as u64, 0), i as u64)).collect();
        assert_eq!(d.current().len(), k);
        // Remove selected members one at a time; each repair must keep the
        // selection maximal, unique and alive-only.
        let mut removed = std::collections::HashSet::new();
        for _ in 0..3 {
            let victim = d.current()[0];
            d.remove(victim);
            removed.insert(victim);
            let alive: Vec<usize> =
                ids.iter().copied().filter(|id| !removed.contains(id)).collect();
            let members: std::collections::HashSet<usize> =
                d.current().iter().copied().collect();
            assert_eq!(members.len(), d.current().len(), "duplicate ids in selection");
            assert_eq!(d.current().len(), k.min(alive.len()), "selection not refilled");
            assert!(
                members.iter().all(|m| alive.contains(m)),
                "selection {members:?} holds removed ids (removed {removed:?})"
            );
            // All five are mutually distinct (distance 1), so the repaired
            // selection must stay at full diversity.
            assert_eq!(d.min_diversity(), 1.0);
        }
    }

    #[test]
    fn insert_after_remove_never_reuses_ids() {
        let t = 8;
        let mut d = DynamicDiversifier::new(2, t);
        let a = d.insert(sig(t, 1, 0), 1);
        let b = d.insert(sig(t, 2, 0), 1);
        d.remove(a);
        // A new arrival — even one with the dead point's exact signature —
        // must get a fresh id, never resurrect `a`.
        let c = d.insert(sig(t, 1, 0), 1);
        assert!(c > b, "ids are monotone; removal must not free slots");
        assert_eq!(d.archive_len(), 3);
        assert!(!d.current().contains(&a), "dead id back in the selection");
        assert!(d.current().contains(&c));
        assert_eq!(d.min_diversity(), 1.0);
        // And removing the dead id again stays a no-op.
        let before = d.current().to_vec();
        d.remove(a);
        assert_eq!(d.current(), before.as_slice());
    }

    #[test]
    fn remove_all_then_reinsert_recovers() {
        let t = 8;
        let mut d = DynamicDiversifier::new(3, t);
        let ids: Vec<usize> = (0..4).map(|i| d.insert(sig(t, i as u64, 0), 1)).collect();
        for &id in &ids {
            d.remove(id);
        }
        assert!(d.current().is_empty(), "empty window must empty the selection");
        assert_eq!(d.min_diversity(), f64::INFINITY);
        // Fresh arrivals rebuild the selection from nothing.
        let fresh: Vec<usize> = (10..13).map(|i| d.insert(sig(t, i as u64, 0), 1)).collect();
        assert_eq!(d.current().len(), 3);
        let members: std::collections::HashSet<usize> = d.current().iter().copied().collect();
        assert_eq!(members, fresh.iter().copied().collect());
    }

    #[test]
    fn random_churn_preserves_selection_invariants() {
        let t = 12;
        let k = 4;
        let mut d = DynamicDiversifier::new(k, t);
        let mut alive: Vec<usize> = Vec::new();
        let mut rng: u64 = 0x5eed_cafe;
        let mut next = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        for step in 0..400 {
            match next() % 10 {
                // 60 % inserts, 30 % removals, 10 % full reselects.
                0..=5 => {
                    let tag = next();
                    let shared = (next() % t as u64) as usize;
                    let id = d.insert(sig(t, tag, shared), next() % 100);
                    alive.push(id);
                }
                6..=8 if !alive.is_empty() => {
                    let victim = alive.swap_remove((next() % alive.len() as u64) as usize);
                    d.remove(victim);
                }
                _ => d.reselect(),
            }
            let members: std::collections::HashSet<usize> =
                d.current().iter().copied().collect();
            assert_eq!(members.len(), d.current().len(), "step {step}: duplicate ids");
            assert_eq!(
                d.current().len(),
                k.min(alive.len()),
                "step {step}: selection size vs {} alive",
                alive.len()
            );
            assert!(
                members.iter().all(|m| alive.contains(m)),
                "step {step}: selection holds dead ids"
            );
        }
    }
}
