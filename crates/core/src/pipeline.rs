//! The end-to-end SkyDiver pipeline: fingerprint, then select.
//!
//! [`SkyDiver`] is the builder-style entry point a downstream user
//! reaches for: configure `k`, the signature size, MinHash vs LSH and
//! optional parallelism; then run it index-free over a dataset
//! ([`SkyDiver::run`]), index-based over an aggregate R*-tree
//! ([`SkyDiver::run_index_based`]), with automatic index-free fallback
//! ([`SkyDiver::run_auto`]), or over a bare dominance graph
//! ([`SkyDiver::run_graph`]).
//!
//! # Resilient execution
//!
//! Every run can carry a [`RunBudget`] (wall-clock deadline, memory
//! ceiling, dominance-test ceiling, cancellation token). A tripped
//! budget does not discard completed work: the run returns a partial
//! [`DiverseResult`] whose [`Degradation`] report records which phase
//! stopped and what was curtailed. Because the greedy selection is
//! incremental, a selection-phase interrupt yields the exact prefix an
//! unbudgeted run would have selected; a fingerprint-phase interrupt
//! yields the skyline plus partial scores with an empty selection.

use std::sync::Arc;
use std::time::Instant;

use skydiver_data::{Dataset, Preference, ShardedDataset};
use skydiver_rtree::{
    BufferPool, FaultInjection, RTree, DEFAULT_CACHE_FRACTION, DEFAULT_PAGE_SIZE,
};
use skydiver_skyline::{bbs, sfs};

use crate::budget::{
    CancelToken, Degradation, DegradationEvent, ExecContext, ExecPhase, Interrupt, RunBudget,
    StopReason,
};
use crate::canonical::canonicalise;
use crate::dispersion::{
    select_diverse_budgeted, select_diverse_parallel_budgeted, SeedRule, TieBreak,
};
use crate::diversity::{LshDistance, SignatureDistance};
use crate::error::{Result, SkyDiverError};
use crate::graph::DominanceGraph;
use crate::lsh::{LshIndex, LshParams};
use crate::minhash::{
    sig_gen_if_budgeted, sig_gen_parallel_budgeted, HashFamily, ShardFingerprint, SigGenOutput,
    SignatureAccumulator, SignatureMatrix,
};

/// Which phase-2 representation drives the selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionMethod {
    /// Greedy dispersion over MinHash signatures (SkyDiver-MH).
    MinHash,
    /// Greedy dispersion over LSH bucket bit-vectors (SkyDiver-LSH):
    /// less memory, slightly lower accuracy (Figure 13).
    Lsh {
        /// Similarity threshold `ξ` governing the banding `ζ·r ≤ t`.
        threshold: f64,
        /// Buckets per zone `B`.
        buckets: usize,
    },
}

/// The reusable phase-1 artefact: skyline, signature matrix and
/// domination scores for one `(dataset, preferences, t, seed)`
/// configuration.
///
/// Produced by [`SkyDiver::fingerprint`] and consumed — any number of
/// times, with any `k`, selection method or budget — by
/// [`SkyDiver::select_from`]. This is the unit a serving layer caches:
/// fingerprinting costs one `O(n · m)` pass over the data, while each
/// selection touches only the `t × m` matrix.
///
/// A `Fingerprint` may be *partial* when the producing run carried a
/// budget that tripped mid-pass ([`Fingerprint::is_complete`] is then
/// `false`); selecting from a partial fingerprint yields the same
/// partial [`DiverseResult`] the one-shot [`SkyDiver::run`] would have
/// returned. Caches should only retain complete fingerprints.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    /// Skyline point indices into the input dataset (ascending).
    pub skyline: Vec<usize>,
    /// Signature matrix plus exact domination scores `|Γ(p)|`.
    pub output: SigGenOutput,
    /// Wall-clock milliseconds spent fingerprinting.
    pub fingerprint_ms: f64,
    /// Degradation steps taken while fingerprinting (e.g. the signature
    /// size shrunk to fit a memory ceiling).
    pub events: Vec<DegradationEvent>,
    /// The budget trip that curtailed fingerprinting, if any.
    pub interrupt: Option<Interrupt>,
}

impl Fingerprint {
    /// `true` when fingerprinting ran to completion (the artefact is
    /// safe to cache and reuse).
    pub fn is_complete(&self) -> bool {
        self.interrupt.is_none()
    }

    /// Skyline cardinality `m`.
    pub fn m(&self) -> usize {
        self.skyline.len()
    }

    /// The signature matrix.
    pub fn matrix(&self) -> &SignatureMatrix {
        &self.output.matrix
    }

    /// Domination scores `|Γ(p)|` per skyline point.
    pub fn scores(&self) -> &[u64] {
        &self.output.scores
    }

    /// Resident bytes of the artefact: signature matrix plus the score
    /// and skyline vectors (what a cache should charge against its
    /// ceiling).
    pub fn memory_bytes(&self) -> usize {
        self.output.matrix.memory_bytes()
            + self.output.scores.len() * std::mem::size_of::<u64>()
            + self.skyline.len() * std::mem::size_of::<usize>()
    }
}

/// Result of a sharded fingerprinting run
/// ([`SkyDiver::fingerprint_sharded`]): the assembled whole-dataset
/// [`Fingerprint`] plus the per-shard folds it was merged from and the
/// reuse/cost counters a serving layer reports.
#[derive(Debug, Clone)]
pub struct ShardedFingerprintRun {
    /// The assembled fingerprint — bit-identical (matrix, scores) to
    /// what [`SkyDiver::fingerprint`] computes over the concatenated
    /// shards.
    pub fingerprint: Fingerprint,
    /// One complete fold per shard, in shard order, ready for a
    /// per-`(dataset, shard, prefs, t, seed)` cache. Empty when the run
    /// was curtailed by a budget trip: partial folds are never cached.
    pub shards: Vec<Arc<ShardFingerprint>>,
    /// How many shards were served entirely from the supplied cache
    /// entries (no data rows scanned).
    pub reused_shards: usize,
    /// Data rows actually scanned (cache-served shard rows excluded).
    pub scanned_rows: usize,
    /// Dominance tests charged by this run — the counter behind the
    /// incremental-append cost contract: a warm append charges
    /// `O(a · m + n · |new skyline points|)`, not `O((n + a) · m)`.
    pub dominance_tests: u64,
}

/// Result of one diversification run.
#[derive(Debug, Clone)]
pub struct DiverseResult {
    /// Skyline point indices into the input dataset (ascending), or the
    /// left-node indices for graph inputs.
    pub skyline: Vec<usize>,
    /// Positions *within* `skyline` of the selected points, in
    /// selection order. Holds `k` entries for a complete run, fewer
    /// when the budget curtailed the selection (see `degradation`).
    pub selected_positions: Vec<usize>,
    /// Dataset indices of the selected points, in selection order.
    pub selected: Vec<usize>,
    /// Domination scores `|Γ(p)|` per skyline point. Partial (a prefix
    /// of the data counted) when fingerprinting was curtailed.
    pub scores: Vec<u64>,
    /// Bytes held by the phase-2 representation: the signature matrix
    /// plus the slot-major transpose the selection pass pins (MinHash),
    /// or the LSH zone assignment plus packed bit-vectors.
    pub memory_bytes: usize,
    /// Wall-clock milliseconds of the fingerprinting phase.
    pub fingerprint_ms: f64,
    /// Wall-clock milliseconds of the selection phase.
    pub selection_ms: f64,
    /// What, if anything, was curtailed or substituted during the run.
    /// [`Degradation::is_degraded`] is `false` for a complete run.
    pub degradation: Degradation,
}

impl DiverseResult {
    /// `true` when the run completed without budget trips or fallbacks.
    pub fn is_complete(&self) -> bool {
        !self.degradation.is_degraded()
    }
}

/// Builder for the SkyDiver pipeline.
#[derive(Debug, Clone)]
pub struct SkyDiver {
    k: usize,
    signature_size: usize,
    method: SelectionMethod,
    hash_seed: u64,
    seed_rule: SeedRule,
    tie_break: TieBreak,
    threads: usize,
    budget: RunBudget,
    lsh_minhash_fallback: bool,
    fault_injection: Option<FaultInjection>,
}

impl SkyDiver {
    /// A pipeline returning `k` diverse skyline points with the paper's
    /// defaults: signature size 100, MinHash selection, max-domination
    /// seeding and tie-breaking, sequential fingerprinting, no budget.
    pub fn new(k: usize) -> Self {
        SkyDiver {
            k,
            signature_size: 100,
            method: SelectionMethod::MinHash,
            hash_seed: 0,
            seed_rule: SeedRule::MaxDominance,
            tie_break: TieBreak::MaxDominance,
            threads: 1,
            budget: RunBudget::none(),
            lsh_minhash_fallback: false,
            fault_injection: None,
        }
    }

    /// Sets the signature size `t` (default 100, the paper's default).
    pub fn signature_size(mut self, t: usize) -> Self {
        self.signature_size = t;
        self
    }

    /// Selects with MinHash signatures (the default).
    pub fn minhash(mut self) -> Self {
        self.method = SelectionMethod::MinHash;
        self
    }

    /// Selects with LSH (threshold `ξ`, `buckets` per zone).
    pub fn lsh(mut self, threshold: f64, buckets: usize) -> Self {
        self.method = SelectionMethod::Lsh { threshold, buckets };
        self
    }

    /// Seeds the hash family (reproducibility).
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = seed;
        self
    }

    /// Overrides the selection seed rule (ablation).
    pub fn seed_rule(mut self, rule: SeedRule) -> Self {
        self.seed_rule = rule;
        self
    }

    /// Overrides the tie-break rule (ablation).
    pub fn tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Parallelises the pipeline over `threads` threads: the index-free
    /// pass is sharded by rows, the index-based pass partitions subtree
    /// frontiers, and the greedy selection scans candidates in chunks.
    /// Every parallel path is bit-identical to sequential (the paper's
    /// future-work item ii).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a [`RunBudget`]. A tripped budget returns a partial
    /// result with a [`Degradation`] report instead of an error.
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Convenience: attaches only a [`CancelToken`] (keeps any other
    /// budget limits already configured).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.budget = self.budget.with_cancel_token(token);
        self
    }

    /// Opt-in: when the requested LSH configuration admits no usable
    /// banding ([`SkyDiverError::NoLshFactorisation`]), fall back to
    /// MinHash selection instead of failing. The substitution is
    /// recorded as [`DegradationEvent::MinHashFallback`].
    pub fn lsh_minhash_fallback(mut self, enabled: bool) -> Self {
        self.lsh_minhash_fallback = enabled;
        self
    }

    /// Testing hook: injects deterministic page-read failures into the
    /// buffer pool of the index-based path (the pool is created
    /// internally, so the plan is configured here). The index-free path
    /// performs no page reads and ignores this.
    pub fn fault_injection(mut self, plan: FaultInjection) -> Self {
        self.fault_injection = Some(plan);
        self
    }

    /// Index-free run: canonicalise, compute the skyline (SFS), run
    /// `SigGen-IF`, select. Equivalent to [`SkyDiver::fingerprint`]
    /// followed by [`SkyDiver::select_from`], except that the budget
    /// (deadline, cancellation) spans both phases as one run.
    pub fn run(&self, ds: &Dataset, prefs: &[Preference]) -> Result<DiverseResult> {
        let ctx = ExecContext::new(self.budget.clone());
        let fp = self.fingerprint_ctx(ds, prefs, &ctx)?;
        self.select_from_ctx(&fp, &ctx)
    }

    /// Phase 1 only: canonicalise, compute the skyline (SFS) and run
    /// `SigGen-IF`, returning the reusable [`Fingerprint`] without
    /// selecting anything. `k` plays no role in this phase; the same
    /// artefact answers any subsequent [`SkyDiver::select_from`] with
    /// any `k` or selection method — the contract a signature cache
    /// relies on.
    pub fn fingerprint(&self, ds: &Dataset, prefs: &[Preference]) -> Result<Fingerprint> {
        let ctx = ExecContext::new(self.budget.clone());
        self.fingerprint_ctx(ds, prefs, &ctx)
    }

    /// Phase 1 over a [`ShardedDataset`]: the skyline is computed over
    /// the whole data, then each shard is folded independently into a
    /// [`ShardFingerprint`] and the folds are merged — bit-identical
    /// (matrix, scores) to [`SkyDiver::fingerprint`] over the
    /// concatenated shards, because row ids are global in every shard
    /// and MinHash folds merge associatively.
    pub fn fingerprint_sharded(
        &self,
        sd: &ShardedDataset,
        prefs: &[Preference],
    ) -> Result<ShardedFingerprintRun> {
        self.fingerprint_sharded_with(sd, prefs, &[])
    }

    /// [`SkyDiver::fingerprint_sharded`] with cached per-shard folds.
    ///
    /// `cached[i]`, when present, must be a *complete* fold of shard `i`
    /// in the same canonical space (same preferences) and with the same
    /// hash seed; entries with a mismatched signature size are ignored.
    /// For each shard the run then reuses every cached column whose
    /// skyline point is still in the current skyline and scans **only**
    /// the columns the cache lacks — the incremental `APPEND` warm path:
    /// appending `a` rows to `n` costs `O(a · m + n · |new skyline
    /// points|)` dominance tests instead of `O((n + a) · m)`. Reuse is
    /// exact, not approximate: a surviving skyline point's fold over an
    /// old shard cannot change, since skyline members never dominate one
    /// another (so demoted members contributed nothing to surviving
    /// columns) and newly-exposed skyline points exist only in the new
    /// shard.
    ///
    /// A budget trip mid-scan returns a partial
    /// [`Fingerprint`] exactly like [`SkyDiver::fingerprint`] and an
    /// empty `shards` vector — partial folds must never be cached.
    pub fn fingerprint_sharded_with(
        &self,
        sd: &ShardedDataset,
        prefs: &[Preference],
        cached: &[Option<Arc<ShardFingerprint>>],
    ) -> Result<ShardedFingerprintRun> {
        if self.signature_size == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        let ctx = ExecContext::new(self.budget.clone());
        let whole: std::borrow::Cow<'_, Dataset> = if sd.num_shards() == 1 {
            std::borrow::Cow::Borrowed(sd.shard(0))
        } else {
            std::borrow::Cow::Owned(sd.concat())
        };
        let canon = canonicalise(&whole, prefs)?;
        let ord = skydiver_data::dominance::MinDominance;
        let partial = |fingerprint: Fingerprint, scanned_rows: usize| ShardedFingerprintRun {
            fingerprint,
            shards: vec![],
            reused_shards: 0,
            scanned_rows,
            dominance_tests: ctx.dominance_tests(),
        };
        if let Err(int) = ctx.check(ExecPhase::Skyline) {
            return Ok(partial(
                Fingerprint {
                    skyline: vec![],
                    output: SigGenOutput {
                        matrix: SignatureMatrix::new(self.signature_size, 0),
                        scores: vec![],
                    },
                    fingerprint_ms: 0.0,
                    events: vec![],
                    interrupt: Some(int),
                },
                0,
            ));
        }
        let skyline = sfs(canon.as_ref(), &ord);
        if skyline.is_empty() {
            return Err(SkyDiverError::EmptySkyline);
        }
        let (t_eff, mut events) = match self.effective_signature_size(skyline.len()) {
            Ok(pair) => pair,
            Err(int) => {
                let m = skyline.len();
                return Ok(partial(
                    Fingerprint {
                        skyline,
                        output: SigGenOutput {
                            matrix: SignatureMatrix::new(self.signature_size, 0),
                            scores: vec![0; m],
                        },
                        fingerprint_ms: 0.0,
                        events: vec![],
                        interrupt: Some(int),
                    },
                    0,
                ));
            }
        };
        let family = HashFamily::new(t_eff, self.hash_seed);
        let m = skyline.len();
        let mut is_sky = vec![false; canon.len()];
        for &s in &skyline {
            is_sky[s] = true;
        }
        let all_cols: Vec<&[f64]> = skyline.iter().map(|&s| canon.point(s)).collect();

        let t0 = Instant::now();
        let mut merged = SignatureAccumulator::new(t_eff, m);
        let mut shards: Vec<Arc<ShardFingerprint>> = Vec::with_capacity(sd.num_shards());
        let mut reused_shards = 0usize;
        let mut scanned_rows = 0usize;
        let mut tripped: Option<Interrupt> = None;

        'shards: for i in 0..sd.num_shards() {
            let lo = sd.base(i);
            let hi = lo + sd.shard(i).len();
            let sview = canon.as_ref().view().slice(lo, hi);
            let skip = &is_sky[lo..hi];
            let cache = cached
                .get(i)
                .and_then(|c| c.as_ref())
                .filter(|c| c.t() == t_eff);

            // The per-shard fold itself (cache reuse + budgeted scan)
            // lives in `minhash::fold_shard`, shared verbatim with the
            // distributed workers of the cluster tier.
            let shard_fp = match crate::minhash::fold_shard(
                sview,
                &skyline,
                &all_cols,
                skip,
                &family,
                cache.map(|c| c.as_ref()),
                self.threads,
                &ctx,
            ) {
                crate::minhash::ShardFold::ReusedExact => {
                    // lint: allow(R1) -- ReusedExact is only returned
                    // when `cache` was Some
                    let c = cache.expect("exact reuse implies a cache");
                    merged.merge(&c.acc);
                    reused_shards += 1;
                    shards.push(Arc::clone(c));
                    continue 'shards;
                }
                crate::minhash::ShardFold::ReusedSuperset(acc) => {
                    reused_shards += 1;
                    acc
                }
                crate::minhash::ShardFold::Scanned {
                    acc,
                    scanned_rows: sr,
                    interrupt,
                } => {
                    scanned_rows += sr;
                    if let Some(int) = interrupt {
                        merged.merge(&acc);
                        tripped = Some(int);
                        break 'shards;
                    }
                    acc
                }
            };
            merged.merge(&shard_fp);
            shards.push(Arc::new(ShardFingerprint {
                columns: skyline.clone(),
                acc: shard_fp,
            }));
        }
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;

        if let Some(int) = tripped {
            events.push(DegradationEvent::FingerprintCurtailed {
                rows_scanned: merged.rows_consumed,
                rows_total: canon.len(),
            });
            return Ok(partial(
                Fingerprint {
                    skyline,
                    output: merged.into_output(),
                    fingerprint_ms,
                    events,
                    interrupt: Some(int),
                },
                scanned_rows,
            ));
        }
        Ok(ShardedFingerprintRun {
            fingerprint: Fingerprint {
                skyline,
                output: merged.into_output(),
                fingerprint_ms,
                events,
                interrupt: None,
            },
            shards,
            reused_shards,
            scanned_rows,
            dominance_tests: ctx.dominance_tests(),
        })
    }

    /// Phase 2 only: greedy selection over a previously computed (or
    /// cached) [`Fingerprint`]. Skips canonicalisation, the skyline pass
    /// and fingerprinting entirely — no dominance tests are charged to
    /// this run's budget. Selecting from a partial fingerprint returns
    /// the partial [`DiverseResult`] the producing run would have.
    ///
    /// The fingerprint's `hash_seed` and signature size are baked into
    /// the matrix, so only `k`, the selection method, the seed/tie-break
    /// rules, `threads` and the budget of `self` matter here.
    pub fn select_from(&self, fp: &Fingerprint) -> Result<DiverseResult> {
        let ctx = ExecContext::new(self.budget.clone());
        self.select_from_ctx(fp, &ctx)
    }

    fn fingerprint_ctx(
        &self,
        ds: &Dataset,
        prefs: &[Preference],
        ctx: &ExecContext,
    ) -> Result<Fingerprint> {
        if self.signature_size == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        let canon = canonicalise(ds, prefs)?;
        let ord = skydiver_data::dominance::MinDominance;
        if let Err(int) = ctx.check(ExecPhase::Skyline) {
            return Ok(Fingerprint {
                skyline: vec![],
                output: SigGenOutput {
                    matrix: SignatureMatrix::new(self.signature_size, 0),
                    scores: vec![],
                },
                fingerprint_ms: 0.0,
                events: vec![],
                interrupt: Some(int),
            });
        }
        let skyline = sfs(canon.as_ref(), &ord);
        if skyline.is_empty() {
            return Err(SkyDiverError::EmptySkyline);
        }
        let (t_eff, mut events) = match self.effective_signature_size(skyline.len()) {
            Ok(pair) => pair,
            Err(int) => {
                let m = skyline.len();
                return Ok(Fingerprint {
                    skyline,
                    output: SigGenOutput {
                        matrix: SignatureMatrix::new(self.signature_size, 0),
                        scores: vec![0; m],
                    },
                    fingerprint_ms: 0.0,
                    events: vec![],
                    interrupt: Some(int),
                });
            }
        };
        let family = HashFamily::new(t_eff, self.hash_seed);
        let t0 = Instant::now();
        let (out, rows_scanned, interrupt) = if self.threads > 1 {
            sig_gen_parallel_budgeted(canon.as_ref(), &ord, &skyline, &family, self.threads, ctx)
        } else {
            sig_gen_if_budgeted(canon.as_ref(), &ord, &skyline, &family, ctx)
        };
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;
        if interrupt.is_some() {
            events.push(DegradationEvent::FingerprintCurtailed {
                rows_scanned,
                rows_total: canon.len(),
            });
        }
        Ok(Fingerprint {
            skyline,
            output: out,
            fingerprint_ms,
            events,
            interrupt,
        })
    }

    fn select_from_ctx(&self, fp: &Fingerprint, ctx: &ExecContext) -> Result<DiverseResult> {
        if let Some(int) = fp.interrupt.clone() {
            return Ok(Self::partial(
                fp.skyline.clone(),
                fp.output.scores.clone(),
                fp.output.matrix.memory_bytes(),
                fp.fingerprint_ms,
                int,
                fp.events.clone(),
            ));
        }
        self.finish(
            &fp.skyline,
            &fp.output,
            fp.fingerprint_ms,
            fp.events.clone(),
            ctx,
        )
    }

    /// Index-based run: bulk-load an aggregate R*-tree (paper defaults:
    /// 4 KiB pages, 20 % buffer pool), compute the skyline with BBS, run
    /// `SigGen-IB`, select. Returns the result plus the I/O counters so
    /// callers can apply the 8 ms/fault cost model.
    ///
    /// A page-read failure (fault injection) aborts with
    /// [`SkyDiverError::IndexReadFailure`]; use [`SkyDiver::run_auto`]
    /// to fall back to the index-free pipeline instead.
    pub fn run_index_based(
        &self,
        ds: &Dataset,
        prefs: &[Preference],
    ) -> Result<(DiverseResult, skydiver_rtree::IoStats)> {
        let ctx = ExecContext::new(self.budget.clone());
        if self.signature_size == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        let canon = canonicalise(ds, prefs)?;
        let tree = RTree::bulk_load(&canon, DEFAULT_PAGE_SIZE);
        let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
        if let Some(plan) = self.fault_injection {
            pool.inject_faults(plan);
        }
        if let Err(int) = ctx.check(ExecPhase::Skyline) {
            return Ok((
                Self::partial(vec![], vec![], 0, 0.0, int, vec![]),
                pool.stats(),
            ));
        }
        let skyline = bbs(&tree, &mut pool);
        if let Some(fail) = pool.failure() {
            return Err(SkyDiverError::IndexReadFailure {
                page: fail.page_id,
                access: fail.access_index,
            });
        }
        if skyline.is_empty() {
            return Err(SkyDiverError::EmptySkyline);
        }
        let (t_eff, mut events) = match self.effective_signature_size(skyline.len()) {
            Ok(pair) => pair,
            Err(int) => {
                let m = skyline.len();
                let r = Self::partial(skyline, vec![0; m], 0, 0.0, int, vec![]);
                return Ok((r, pool.stats()));
            }
        };
        let family = HashFamily::new(t_eff, self.hash_seed);
        let pts: Vec<&[f64]> = skyline.iter().map(|&s| canon.point(s)).collect();
        let t0 = Instant::now();
        let (out, _, rows_consumed, interrupt) = crate::minhash::sig_gen_ib_parallel_budgeted(
            &tree,
            &mut pool,
            &pts,
            &family,
            self.threads,
            &ctx,
        );
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;
        if let Some(fail) = pool.failure() {
            return Err(SkyDiverError::IndexReadFailure {
                page: fail.page_id,
                access: fail.access_index,
            });
        }
        if let Some(int) = interrupt {
            events.push(DegradationEvent::FingerprintCurtailed {
                rows_scanned: rows_consumed,
                rows_total: canon.len(),
            });
            let mem = out.matrix.memory_bytes();
            let r = Self::partial(skyline, out.scores, mem, fingerprint_ms, int, events);
            return Ok((r, pool.stats()));
        }
        let result = self.finish(&skyline, &out, fingerprint_ms, events, &ctx)?;
        Ok((result, pool.stats()))
    }

    /// Graceful-fallback entry point: tries the index-based pipeline
    /// first and, when it fails with an index read failure, reruns
    /// index-free (which performs no page reads). The fallback is
    /// recorded as [`DegradationEvent::IndexFreeFallback`] in the
    /// returned report. Non-I/O errors propagate unchanged.
    ///
    /// Note the budget applies to each attempt separately: a deadline
    /// restarts for the fallback run.
    pub fn run_auto(&self, ds: &Dataset, prefs: &[Preference]) -> Result<DiverseResult> {
        match self.run_index_based(ds, prefs) {
            Ok((result, _)) => Ok(result),
            Err(cause @ SkyDiverError::IndexReadFailure { .. }) => {
                let mut result = self.run(ds, prefs)?;
                result.degradation.events.insert(
                    0,
                    DegradationEvent::IndexFreeFallback {
                        cause: cause.to_string(),
                    },
                );
                Ok(result)
            }
            Err(e) => Err(e),
        }
    }

    /// Runs over a bare dominance graph (paper Fig. 1): fingerprints the
    /// edge lists and selects. `selected` holds left-node indices.
    pub fn run_graph(&self, graph: &DominanceGraph) -> Result<DiverseResult> {
        let ctx = ExecContext::new(self.budget.clone());
        if self.signature_size == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        let family = HashFamily::new(self.signature_size, self.hash_seed);
        let t0 = Instant::now();
        let out = graph.fingerprint(&family)?;
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;
        let skyline: Vec<usize> = (0..graph.num_skyline()).collect();
        self.finish(&skyline, &out, fingerprint_ms, vec![], &ctx)
    }

    /// Shrinks the signature size to fit the memory budget, if one is
    /// set. `Err` means even one slot per skyline point does not fit —
    /// the run stops before fingerprinting with a memory interrupt.
    ///
    /// On the MinHash path one signature slot costs `2 · m · 8` bytes:
    /// the column-major matrix row plus the slot-major transpose the
    /// selection pass pins alongside it. LSH selection never builds the
    /// transpose, so there a slot costs `m · 8` and the index's own
    /// footprint is bounded separately by [`Self::effective_buckets`].
    fn effective_signature_size(
        &self,
        m: usize,
    ) -> std::result::Result<(usize, Vec<DegradationEvent>), Interrupt> {
        let t = self.signature_size;
        let Some(limit) = self.budget.max_memory_bytes() else {
            return Ok((t, vec![]));
        };
        let layouts = match self.method {
            SelectionMethod::MinHash => 2,
            SelectionMethod::Lsh { .. } => 1,
        };
        let per_slot = layouts * m * std::mem::size_of::<u64>();
        let needed = t * per_slot;
        if needed <= limit {
            return Ok((t, vec![]));
        }
        let t_eff = limit / per_slot;
        if t_eff == 0 {
            return Err(Interrupt {
                phase: ExecPhase::Fingerprint,
                reason: StopReason::MemoryBudgetExhausted {
                    needed: per_slot,
                    limit,
                },
            });
        }
        Ok((
            t_eff,
            vec![DegradationEvent::SignatureSizeReduced { from: t, to: t_eff }],
        ))
    }

    /// Shrinks the LSH buckets-per-zone to fit the memory budget
    /// (best-effort: never below 2 buckets).
    fn effective_buckets(
        &self,
        m: usize,
        zones: usize,
        buckets: usize,
        events: &mut Vec<DegradationEvent>,
    ) -> usize {
        let Some(limit) = self.budget.max_memory_bytes() else {
            return buckets;
        };
        let bits_budget = limit.saturating_mul(8);
        let per_bucket = m * zones; // bits per bucket-per-zone increment
        if per_bucket == 0 || per_bucket * buckets <= bits_budget {
            return buckets;
        }
        let reduced = (bits_budget / per_bucket).max(2);
        if reduced < buckets {
            events.push(DegradationEvent::LshBucketsReduced {
                from: buckets,
                to: reduced,
            });
            return reduced;
        }
        buckets
    }

    /// A partial result: completed phases are kept, the selection is
    /// empty or a prefix, and the report names the interrupted phase.
    fn partial(
        skyline: Vec<usize>,
        scores: Vec<u64>,
        memory_bytes: usize,
        fingerprint_ms: f64,
        interrupt: Interrupt,
        events: Vec<DegradationEvent>,
    ) -> DiverseResult {
        DiverseResult {
            skyline,
            selected_positions: vec![],
            selected: vec![],
            scores,
            memory_bytes,
            fingerprint_ms,
            selection_ms: 0.0,
            degradation: Degradation {
                interrupt: Some(interrupt),
                events,
            },
        }
    }

    /// Greedy selection over any shareable distance, parallel when
    /// `threads > 1` — bit-identical either way.
    fn select<D: crate::diversity::SyncDiversityDistance>(
        &self,
        mut dist: D,
        scores: &[u64],
        ctx: &ExecContext,
    ) -> Result<(Vec<usize>, Option<Interrupt>)> {
        if self.threads > 1 {
            select_diverse_parallel_budgeted(
                &dist,
                scores,
                self.k,
                self.seed_rule,
                self.tie_break,
                self.threads,
                ctx,
            )
        } else {
            select_diverse_budgeted(
                &mut dist,
                scores,
                self.k,
                self.seed_rule,
                self.tie_break,
                ctx,
            )
        }
    }

    fn select_minhash(
        &self,
        out: &SigGenOutput,
        ctx: &ExecContext,
    ) -> Result<(Vec<usize>, usize, Option<Interrupt>)> {
        let dist = SignatureDistance::new(&out.matrix);
        // Phase-2 resident bytes: the matrix plus the slot-major
        // transpose the distance oracle pins for the selection pass.
        let mem = out.matrix.memory_bytes() + dist.memory_bytes();
        let (sel, int) = self.select(dist, &out.scores, ctx)?;
        Ok((sel, mem, int))
    }

    fn finish(
        &self,
        skyline: &[usize],
        out: &SigGenOutput,
        fingerprint_ms: f64,
        mut events: Vec<DegradationEvent>,
        ctx: &ExecContext,
    ) -> Result<DiverseResult> {
        let t1 = Instant::now();
        let (positions, memory_bytes, interrupt) = match self.method {
            SelectionMethod::MinHash => self.select_minhash(out, ctx)?,
            SelectionMethod::Lsh { threshold, buckets } => {
                match LshParams::from_threshold(out.matrix.t(), threshold) {
                    Ok(params) => {
                        let buckets = self.effective_buckets(
                            out.matrix.m(),
                            params.zones,
                            buckets,
                            &mut events,
                        );
                        let idx = LshIndex::build(&out.matrix, params, buckets, self.hash_seed)?;
                        let dist = LshDistance::new(&idx);
                        let (sel, int) = self.select(dist, &out.scores, ctx)?;
                        (sel, idx.memory_bytes(), int)
                    }
                    Err(cause @ SkyDiverError::NoLshFactorisation { .. })
                        if self.lsh_minhash_fallback =>
                    {
                        events.push(DegradationEvent::MinHashFallback {
                            cause: cause.to_string(),
                        });
                        self.select_minhash(out, ctx)?
                    }
                    Err(e) => return Err(e),
                }
            }
        };
        if interrupt.is_some() {
            events.push(DegradationEvent::SelectionCurtailed {
                selected: positions.len(),
                requested: self.k,
            });
        }
        let selection_ms = t1.elapsed().as_secs_f64() * 1e3;
        let selected = positions.iter().map(|&p| skyline[p]).collect();
        Ok(DiverseResult {
            skyline: skyline.to_vec(),
            selected_positions: positions,
            selected,
            scores: out.scores.clone(),
            memory_bytes,
            fingerprint_ms,
            selection_ms,
            degradation: Degradation { interrupt, events },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::StopReason;
    use skydiver_data::generators::{anticorrelated, independent};

    #[test]
    fn index_free_end_to_end() {
        let ds = anticorrelated(3000, 3, 150);
        let r = SkyDiver::new(5)
            .signature_size(128)
            .hash_seed(1)
            .run(&ds, &Preference::all_min(3))
            .unwrap();
        assert_eq!(r.selected.len(), 5);
        assert_eq!(r.selected_positions.len(), 5);
        // Selected points are skyline members.
        for (&pos, &idx) in r.selected_positions.iter().zip(&r.selected) {
            assert_eq!(r.skyline[pos], idx);
        }
        assert!(r.memory_bytes > 0);
        // First selected point carries the max domination score.
        let max = r.scores.iter().copied().max().unwrap();
        assert_eq!(r.scores[r.selected_positions[0]], max);
        // An unbudgeted run reports no degradation.
        assert!(r.is_complete());
        assert_eq!(r.degradation.summary(), "complete");
    }

    #[test]
    fn fingerprint_then_select_matches_run() {
        let ds = anticorrelated(3000, 3, 165);
        let prefs = Preference::all_min(3);
        let cfg = SkyDiver::new(5).signature_size(64).hash_seed(11);
        let fp = cfg.fingerprint(&ds, &prefs).unwrap();
        assert!(fp.is_complete());
        assert_eq!(fp.m(), fp.scores().len());
        assert!(fp.memory_bytes() >= fp.matrix().memory_bytes());
        let whole = cfg.run(&ds, &prefs).unwrap();
        // The same fingerprint answers different k / method / threads
        // bit-identically to the corresponding one-shot run.
        let staged = cfg.select_from(&fp).unwrap();
        assert_eq!(staged.selected, whole.selected);
        assert_eq!(staged.scores, whole.scores);
        assert_eq!(staged.skyline, whole.skyline);
        for k in [2, 3, 7] {
            let alt = SkyDiver::new(k).signature_size(64).hash_seed(11);
            assert_eq!(
                alt.select_from(&fp).unwrap().selected,
                alt.run(&ds, &prefs).unwrap().selected,
                "k = {k}"
            );
        }
        let par = cfg.clone().threads(4);
        assert_eq!(par.select_from(&fp).unwrap().selected, whole.selected);
        let lsh = cfg.clone().lsh(0.2, 16);
        assert_eq!(
            lsh.select_from(&fp).unwrap().selected,
            lsh.run(&ds, &prefs).unwrap().selected
        );
    }

    #[test]
    fn select_from_partial_fingerprint_matches_partial_run() {
        let ds = independent(2000, 3, 166);
        let prefs = Preference::all_min(3);
        let full = SkyDiver::new(3)
            .signature_size(32)
            .run(&ds, &prefs)
            .unwrap();
        let m = full.skyline.len() as u64;
        let cfg = SkyDiver::new(3)
            .signature_size(32)
            .budget(RunBudget::none().with_max_dominance_tests(50 * m));
        let fp = cfg.fingerprint(&ds, &prefs).unwrap();
        assert!(!fp.is_complete(), "budget must curtail the pass");
        let r = cfg.select_from(&fp).unwrap();
        assert!(r.selected.is_empty());
        let int = r.degradation.interrupt.as_ref().unwrap();
        assert_eq!(int.phase, ExecPhase::Fingerprint);
    }

    #[test]
    fn index_based_matches_index_free_skyline() {
        let ds = independent(2000, 3, 151);
        let cfg = SkyDiver::new(4).signature_size(64).hash_seed(2);
        let a = cfg.run(&ds, &Preference::all_min(3)).unwrap();
        let (b, io) = cfg.run_index_based(&ds, &Preference::all_min(3)).unwrap();
        assert_eq!(a.skyline, b.skyline, "BBS and SFS agree");
        assert_eq!(a.scores, b.scores, "IB and IF count Γ identically");
        assert!(io.accesses() > 0);
    }

    #[test]
    fn lsh_method_runs_and_uses_less_memory() {
        let ds = anticorrelated(3000, 4, 152);
        let mh = SkyDiver::new(5).signature_size(100).hash_seed(3);
        let lsh = mh.clone().lsh(0.2, 20);
        let rm = mh.run(&ds, &Preference::all_min(4)).unwrap();
        let rl = lsh.run(&ds, &Preference::all_min(4)).unwrap();
        assert_eq!(rl.selected.len(), 5);
        assert!(
            rl.memory_bytes < rm.memory_bytes,
            "LSH {} !< MH {}",
            rl.memory_bytes,
            rm.memory_bytes
        );
    }

    #[test]
    fn max_preferences_are_honoured() {
        // Maximise both dims: the skyline flips to the upper-right.
        let ds = Dataset::from_rows(2, &[[0.1, 0.1], [0.9, 0.9], [0.8, 0.95]]);
        let r = SkyDiver::new(2)
            .signature_size(16)
            .run(&ds, &Preference::all_max(2));
        // Skyline = {1, 2}; k = 2 selects both.
        let r = r.unwrap();
        assert_eq!(r.skyline, vec![1, 2]);
    }

    #[test]
    fn graph_run_selects_c_then_a() {
        let g = crate::graph::DominanceGraph::from_edges(
            11,
            vec![
                vec![0],
                vec![0, 1, 2, 3, 4, 5],
                vec![3, 4, 5, 6, 7, 8, 9, 10],
                vec![6, 7, 8, 9],
            ],
        );
        let r = SkyDiver::new(2).signature_size(256).run_graph(&g).unwrap();
        assert_eq!(r.selected, vec![2, 0]);
    }

    #[test]
    fn config_errors_propagate() {
        let ds = independent(100, 2, 153);
        let prefs = Preference::all_min(2);
        assert!(matches!(
            SkyDiver::new(2).signature_size(0).run(&ds, &prefs),
            Err(SkyDiverError::ZeroSignatureSize)
        ));
        assert!(matches!(
            SkyDiver::new(1).run(&ds, &prefs),
            Err(SkyDiverError::KTooSmall { .. })
        ));
        assert!(matches!(
            SkyDiver::new(2).run(&ds, &Preference::all_min(3)),
            Err(SkyDiverError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn parallel_threads_do_not_change_result() {
        let ds = anticorrelated(2000, 3, 154);
        let prefs = Preference::all_min(3);
        let seq = SkyDiver::new(4)
            .signature_size(64)
            .hash_seed(5)
            .run(&ds, &prefs)
            .unwrap();
        let par = SkyDiver::new(4)
            .signature_size(64)
            .hash_seed(5)
            .threads(4)
            .run(&ds, &prefs)
            .unwrap();
        assert_eq!(seq.selected, par.selected);
        assert_eq!(seq.scores, par.scores);
    }

    #[test]
    fn cancelled_before_start_returns_empty_partial() {
        let token = CancelToken::new();
        token.cancel();
        let ds = independent(500, 2, 155);
        let r = SkyDiver::new(3)
            .budget(RunBudget::none().with_cancel_token(token))
            .run(&ds, &Preference::all_min(2))
            .unwrap();
        assert!(r.selected.is_empty());
        let int = r.degradation.interrupt.as_ref().unwrap();
        assert_eq!(int.phase, ExecPhase::Skyline);
        assert_eq!(int.reason, StopReason::Cancelled);
    }

    #[test]
    fn dominance_budget_curtails_fingerprinting() {
        let ds = independent(2000, 3, 156);
        let prefs = Preference::all_min(3);
        let full = SkyDiver::new(3)
            .signature_size(32)
            .run(&ds, &prefs)
            .unwrap();
        let m = full.skyline.len() as u64;
        let r = SkyDiver::new(3)
            .signature_size(32)
            .budget(RunBudget::none().with_max_dominance_tests(50 * m))
            .run(&ds, &prefs)
            .unwrap();
        assert_eq!(r.skyline, full.skyline, "skyline phase completed");
        assert!(r.selected.is_empty(), "selection skipped after interrupt");
        let int = r.degradation.interrupt.as_ref().unwrap();
        assert_eq!(int.phase, ExecPhase::Fingerprint);
        assert!(matches!(
            int.reason,
            StopReason::DominanceBudgetExhausted { .. }
        ));
        assert!(r
            .degradation
            .events
            .iter()
            .any(|e| matches!(e, DegradationEvent::FingerprintCurtailed { .. })));
    }

    #[test]
    fn memory_budget_shrinks_signature_size() {
        let ds = anticorrelated(2000, 3, 157);
        let prefs = Preference::all_min(3);
        let full = SkyDiver::new(3)
            .signature_size(100)
            .run(&ds, &prefs)
            .unwrap();
        let m = full.skyline.len();
        // Allow 10 matrix-slots' worth of bytes. One MinHash slot pins
        // two layouts (matrix row + slot-major transpose), so the
        // effective signature size lands at 5 and the *reported* bytes
        // — which include the transpose — still respect the budget.
        let r = SkyDiver::new(3)
            .signature_size(100)
            .budget(RunBudget::none().with_max_memory_bytes(10 * m * 8))
            .run(&ds, &prefs)
            .unwrap();
        assert_eq!(r.selected.len(), 3, "run completes at reduced fidelity");
        assert!(r.degradation.interrupt.is_none());
        assert!(matches!(
            r.degradation.events[..],
            [DegradationEvent::SignatureSizeReduced { from: 100, to: 5 }]
        ));
        assert_eq!(r.memory_bytes, 2 * 5 * m * 8, "matrix + transpose, exactly");
        assert!(r.memory_bytes <= 10 * m * 8);
    }

    #[test]
    fn memory_budget_too_small_for_anything_interrupts() {
        let ds = independent(500, 2, 158);
        let r = SkyDiver::new(2)
            .budget(RunBudget::none().with_max_memory_bytes(4))
            .run(&ds, &Preference::all_min(2))
            .unwrap();
        let int = r.degradation.interrupt.as_ref().unwrap();
        assert_eq!(int.phase, ExecPhase::Fingerprint);
        assert!(matches!(
            int.reason,
            StopReason::MemoryBudgetExhausted { .. }
        ));
        assert!(r.selected.is_empty());
        assert!(!r.skyline.is_empty(), "completed phases are kept");
    }

    #[test]
    fn lsh_falls_back_to_minhash_when_opted_in() {
        let ds = anticorrelated(1500, 3, 159);
        let prefs = Preference::all_min(3);
        // t = 1 admits no usable banding.
        let strict = SkyDiver::new(3).signature_size(1).lsh(0.5, 16);
        assert!(matches!(
            strict.run(&ds, &prefs),
            Err(SkyDiverError::NoLshFactorisation { t: 1 })
        ));
        let lenient = strict.clone().lsh_minhash_fallback(true);
        let r = lenient.run(&ds, &prefs).unwrap();
        assert_eq!(r.selected.len(), 3);
        assert!(r
            .degradation
            .events
            .iter()
            .any(|e| matches!(e, DegradationEvent::MinHashFallback { .. })));
        // The fallback selects exactly as plain MinHash would.
        let mh = SkyDiver::new(3).signature_size(1).run(&ds, &prefs).unwrap();
        assert_eq!(r.selected, mh.selected);
    }

    #[test]
    fn injected_page_fault_fails_index_based_and_run_auto_recovers() {
        let ds = independent(3000, 3, 160);
        let prefs = Preference::all_min(3);
        let cfg = SkyDiver::new(4)
            .signature_size(32)
            .hash_seed(9)
            .fault_injection(FaultInjection::at_access(3));
        let err = cfg.run_index_based(&ds, &prefs).unwrap_err();
        assert!(matches!(err, SkyDiverError::IndexReadFailure { .. }));
        // run_auto degrades to the index-free pipeline.
        let r = cfg.run_auto(&ds, &prefs).unwrap();
        assert_eq!(r.selected.len(), 4);
        assert!(matches!(
            r.degradation.events[0],
            DegradationEvent::IndexFreeFallback { .. }
        ));
        // And matches a plain index-free run bit for bit.
        let plain = SkyDiver::new(4)
            .signature_size(32)
            .hash_seed(9)
            .run(&ds, &prefs)
            .unwrap();
        assert_eq!(r.selected, plain.selected);
        assert_eq!(r.scores, plain.scores);
    }

    #[test]
    fn run_auto_without_faults_uses_the_index() {
        let ds = independent(1000, 2, 161);
        let prefs = Preference::all_min(2);
        let r = SkyDiver::new(3)
            .signature_size(32)
            .run_auto(&ds, &prefs)
            .unwrap();
        assert_eq!(r.selected.len(), 3);
        assert!(r.is_complete());
    }

    #[test]
    fn parallel_index_based_matches_sequential() {
        let ds = anticorrelated(3000, 3, 162);
        let prefs = Preference::all_min(3);
        let cfg = SkyDiver::new(5).signature_size(64).hash_seed(6);
        let (seq, _) = cfg.run_index_based(&ds, &prefs).unwrap();
        for threads in [2, 4] {
            let (par, _) = cfg
                .clone()
                .threads(threads)
                .run_index_based(&ds, &prefs)
                .unwrap();
            assert_eq!(seq.selected, par.selected, "threads = {threads}");
            assert_eq!(seq.scores, par.scores, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_lsh_selection_matches_sequential() {
        let ds = anticorrelated(2500, 3, 163);
        let prefs = Preference::all_min(3);
        let cfg = SkyDiver::new(5)
            .signature_size(100)
            .hash_seed(7)
            .lsh(0.2, 16);
        let seq = cfg.run(&ds, &prefs).unwrap();
        let par = cfg.clone().threads(3).run(&ds, &prefs).unwrap();
        assert_eq!(seq.selected, par.selected);
        assert_eq!(seq.scores, par.scores);
    }

    #[test]
    fn parallel_run_auto_recovers_from_faults_identically() {
        let ds = independent(3000, 3, 164);
        let prefs = Preference::all_min(3);
        let cfg = SkyDiver::new(4)
            .signature_size(32)
            .hash_seed(8)
            .threads(4)
            .fault_injection(FaultInjection::at_access(3));
        let r = cfg.run_auto(&ds, &prefs).unwrap();
        assert!(matches!(
            r.degradation.events[0],
            DegradationEvent::IndexFreeFallback { .. }
        ));
        let plain = SkyDiver::new(4)
            .signature_size(32)
            .hash_seed(8)
            .run(&ds, &prefs)
            .unwrap();
        assert_eq!(r.selected, plain.selected);
        assert_eq!(r.scores, plain.scores);
    }

    use skydiver_data::Dataset;
}
