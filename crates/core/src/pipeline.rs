//! The end-to-end SkyDiver pipeline: fingerprint, then select.
//!
//! [`SkyDiver`] is the builder-style entry point a downstream user
//! reaches for: configure `k`, the signature size, MinHash vs LSH and
//! optional parallelism; then run it index-free over a dataset
//! ([`SkyDiver::run`]), index-based over an aggregate R*-tree
//! ([`SkyDiver::run_index_based`]), or over a bare dominance graph
//! ([`SkyDiver::run_graph`]).

use std::time::Instant;

use skydiver_data::{Dataset, Preference};
use skydiver_rtree::{BufferPool, RTree, DEFAULT_CACHE_FRACTION, DEFAULT_PAGE_SIZE};
use skydiver_skyline::{bbs, sfs};

use crate::canonical::canonicalise;
use crate::dispersion::{select_diverse, SeedRule, TieBreak};
use crate::diversity::{LshDistance, SignatureDistance};
use crate::error::{Result, SkyDiverError};
use crate::graph::DominanceGraph;
use crate::lsh::{LshIndex, LshParams};
use crate::minhash::{sig_gen_if, sig_gen_parallel, HashFamily, SigGenOutput};

/// Which phase-2 representation drives the selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionMethod {
    /// Greedy dispersion over MinHash signatures (SkyDiver-MH).
    MinHash,
    /// Greedy dispersion over LSH bucket bit-vectors (SkyDiver-LSH):
    /// less memory, slightly lower accuracy (Figure 13).
    Lsh {
        /// Similarity threshold `ξ` governing the banding `ζ·r ≤ t`.
        threshold: f64,
        /// Buckets per zone `B`.
        buckets: usize,
    },
}

/// Result of one diversification run.
#[derive(Debug, Clone)]
pub struct DiverseResult {
    /// Skyline point indices into the input dataset (ascending), or the
    /// left-node indices for graph inputs.
    pub skyline: Vec<usize>,
    /// Positions *within* `skyline` of the `k` selected points, in
    /// selection order.
    pub selected_positions: Vec<usize>,
    /// Dataset indices of the `k` selected points, in selection order.
    pub selected: Vec<usize>,
    /// Domination scores `|Γ(p)|` per skyline point.
    pub scores: Vec<u64>,
    /// Bytes held by the phase-2 representation (signatures or LSH
    /// bit-vectors).
    pub memory_bytes: usize,
    /// Wall-clock milliseconds of the fingerprinting phase.
    pub fingerprint_ms: f64,
    /// Wall-clock milliseconds of the selection phase.
    pub selection_ms: f64,
}

/// Builder for the SkyDiver pipeline.
#[derive(Debug, Clone)]
pub struct SkyDiver {
    k: usize,
    signature_size: usize,
    method: SelectionMethod,
    hash_seed: u64,
    seed_rule: SeedRule,
    tie_break: TieBreak,
    threads: usize,
}

impl SkyDiver {
    /// A pipeline returning `k` diverse skyline points with the paper's
    /// defaults: signature size 100, MinHash selection, max-domination
    /// seeding and tie-breaking, sequential fingerprinting.
    pub fn new(k: usize) -> Self {
        SkyDiver {
            k,
            signature_size: 100,
            method: SelectionMethod::MinHash,
            hash_seed: 0,
            seed_rule: SeedRule::MaxDominance,
            tie_break: TieBreak::MaxDominance,
            threads: 1,
        }
    }

    /// Sets the signature size `t` (default 100, the paper's default).
    pub fn signature_size(mut self, t: usize) -> Self {
        self.signature_size = t;
        self
    }

    /// Selects with MinHash signatures (the default).
    pub fn minhash(mut self) -> Self {
        self.method = SelectionMethod::MinHash;
        self
    }

    /// Selects with LSH (threshold `ξ`, `buckets` per zone).
    pub fn lsh(mut self, threshold: f64, buckets: usize) -> Self {
        self.method = SelectionMethod::Lsh { threshold, buckets };
        self
    }

    /// Seeds the hash family (reproducibility).
    pub fn hash_seed(mut self, seed: u64) -> Self {
        self.hash_seed = seed;
        self
    }

    /// Overrides the selection seed rule (ablation).
    pub fn seed_rule(mut self, rule: SeedRule) -> Self {
        self.seed_rule = rule;
        self
    }

    /// Overrides the tie-break rule (ablation).
    pub fn tie_break(mut self, tie: TieBreak) -> Self {
        self.tie_break = tie;
        self
    }

    /// Shards the index-free fingerprinting pass over `threads` threads
    /// (bit-identical to sequential; the paper's future-work item).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Index-free run: canonicalise, compute the skyline (SFS), run
    /// `SigGen-IF`, select.
    pub fn run(&self, ds: &Dataset, prefs: &[Preference]) -> Result<DiverseResult> {
        if self.signature_size == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        let canon = canonicalise(ds, prefs)?;
        let ord = skydiver_data::dominance::MinDominance;
        let skyline = sfs(&canon, &ord);
        if skyline.is_empty() {
            return Err(SkyDiverError::EmptySkyline);
        }
        let family = HashFamily::new(self.signature_size, self.hash_seed);
        let t0 = Instant::now();
        let out = if self.threads > 1 {
            sig_gen_parallel(&canon, &ord, &skyline, &family, self.threads)
        } else {
            sig_gen_if(&canon, &ord, &skyline, &family)
        };
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.finish(skyline, out, fingerprint_ms)
    }

    /// Index-based run: bulk-load an aggregate R*-tree (paper defaults:
    /// 4 KiB pages, 20 % buffer pool), compute the skyline with BBS, run
    /// `SigGen-IB`, select. Returns the result plus the I/O counters so
    /// callers can apply the 8 ms/fault cost model.
    pub fn run_index_based(
        &self,
        ds: &Dataset,
        prefs: &[Preference],
    ) -> Result<(DiverseResult, skydiver_rtree::IoStats)> {
        if self.signature_size == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        let canon = canonicalise(ds, prefs)?;
        let tree = RTree::bulk_load(&canon, DEFAULT_PAGE_SIZE);
        let mut pool = BufferPool::for_index(tree.num_pages(), DEFAULT_CACHE_FRACTION);
        let skyline = bbs(&tree, &mut pool);
        if skyline.is_empty() {
            return Err(SkyDiverError::EmptySkyline);
        }
        let family = HashFamily::new(self.signature_size, self.hash_seed);
        let pts: Vec<&[f64]> = skyline.iter().map(|&s| canon.point(s)).collect();
        let t0 = Instant::now();
        let (out, _) = crate::minhash::sig_gen_ib(&tree, &mut pool, &pts, &family);
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;
        let result = self.finish(skyline, out, fingerprint_ms)?;
        Ok((result, pool.stats()))
    }

    /// Runs over a bare dominance graph (paper Fig. 1): fingerprints the
    /// edge lists and selects. `selected` holds left-node indices.
    pub fn run_graph(&self, graph: &DominanceGraph) -> Result<DiverseResult> {
        if self.signature_size == 0 {
            return Err(SkyDiverError::ZeroSignatureSize);
        }
        let family = HashFamily::new(self.signature_size, self.hash_seed);
        let t0 = Instant::now();
        let out = graph.fingerprint(&family)?;
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;
        let skyline: Vec<usize> = (0..graph.num_skyline()).collect();
        self.finish(skyline, out, fingerprint_ms)
    }

    fn finish(
        &self,
        skyline: Vec<usize>,
        out: SigGenOutput,
        fingerprint_ms: f64,
    ) -> Result<DiverseResult> {
        let t1 = Instant::now();
        let (positions, memory_bytes) = match self.method {
            SelectionMethod::MinHash => {
                let mut dist = SignatureDistance::new(&out.matrix);
                let sel = select_diverse(
                    &mut dist,
                    &out.scores,
                    self.k,
                    self.seed_rule,
                    self.tie_break,
                )?;
                (sel, out.matrix.memory_bytes())
            }
            SelectionMethod::Lsh { threshold, buckets } => {
                let params = LshParams::from_threshold(out.matrix.t(), threshold)?;
                let idx = LshIndex::build(&out.matrix, params, buckets, self.hash_seed)?;
                let mut dist = LshDistance::new(&idx);
                let sel = select_diverse(
                    &mut dist,
                    &out.scores,
                    self.k,
                    self.seed_rule,
                    self.tie_break,
                )?;
                (sel, idx.memory_bytes())
            }
        };
        let selection_ms = t1.elapsed().as_secs_f64() * 1e3;
        let selected = positions.iter().map(|&p| skyline[p]).collect();
        Ok(DiverseResult {
            skyline,
            selected_positions: positions,
            selected,
            scores: out.scores,
            memory_bytes,
            fingerprint_ms,
            selection_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::generators::{anticorrelated, independent};

    #[test]
    fn index_free_end_to_end() {
        let ds = anticorrelated(3000, 3, 150);
        let r = SkyDiver::new(5)
            .signature_size(128)
            .hash_seed(1)
            .run(&ds, &Preference::all_min(3))
            .unwrap();
        assert_eq!(r.selected.len(), 5);
        assert_eq!(r.selected_positions.len(), 5);
        // Selected points are skyline members.
        for (&pos, &idx) in r.selected_positions.iter().zip(&r.selected) {
            assert_eq!(r.skyline[pos], idx);
        }
        assert!(r.memory_bytes > 0);
        // First selected point carries the max domination score.
        let max = r.scores.iter().copied().max().unwrap();
        assert_eq!(r.scores[r.selected_positions[0]], max);
    }

    #[test]
    fn index_based_matches_index_free_skyline() {
        let ds = independent(2000, 3, 151);
        let cfg = SkyDiver::new(4).signature_size(64).hash_seed(2);
        let a = cfg.run(&ds, &Preference::all_min(3)).unwrap();
        let (b, io) = cfg.run_index_based(&ds, &Preference::all_min(3)).unwrap();
        assert_eq!(a.skyline, b.skyline, "BBS and SFS agree");
        assert_eq!(a.scores, b.scores, "IB and IF count Γ identically");
        assert!(io.accesses() > 0);
    }

    #[test]
    fn lsh_method_runs_and_uses_less_memory() {
        let ds = anticorrelated(3000, 4, 152);
        let mh = SkyDiver::new(5).signature_size(100).hash_seed(3);
        let lsh = mh.clone().lsh(0.2, 20);
        let rm = mh.run(&ds, &Preference::all_min(4)).unwrap();
        let rl = lsh.run(&ds, &Preference::all_min(4)).unwrap();
        assert_eq!(rl.selected.len(), 5);
        assert!(
            rl.memory_bytes < rm.memory_bytes,
            "LSH {} !< MH {}",
            rl.memory_bytes,
            rm.memory_bytes
        );
    }

    #[test]
    fn max_preferences_are_honoured() {
        // Maximise both dims: the skyline flips to the upper-right.
        let ds = Dataset::from_rows(2, &[[0.1, 0.1], [0.9, 0.9], [0.8, 0.95]]);
        let r = SkyDiver::new(2)
            .signature_size(16)
            .run(&ds, &Preference::all_max(2));
        // Skyline = {1, 2}; k = 2 selects both.
        let r = r.unwrap();
        assert_eq!(r.skyline, vec![1, 2]);
    }

    #[test]
    fn graph_run_selects_c_then_a() {
        let g = crate::graph::DominanceGraph::from_edges(
            11,
            vec![
                vec![0],
                vec![0, 1, 2, 3, 4, 5],
                vec![3, 4, 5, 6, 7, 8, 9, 10],
                vec![6, 7, 8, 9],
            ],
        );
        let r = SkyDiver::new(2).signature_size(256).run_graph(&g).unwrap();
        assert_eq!(r.selected, vec![2, 0]);
    }

    #[test]
    fn config_errors_propagate() {
        let ds = independent(100, 2, 153);
        let prefs = Preference::all_min(2);
        assert!(matches!(
            SkyDiver::new(2).signature_size(0).run(&ds, &prefs),
            Err(SkyDiverError::ZeroSignatureSize)
        ));
        assert!(matches!(
            SkyDiver::new(1).run(&ds, &prefs),
            Err(SkyDiverError::KTooSmall { .. })
        ));
        assert!(matches!(
            SkyDiver::new(2).run(&ds, &Preference::all_min(3)),
            Err(SkyDiverError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn parallel_threads_do_not_change_result() {
        let ds = anticorrelated(2000, 3, 154);
        let prefs = Preference::all_min(3);
        let seq = SkyDiver::new(4).signature_size(64).hash_seed(5).run(&ds, &prefs).unwrap();
        let par = SkyDiver::new(4)
            .signature_size(64)
            .hash_seed(5)
            .threads(4)
            .run(&ds, &prefs)
            .unwrap();
        assert_eq!(seq.selected, par.selected);
        assert_eq!(seq.scores, par.scores);
    }

    use skydiver_data::Dataset;
}
