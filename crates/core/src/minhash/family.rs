//! The hash family `hᵢ(x) = aᵢ·x + bᵢ mod P`.
//!
//! The paper uses affine hashes with `P` a prime larger than `n − m`;
//! such a family is not truly min-wise independent but "is used as an
//! approximation that works very well in practice" (§4.1). We fix
//! `P = 2⁶¹ − 1` (a Mersenne prime comfortably above any dataset
//! cardinality), drawing `aᵢ ∈ [1, P)` and `bᵢ ∈ [0, P)` from a seeded
//! RNG so experiments are reproducible.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// The Mersenne prime `2⁶¹ − 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// Reduces `v` modulo the Mersenne prime `P = 2⁶¹ − 1` without a u128
/// division, using the standard fold `v ≡ (v mod 2⁶¹) + (v div 2⁶¹)`.
///
/// For `v < 2¹²²` (always true for `a·x + b` with `a, b < P` and
/// `x < 2⁶¹`), one fold brings `v` below `2⁶⁵`, a second below `P + 16`,
/// and one conditional subtract lands in `[0, P)` — bit-identical to
/// `(v % P as u128) as u64`, which the tests assert.
#[inline]
fn mod_p(v: u128) -> u64 {
    const MASK: u128 = (1u128 << 61) - 1;
    let folded = (v & MASK) + (v >> 61);
    let r = ((folded & MASK) + (folded >> 61)) as u64;
    if r >= P {
        r - P
    } else {
        r
    }
}

/// A family of `t` affine hash functions over row ids.
#[derive(Debug, Clone)]
pub struct HashFamily {
    coeffs: Vec<(u64, u64)>,
}

impl HashFamily {
    /// Draws `t` functions from the seeded RNG.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t > 0, "need at least one hash function");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_CE5E_ED15_BAD5);
        let coeffs = (0..t)
            .map(|_| (rng.gen_range(1..P), rng.gen_range(0..P)))
            .collect();
        HashFamily { coeffs }
    }

    /// Number of functions `t` (the signature size).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// `true` when the family is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Applies function `i` to row id `x`.
    #[inline]
    pub fn hash(&self, i: usize, x: u64) -> u64 {
        let (a, b) = self.coeffs[i];
        mod_p(a as u128 * x as u128 + b as u128)
    }

    /// Applies every function to `x`, writing into `out`
    /// (`out.len() == t`). Hot path of signature generation.
    #[inline]
    pub fn hash_all(&self, x: u64, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.coeffs.len());
        for (slot, &(a, b)) in out.iter_mut().zip(&self.coeffs) {
            // lint: allow(R2) -- t hash applications per row; the row
            // loops charge the budget per dominated point
            *slot = mod_p(a as u128 * x as u128 + b as u128);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let f1 = HashFamily::new(8, 42);
        let f2 = HashFamily::new(8, 42);
        let f3 = HashFamily::new(8, 43);
        for x in [0u64, 1, 999_999_937] {
            for i in 0..8 {
                assert_eq!(f1.hash(i, x), f2.hash(i, x));
            }
        }
        assert!((0..8).any(|i| f1.hash(i, 5) != f3.hash(i, 5)));
    }

    #[test]
    fn values_below_p() {
        let f = HashFamily::new(16, 7);
        for x in [0u64, 1, u32::MAX as u64, 10_000_000] {
            for i in 0..16 {
                assert!(f.hash(i, x) < P);
            }
        }
    }

    #[test]
    fn hash_all_matches_hash() {
        let f = HashFamily::new(10, 3);
        let mut out = vec![0u64; 10];
        f.hash_all(12345, &mut out);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, f.hash(i, 12345));
        }
    }

    #[test]
    fn injective_enough_for_permutation_use() {
        // Distinct rows should almost never collide under one function.
        let f = HashFamily::new(1, 11);
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            seen.insert(f.hash(0, x));
        }
        assert_eq!(seen.len(), 10_000, "affine map mod prime is injective");
    }

    #[test]
    #[should_panic(expected = "at least one hash function")]
    fn zero_functions_rejected() {
        let _ = HashFamily::new(0, 0);
    }

    #[test]
    fn folded_reduction_matches_division() {
        // Edge values plus a pseudo-random sweep of the full u122 range
        // reachable by a·x + b.
        let cases = [
            0u128,
            1,
            P as u128 - 1,
            P as u128,
            P as u128 + 1,
            (P as u128) * (P as u128),
            (P as u128 - 1) * (u64::MAX as u128) + P as u128 - 1,
        ];
        for &v in &cases {
            assert_eq!(mod_p(v), (v % P as u128) as u64, "v = {v}");
        }
        let mut state = 0x9E37_79B9_7F4A_7C15u128;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let v = state & ((1u128 << 122) - 1);
            assert_eq!(mod_p(v), (v % P as u128) as u64, "v = {v}");
        }
    }
}
