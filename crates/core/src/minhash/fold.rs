//! The per-shard fingerprint fold, extracted from the sharded pipeline
//! so distributed workers run **the same code path** as the monolithic
//! run — the bit-identity contract of the cluster tier rests on this
//! single function.
//!
//! [`fold_shard`] folds one shard's rows into a [`SignatureAccumulator`]
//! over the skyline columns, reusing a cached [`ShardFingerprint`] when
//! one is supplied: an exact-fit cache is returned without touching any
//! row, a superset cache (the skyline shrank) is re-projected
//! column-by-column, and a partial cache (the skyline grew, the `APPEND`
//! warm path) scans only the missing columns. Budget charging goes
//! through the caller's [`ExecContext`], so a dominance-test budget
//! trips at the same absolute row whether the fold runs in-process or on
//! a remote worker handed the remaining budget.

use skydiver_data::dominance::MinDominance;
use skydiver_data::shard::DatasetView;

use crate::budget::{ExecContext, Interrupt};

use super::accumulator::{ShardFingerprint, SignatureAccumulator};
use super::family::HashFamily;
use super::parallel::scan_columns_parallel_budgeted;
use super::scan_columns_budgeted;

/// Outcome of folding one shard.
#[derive(Debug)]
pub enum ShardFold {
    /// The cached fold covers the current skyline exactly; the caller
    /// should merge/reuse the cached value as-is. No rows were scanned
    /// and no dominance tests were charged.
    ReusedExact,
    /// Every column was extracted from a cached superset fold (the
    /// skyline shrank since the cache was built); nothing was scanned.
    ReusedSuperset(SignatureAccumulator),
    /// A fresh fold — cold, or a partial-cache fold that scanned only
    /// the columns the cache lacked. `scanned_rows` counts rows actually
    /// visited; `interrupt` is set when a budget tripped mid-scan, in
    /// which case `acc` holds the partial fold accumulated so far.
    Scanned {
        /// The (possibly partial) fold over the full skyline columns.
        acc: SignatureAccumulator,
        /// Rows of this shard actually scanned.
        scanned_rows: usize,
        /// The budget trip that curtailed the scan, if any.
        interrupt: Option<Interrupt>,
    },
}

/// Fold one shard of canonicalised rows against the skyline columns.
///
/// * `sview` — the shard's canonical rows with **global** ids (row
///   hashes are seeded by `DatasetView::global_id`, so the view's base
///   must be the shard's offset in the whole dataset).
/// * `skyline` — ascending global ids of the skyline members.
/// * `all_cols` — `all_cols[j]` is the canonical coordinate column of
///   `skyline[j]`.
/// * `skip` — per-row mask (shard-local index); `true` rows are skyline
///   members and are folded for free without dominance tests.
/// * `cache` — a complete cached fold of this shard in the same
///   canonical space, seed and signature size (`cache.t()` must equal
///   `family.len()`; callers filter mismatches out).
/// * `threads` — `> 1` uses the deterministic parallel scan.
/// * `ctx` — budget context charged `m` dominance tests per non-skip
///   row scanned.
#[allow(clippy::too_many_arguments)]
pub fn fold_shard(
    sview: DatasetView<'_>,
    skyline: &[usize],
    all_cols: &[&[f64]],
    skip: &[bool],
    family: &HashFamily,
    cache: Option<&ShardFingerprint>,
    threads: usize,
    ctx: &ExecContext,
) -> ShardFold {
    let ord = MinDominance;
    let t_eff = family.len();
    let m = skyline.len();
    match cache {
        Some(c) => {
            // Columns the cache lacks — freshly exposed skyline points,
            // which can only live in shards after the cache was built.
            let need: Vec<usize> = skyline
                .iter()
                .copied()
                .filter(|&s| c.position(s).is_none())
                .collect();
            if need.is_empty() && c.columns == skyline {
                return ShardFold::ReusedExact;
            }
            let mut shard_acc = SignatureAccumulator::new(t_eff, m);
            for (jn, &s) in skyline.iter().enumerate() {
                // lint: allow(R2) -- O(m) column copy out of the cached fold;
                // no dominance work, the budgeted scan below does the polling
                if let Some(jo) = c.position(s) {
                    shard_acc.matrix.set_column(jn, c.acc.matrix.column(jo));
                    shard_acc.scores[jn] = c.acc.scores[jo];
                }
            }
            if need.is_empty() {
                // Cache is a superset (the skyline shrank): every
                // column extracted, nothing to scan.
                shard_acc.rows_consumed = c.acc.rows_consumed;
                return ShardFold::ReusedSuperset(shard_acc);
            }
            let need_cols: Vec<&[f64]> = need
                .iter()
                .map(|&s| {
                    // lint: allow(R1) -- `need` was computed as the
                    // subset of `skyline` the fold lacks, so lookup
                    // cannot miss
                    let j = skyline.binary_search(&s).expect("need ⊆ skyline");
                    all_cols[j]
                })
                .collect();
            let mut need_acc = SignatureAccumulator::new(t_eff, need.len());
            let int = if threads > 1 {
                let (acc, int) = scan_columns_parallel_budgeted(
                    sview, &ord, &need_cols, skip, family, ctx, threads,
                );
                need_acc = acc;
                int
            } else {
                scan_columns_budgeted(sview, &ord, &need_cols, skip, family, ctx, &mut need_acc)
            };
            let scanned_rows = need_acc.rows_consumed;
            shard_acc.rows_consumed = need_acc.rows_consumed;
            for (jn, &s) in need.iter().enumerate() {
                // lint: allow(R2) -- O(|need|) column writeback; the scan
                // above already charged and polled the budget per row
                // lint: allow(R1) -- `need` was computed as the
                // subset of `skyline` the fold lacks, so lookup
                // cannot miss
                let j = skyline.binary_search(&s).expect("need ⊆ skyline");
                shard_acc.matrix.set_column(j, need_acc.matrix.column(jn));
                shard_acc.scores[j] = need_acc.scores[jn];
            }
            ShardFold::Scanned {
                acc: shard_acc,
                scanned_rows,
                interrupt: int,
            }
        }
        None => {
            let mut shard_acc = SignatureAccumulator::new(t_eff, m);
            let int = if threads > 1 {
                let (acc, int) = scan_columns_parallel_budgeted(
                    sview, &ord, all_cols, skip, family, ctx, threads,
                );
                shard_acc = acc;
                int
            } else {
                scan_columns_budgeted(sview, &ord, all_cols, skip, family, ctx, &mut shard_acc)
            };
            let scanned_rows = shard_acc.rows_consumed;
            ShardFold::Scanned {
                acc: shard_acc,
                scanned_rows,
                interrupt: int,
            }
        }
    }
}
