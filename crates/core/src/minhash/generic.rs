//! `SigGen-IF` over arbitrary items — the index-free pass for
//! categorical and partially-ordered domains.
//!
//! The paper stresses that the index-free method "does not require that
//! attributes are numeric, but can handle categorical attributes as
//! well as partially ordered domains" (§4.1.1). This generic variant
//! accepts any item type with any [`DominanceOrd`], e.g.
//! `CategoricalDominance` over `[u32]` records.

use std::borrow::Borrow;

use skydiver_data::DominanceOrd;

use super::{HashFamily, SigGenOutput, SignatureMatrix};

/// Index-free signature generation over a slice of items.
///
/// * `items` — the full data set (any type borrowable as the order's
///   item type),
/// * `ord` — the dominance order,
/// * `skyline` — indices of the skyline items (e.g. from
///   `skydiver_skyline::bnl_generic`); output columns follow this
///   order,
/// * `family` — `t` hash functions.
pub fn sig_gen_if_generic<I, O>(
    items: &[I],
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
) -> SigGenOutput
where
    O: DominanceOrd,
    I: Borrow<O::Item>,
{
    let t = family.len();
    let m = skyline.len();
    let mut matrix = SignatureMatrix::new(t, m);
    let mut scores = vec![0u64; m];

    let mut is_skyline = vec![false; items.len()];
    for &s in skyline {
        // lint: allow(R2) -- O(m) flag fill before the scan
        is_skyline[s] = true;
    }

    let mut row_hashes = vec![0u64; t];
    let mut dominators: Vec<usize> = Vec::with_capacity(m);
    for (row, p) in items.iter().enumerate() {
        // lint: allow(R2) -- reference pass for categorical/partial-order
        // domains with no ExecContext in its public signature; the numeric
        // production paths (sig_gen_if_budgeted, parallel, ib) all poll
        if is_skyline[row] {
            continue;
        }
        dominators.clear();
        for (j, &s) in skyline.iter().enumerate() {
            if ord.dominates(items[s].borrow(), p.borrow()) {
                dominators.push(j);
            }
        }
        if dominators.is_empty() {
            continue;
        }
        family.hash_all(row as u64, &mut row_hashes);
        for &j in &dominators {
            matrix.update_column(j, &row_hashes);
            scores[j] += 1;
        }
    }

    SigGenOutput { matrix, scores }
}

/// End-to-end diversification over arbitrary items: skyline via generic
/// BNL, fingerprints via [`sig_gen_if_generic`], greedy selection.
///
/// Returns `(skyline_indices, selected_item_indices)`.
pub fn diversify_generic<I, O>(
    items: &[I],
    ord: &O,
    k: usize,
    signature_size: usize,
    hash_seed: u64,
) -> crate::error::Result<(Vec<usize>, Vec<usize>)>
where
    O: DominanceOrd,
    I: Borrow<O::Item>,
{
    if signature_size == 0 {
        return Err(crate::error::SkyDiverError::ZeroSignatureSize);
    }
    let skyline = skydiver_skyline::bnl_generic(items, ord);
    if skyline.is_empty() {
        return Err(crate::error::SkyDiverError::EmptySkyline);
    }
    let family = HashFamily::new(signature_size, hash_seed);
    let out = sig_gen_if_generic(items, ord, &skyline, &family);
    let mut dist = crate::diversity::SignatureDistance::new(&out.matrix);
    let positions = crate::dispersion::select_diverse(
        &mut dist,
        &out.scores,
        k,
        crate::dispersion::SeedRule::MaxDominance,
        crate::dispersion::TieBreak::MaxDominance,
    )?;
    let selected = positions.iter().map(|&p| skyline[p]).collect();
    Ok((skyline, selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::sig_gen_if;
    use skydiver_data::categorical::{CategoricalDominance, PartialOrderAttr};
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_skyline::naive_skyline;

    #[test]
    fn matches_dataset_variant_on_numeric_rows() {
        let ds = independent(600, 3, 170);
        let rows: Vec<Vec<f64>> = ds.iter().map(|p| p.to_vec()).collect();
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(32, 171);
        let a = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let b = sig_gen_if_generic(&rows, &MinDominance, &sky, &fam);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn categorical_end_to_end() {
        // Two totally-ordered attributes with an anticorrelated budget:
        // no record may be best at both.
        let ord = CategoricalDominance::new(vec![
            PartialOrderAttr::total_order(5),
            PartialOrderAttr::total_order(5),
        ]);
        let mut items: Vec<Vec<u32>> = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a + b >= 4 {
                    for _ in 0..(a + b) {
                        items.push(vec![a, b]);
                    }
                }
            }
        }
        let (skyline, selected) = diversify_generic(&items, &ord, 2, 128, 172).unwrap();
        assert!(!skyline.is_empty());
        assert_eq!(selected.len(), 2);
        // The two picks are incomparable records (skyline members).
        let (x, y) = (&items[selected[0]], &items[selected[1]]);
        assert!(!ord.dominates(x, y) && !ord.dominates(y, x));
        // And distinct as records (dominated-set diversity > 0 requires
        // differing frontier cells here).
        assert_ne!(x, y);
    }

    #[test]
    fn empty_skyline_rejected() {
        let ord = MinDominance;
        let items: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            diversify_generic(&items, &ord, 2, 16, 0),
            Err(crate::error::SkyDiverError::EmptySkyline)
        ));
    }
}
