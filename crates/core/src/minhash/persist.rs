//! Persistence of fingerprints.
//!
//! Fingerprinting is the expensive phase (one pass over the data);
//! selection is `O(k²m)` and cheap. Persisting the signature matrix and
//! domination scores lets a user fingerprint once and re-run selection
//! for many `k`, thresholds, or LSH configurations — without touching
//! the data again. Two formats, both little-endian:
//!
//! * `SKYSIG01` — a whole-dataset bundle: magic, `u64` t / m,
//!   column-major `u64` slots, then `u64` scores. No integrity check
//!   beyond an exact-size match against the header.
//! * `SKYSIG02` — a *per-shard* bundle ([`ShardFingerprint`]: column
//!   ids + partial fold + rows consumed) hardened for use as an on-disk
//!   cache artefact: the header carries four caller-owned key tags (the
//!   serving layer binds dataset content hash, shard id, preference
//!   hash and seed so a renamed or stale file can never masquerade as
//!   another key), and the file ends in a length-and-checksum footer
//!   (FNV-1a 64 over everything before it) so torn writes, truncation
//!   and bit rot are detected before a single word is trusted.
//!
//! Both readers bounds-check every header count against the actual file
//! size *before* allocating, so a hostile or truncated header cannot
//! trigger an unbounded `t·m` allocation.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use super::{ShardFingerprint, SigGenOutput, SignatureAccumulator, SignatureMatrix};

const MAGIC: &[u8; 8] = b"SKYSIG01";
const MAGIC_V2: &[u8; 8] = b"SKYSIG02";

/// Fixed byte sizes of the `SKYSIG02` layout: magic + 4 key tags +
/// t + m + rows_consumed, and the length + checksum footer.
const V2_HEADER: u64 = 8 + 4 * 8 + 3 * 8;
const V2_FOOTER: u64 = 2 * 8;

/// Incremental FNV-1a 64 — the checksum behind the `SKYSIG02` footer
/// (and the serving layer's content hashing). Not cryptographic; it
/// detects corruption, not adversaries with write access to the store.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a 64 offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            // lint: allow(R2) -- byte fold of an in-memory buffer, no
            // I/O and no data-proportional dominance work to budget
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Writes a fingerprint bundle (matrix + scores) to `path`.
pub fn write_signatures<P: AsRef<Path>>(out: &SigGenOutput, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(out.matrix.t() as u64).to_le_bytes())?;
    w.write_all(&(out.matrix.m() as u64).to_le_bytes())?;
    for j in 0..out.matrix.m() {
        // lint: allow(R2) -- serialises the already-computed t*m bundle;
        // compute-phase budgets were charged when it was built
        for &slot in out.matrix.column(j) {
            w.write_all(&slot.to_le_bytes())?;
        }
    }
    for &s in &out.scores {
        // lint: allow(R2) -- m score words, same already-computed bundle
        w.write_all(&s.to_le_bytes())?;
    }
    w.flush()
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The exact on-disk size of a `SKYSIG01` bundle with the given shape,
/// or `None` on arithmetic overflow (an impossible honest header).
fn v1_expected_len(t: u64, m: u64) -> Option<u64> {
    // magic + t + m + t*m matrix words + m score words.
    let words = t.checked_mul(m)?.checked_add(m)?;
    words.checked_mul(8)?.checked_add(8 + 8 + 8)
}

/// Reads a fingerprint bundle written by [`write_signatures`].
pub fn read_signatures<P: AsRef<Path>>(path: P) -> io::Result<SigGenOutput> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not a SkyDiver signature bundle"));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let t64 = u64::from_le_bytes(b8);
    r.read_exact(&mut b8)?;
    let m64 = u64::from_le_bytes(b8);
    if t64 == 0 {
        return Err(bad_data("bundle declares zero signature size"));
    }
    // The header is untrusted: check the declared shape against the
    // actual file size *before* allocating t*m words from it.
    match v1_expected_len(t64, m64) {
        Some(expected) if expected == file_len => {}
        _ => {
            return Err(bad_data(format!(
                "bundle declares t={t64} m={m64} but holds {file_len} bytes"
            )))
        }
    }
    let t = usize::try_from(t64).map_err(|_| bad_data("t exceeds this platform"))?;
    let m = usize::try_from(m64).map_err(|_| bad_data("m exceeds this platform"))?;
    let mut matrix = SignatureMatrix::new(t, m);
    let mut col = vec![0u64; t];
    for j in 0..m {
        // lint: allow(R2) -- reads the t*m words the header declares;
        // a short file fails fast with an I/O error
        for slot in col.iter_mut() {
            r.read_exact(&mut b8)?;
            *slot = u64::from_le_bytes(b8);
        }
        matrix.update_column(j, &col);
    }
    let mut scores = Vec::with_capacity(m);
    for _ in 0..m {
        // lint: allow(R2) -- m score words from the same declared header
        r.read_exact(&mut b8)?;
        scores.push(u64::from_le_bytes(b8));
    }
    Ok(SigGenOutput { matrix, scores })
}

// ---------------------------------------------------------------------
// SKYSIG02 — hardened per-shard bundles for the on-disk signature store.
// ---------------------------------------------------------------------

/// The exact on-disk size of a `SKYSIG02` bundle with the given shape,
/// or `None` on arithmetic overflow.
fn v2_expected_len(t: u64, m: u64) -> Option<u64> {
    // header + m column ids + t*m matrix words + m score words + footer.
    let words = t.checked_mul(m)?.checked_add(m.checked_mul(2)?)?;
    words.checked_mul(8)?.checked_add(V2_HEADER)?.checked_add(V2_FOOTER)
}

/// Encodes one shard's complete fold as a `SKYSIG02` bundle.
///
/// `tags` are four caller-owned key words written into the header and
/// returned verbatim by [`decode_shard_signatures`] — the serving layer
/// binds `(dataset content hash, shard id, preference hash, seed)` so a
/// renamed or stale artefact fails key verification instead of being
/// served. The bundle ends in a length + FNV-1a 64 checksum footer.
pub fn encode_shard_signatures(fp: &ShardFingerprint, tags: &[u64; 4]) -> Vec<u8> {
    let (t, m) = (fp.acc.t(), fp.acc.m());
    let len = v2_expected_len(t as u64, m as u64).unwrap_or(V2_HEADER + V2_FOOTER);
    let mut out = Vec::with_capacity(len as usize);
    out.extend_from_slice(MAGIC_V2);
    for &tag in tags {
        // lint: allow(R2) -- four fixed header words, no data scan
        out.extend_from_slice(&tag.to_le_bytes());
    }
    out.extend_from_slice(&(t as u64).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    out.extend_from_slice(&(fp.acc.rows_consumed as u64).to_le_bytes());
    for &c in &fp.columns {
        // lint: allow(R2) -- serialises the already-computed fold;
        // compute-phase budgets were charged when it was built
        out.extend_from_slice(&(c as u64).to_le_bytes());
    }
    for j in 0..m {
        // lint: allow(R2) -- same already-computed t*m bundle
        for &slot in fp.acc.matrix.column(j) {
            out.extend_from_slice(&slot.to_le_bytes());
        }
    }
    for &s in &fp.acc.scores {
        // lint: allow(R2) -- m score words, same bundle
        out.extend_from_slice(&s.to_le_bytes());
    }
    let payload_len = out.len() as u64;
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b8 = [0u8; 8];
    b8.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(b8)
}

/// Decodes a `SKYSIG02` bundle, verifying magic, shape-vs-length,
/// footer length and checksum before trusting a single word. Returns
/// the fold and the caller's key tags.
pub fn decode_shard_signatures(bytes: &[u8]) -> io::Result<(ShardFingerprint, [u64; 4])> {
    let total = bytes.len() as u64;
    if total < V2_HEADER + V2_FOOTER {
        return Err(bad_data("shard bundle shorter than header + footer"));
    }
    if &bytes[..8] != MAGIC_V2 {
        return Err(bad_data("not a SkyDiver shard bundle (bad magic)"));
    }
    let mut tags = [0u64; 4];
    for (i, tag) in tags.iter_mut().enumerate() {
        // lint: allow(R2) -- four fixed header words
        *tag = read_u64(bytes, 8 + i * 8);
    }
    let t64 = read_u64(bytes, 40);
    let m64 = read_u64(bytes, 48);
    let rows = read_u64(bytes, 56);
    if t64 == 0 {
        return Err(bad_data("shard bundle declares zero signature size"));
    }
    match v2_expected_len(t64, m64) {
        Some(expected) if expected == total => {}
        _ => {
            return Err(bad_data(format!(
                "shard bundle declares t={t64} m={m64} but holds {total} bytes"
            )))
        }
    }
    let payload_len = (total - V2_FOOTER) as usize;
    let declared_len = read_u64(bytes, payload_len);
    let declared_sum = read_u64(bytes, payload_len + 8);
    if declared_len != payload_len as u64 {
        return Err(bad_data(format!(
            "footer declares {declared_len} payload bytes, file holds {payload_len}"
        )));
    }
    let actual_sum = fnv1a64(&bytes[..payload_len]);
    if declared_sum != actual_sum {
        return Err(bad_data(format!(
            "checksum mismatch (stored {declared_sum:#018x}, computed {actual_sum:#018x})"
        )));
    }
    let t = usize::try_from(t64).map_err(|_| bad_data("t exceeds this platform"))?;
    let m = usize::try_from(m64).map_err(|_| bad_data("m exceeds this platform"))?;
    let rows_consumed =
        usize::try_from(rows).map_err(|_| bad_data("rows_consumed exceeds this platform"))?;
    let mut at = V2_HEADER as usize;
    let mut columns = Vec::with_capacity(m);
    for j in 0..m {
        // lint: allow(R2) -- m checksummed header words, bounds proven
        // against the file size above
        let c = read_u64(bytes, at + j * 8);
        let c = usize::try_from(c).map_err(|_| bad_data("column id exceeds this platform"))?;
        if let Some(&prev) = columns.last() {
            if c <= prev {
                return Err(bad_data("column ids not strictly ascending"));
            }
        }
        columns.push(c);
    }
    at += m * 8;
    let mut matrix = SignatureMatrix::new(t, m);
    let mut col = vec![0u64; t];
    for j in 0..m {
        // lint: allow(R2) -- decodes the checksummed t*m bundle
        for (i, slot) in col.iter_mut().enumerate() {
            *slot = read_u64(bytes, at + (j * t + i) * 8);
        }
        matrix.set_column(j, &col);
    }
    at += t * m * 8;
    let mut scores = Vec::with_capacity(m);
    for j in 0..m {
        // lint: allow(R2) -- m checksummed score words
        scores.push(read_u64(bytes, at + j * 8));
    }
    let acc = SignatureAccumulator { matrix, scores, rows_consumed };
    Ok((ShardFingerprint { columns, acc }, tags))
}

/// Writes a shard bundle to `path` in one plain (non-atomic) write —
/// the store's atomic temp + fsync + rename protocol lives in the
/// serving layer; this is the codec-level convenience used by tests.
pub fn write_shard_signatures<P: AsRef<Path>>(
    path: P,
    fp: &ShardFingerprint,
    tags: &[u64; 4],
) -> io::Result<()> {
    let bytes = encode_shard_signatures(fp, tags);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()
}

/// Reads a `SKYSIG02` shard bundle, verifying the header shape against
/// the actual file size before reading (let alone allocating) the body.
pub fn read_shard_signatures<P: AsRef<Path>>(
    path: P,
) -> io::Result<(ShardFingerprint, [u64; 4])> {
    let mut f = File::open(path)?;
    let file_len = f.metadata()?.len();
    let mut header = [0u8; V2_HEADER as usize];
    f.read_exact(&mut header)?;
    if &header[..8] != MAGIC_V2 {
        return Err(bad_data("not a SkyDiver shard bundle (bad magic)"));
    }
    let t64 = read_u64(&header, 40);
    let m64 = read_u64(&header, 48);
    if t64 == 0 {
        return Err(bad_data("shard bundle declares zero signature size"));
    }
    match v2_expected_len(t64, m64) {
        Some(expected) if expected == file_len => {}
        _ => {
            return Err(bad_data(format!(
                "shard bundle declares t={t64} m={m64} but holds {file_len} bytes"
            )))
        }
    }
    // Size proven honest: the full read is bounded by the real file.
    let mut bytes = Vec::with_capacity(file_len as usize);
    bytes.extend_from_slice(&header);
    f.read_to_end(&mut bytes)?;
    decode_shard_signatures(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::{sig_gen_if, HashFamily};
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_skyline::naive_skyline;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skydiver-sig-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = independent(500, 3, 180);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(64, 181);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let path = tmp("roundtrip");
        write_signatures(&out, &path).unwrap();
        let back = read_signatures(&path).unwrap();
        assert_eq!(out.matrix, back.matrix);
        assert_eq!(out.scores, back.scores);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn round_trip_keeps_inf_slots() {
        // A skyline point dominating nothing has an all-∞ column; ∞ is
        // u64::MAX and must survive the trip (update_column minimum with
        // a fresh matrix keeps MAX).
        let ds = skydiver_data::Dataset::from_rows(2, &[[0.0, 1.0], [1.0, 0.0], [1.5, 0.5]]);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(8, 182);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let path = tmp("inf");
        write_signatures(&out, &path).unwrap();
        let back = read_signatures(&path).unwrap();
        assert_eq!(out.matrix, back.matrix);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a signature bundle").unwrap();
        assert!(read_signatures(&path).is_err());

        // Truncated bundle: write valid then chop.
        let ds = independent(100, 2, 183);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(16, 184);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        write_signatures(&out, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_signatures(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v1_hostile_header_cannot_force_a_huge_allocation() {
        // A 24-byte file whose header claims a petabyte-scale matrix:
        // the size check must reject it before any t*m allocation.
        let path = tmp("hostile-v1");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes()); // t
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes()); // m (t*m overflows)
        std::fs::write(&path, &bytes).unwrap();
        let err = read_signatures(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(path).ok();
    }

    fn sample_shard_fp() -> ShardFingerprint {
        let mut acc = SignatureAccumulator::new(4, 3);
        acc.matrix.set_column(0, &[5, 1, 9, 2]);
        acc.matrix.set_column(1, &[7, 7, 0, 3]);
        // Column 2 stays all-∞ (a skyline point dominating nothing in
        // this shard) — u64::MAX must survive the trip.
        acc.scores = vec![3, 1, 0];
        acc.rows_consumed = 42;
        ShardFingerprint { columns: vec![2, 5, 9], acc }
    }

    #[test]
    fn v2_round_trip_preserves_fold_and_tags() {
        let fp = sample_shard_fp();
        let tags = [0xdead_beef, 7, 0x1234, 99];
        let path = tmp("v2-roundtrip");
        write_shard_signatures(&path, &fp, &tags).unwrap();
        let (back, back_tags) = read_shard_signatures(&path).unwrap();
        assert_eq!(back.columns, fp.columns);
        assert_eq!(back.acc, fp.acc);
        assert_eq!(back_tags, tags);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_detects_every_corruption_mode() {
        let fp = sample_shard_fp();
        let good = encode_shard_signatures(&fp, &[1, 2, 3, 4]);
        // Bit flip anywhere in the payload fails the checksum; a flip in
        // the footer fails the length or checksum comparison.
        for at in [9usize, 41, 70, good.len() - 20, good.len() - 1] {
            let mut bytes = good.clone();
            bytes[at] ^= 0x10;
            assert!(
                decode_shard_signatures(&bytes).is_err(),
                "flip at byte {at} must be detected"
            );
        }
        // Truncation at every boundary class.
        for keep in [0usize, 7, 40, 63, good.len() - 16, good.len() - 1] {
            assert!(
                decode_shard_signatures(&good[..keep]).is_err(),
                "truncation to {keep} bytes must be detected"
            );
        }
        // The untouched encoding still decodes.
        assert!(decode_shard_signatures(&good).is_ok());
    }

    #[test]
    fn v2_hostile_header_cannot_force_a_huge_allocation() {
        let path = tmp("hostile-v2");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&[0u8; 32]); // tags
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes()); // t
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes()); // m
        bytes.extend_from_slice(&0u64.to_le_bytes()); // rows
        bytes.extend_from_slice(&[0u8; 16]); // fake footer
        std::fs::write(&path, &bytes).unwrap();
        let err = read_shard_signatures(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_rejects_unsorted_columns_and_zero_t() {
        let mut fp = sample_shard_fp();
        fp.columns = vec![5, 2, 9]; // not ascending
        let bytes = encode_shard_signatures(&fp, &[0; 4]);
        // Re-seal the footer so only the column order is wrong.
        let err = decode_shard_signatures(&bytes).unwrap_err();
        assert!(err.to_string().contains("ascending"), "{err}");

        let good = encode_shard_signatures(&sample_shard_fp(), &[0; 4]);
        let mut zero_t = good.clone();
        zero_t[40..48].copy_from_slice(&0u64.to_le_bytes());
        assert!(decode_shard_signatures(&zero_t).is_err());
    }
}
