//! Persistence of fingerprints.
//!
//! Fingerprinting is the expensive phase (one pass over the data);
//! selection is `O(k²m)` and cheap. Persisting the signature matrix and
//! domination scores lets a user fingerprint once and re-run selection
//! for many `k`, thresholds, or LSH configurations — without touching
//! the data again. Format: `SKYSIG01` magic, `u64` t / m, column-major
//! `u64` slots, then `u64` scores, all little-endian.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use super::{SigGenOutput, SignatureMatrix};

const MAGIC: &[u8; 8] = b"SKYSIG01";

/// Writes a fingerprint bundle (matrix + scores) to `path`.
pub fn write_signatures<P: AsRef<Path>>(out: &SigGenOutput, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(out.matrix.t() as u64).to_le_bytes())?;
    w.write_all(&(out.matrix.m() as u64).to_le_bytes())?;
    for j in 0..out.matrix.m() {
        // lint: allow(R2) -- serialises the already-computed t*m bundle;
        // compute-phase budgets were charged when it was built
        for &slot in out.matrix.column(j) {
            w.write_all(&slot.to_le_bytes())?;
        }
    }
    for &s in &out.scores {
        // lint: allow(R2) -- m score words, same already-computed bundle
        w.write_all(&s.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a fingerprint bundle written by [`write_signatures`].
pub fn read_signatures<P: AsRef<Path>>(path: P) -> io::Result<SigGenOutput> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SkyDiver signature bundle",
        ));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let t = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let m = u64::from_le_bytes(b8) as usize;
    if t == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bundle declares zero signature size",
        ));
    }
    let mut matrix = SignatureMatrix::new(t, m);
    let mut col = vec![0u64; t];
    for j in 0..m {
        // lint: allow(R2) -- reads the t*m words the header declares;
        // a short file fails fast with an I/O error
        for slot in col.iter_mut() {
            r.read_exact(&mut b8)?;
            *slot = u64::from_le_bytes(b8);
        }
        matrix.update_column(j, &col);
    }
    let mut scores = Vec::with_capacity(m);
    for _ in 0..m {
        // lint: allow(R2) -- m score words from the same declared header
        r.read_exact(&mut b8)?;
        scores.push(u64::from_le_bytes(b8));
    }
    Ok(SigGenOutput { matrix, scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::{sig_gen_if, HashFamily};
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_skyline::naive_skyline;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skydiver-sig-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = independent(500, 3, 180);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(64, 181);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let path = tmp("roundtrip");
        write_signatures(&out, &path).unwrap();
        let back = read_signatures(&path).unwrap();
        assert_eq!(out.matrix, back.matrix);
        assert_eq!(out.scores, back.scores);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn round_trip_keeps_inf_slots() {
        // A skyline point dominating nothing has an all-∞ column; ∞ is
        // u64::MAX and must survive the trip (update_column minimum with
        // a fresh matrix keeps MAX).
        let ds = skydiver_data::Dataset::from_rows(2, &[[0.0, 1.0], [1.0, 0.0], [1.5, 0.5]]);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(8, 182);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let path = tmp("inf");
        write_signatures(&out, &path).unwrap();
        let back = read_signatures(&path).unwrap();
        assert_eq!(out.matrix, back.matrix);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a signature bundle").unwrap();
        assert!(read_signatures(&path).is_err());

        // Truncated bundle: write valid then chop.
        let ds = independent(100, 2, 183);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(16, 184);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        write_signatures(&out, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(read_signatures(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
