//! Mergeable signature accumulators — the algebra behind sharded
//! fingerprinting.
//!
//! A MinHash signature is a fold of slot-wise minima over dominated
//! rows, and the domination score `|Γ(p)|` is a sum over the same rows;
//! both operations are associative and commutative over any partition
//! of the data. [`SignatureAccumulator`] packages one partial fold
//! (matrix + scores + rows consumed) so that shard- or range-local
//! passes can run independently and [`merge`](SignatureAccumulator::merge)
//! at the end — the merged result is bit-identical to a monolithic pass
//! because row ids are global in every shard.
//!
//! [`ShardFingerprint`] tags an accumulator with the global ids of the
//! skyline points its columns describe; it is the unit a serving cache
//! stores per `(dataset, shard, prefs, t, seed)` and the building block
//! of the incremental `APPEND` path (reuse surviving columns, scan only
//! the new ones).

use super::{SigGenOutput, SignatureMatrix};

/// A partial signature fold over some subset of the data rows:
/// signature matrix, domination scores and the number of rows consumed.
///
/// Accumulators over *disjoint* row sets (and the same columns, in the
/// same order) merge with [`merge`](SignatureAccumulator::merge):
/// slot-wise minimum for the matrix, element-wise sum for the scores,
/// sum for the row counts. Merging is associative and commutative, so
/// any shard/range decomposition yields the same final state.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureAccumulator {
    /// The partial `t × m` signature matrix.
    pub matrix: SignatureMatrix,
    /// Partial domination scores `|Γ(p)|`, counting consumed rows only.
    pub scores: Vec<u64>,
    /// Number of data rows folded into this accumulator.
    pub rows_consumed: usize,
}

impl SignatureAccumulator {
    /// An empty accumulator (all-∞ matrix, zero scores, zero rows) for
    /// `m` columns and signature size `t`.
    pub fn new(t: usize, m: usize) -> Self {
        SignatureAccumulator {
            matrix: SignatureMatrix::new(t, m),
            scores: vec![0u64; m],
            rows_consumed: 0,
        }
    }

    /// Signature size `t`.
    pub fn t(&self) -> usize {
        self.matrix.t()
    }

    /// Number of columns `m`.
    pub fn m(&self) -> usize {
        self.matrix.m()
    }

    /// Folds another accumulator over a disjoint row set into this one:
    /// slot-wise minimum, score sum, row-count sum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &SignatureAccumulator) {
        self.matrix.merge_min(&other.matrix);
        for (a, &b) in self.scores.iter_mut().zip(&other.scores) {
            // lint: allow(R2) -- slot-wise fold of two m-length score
            // vectors; runs once per merge, no I/O
            *a += b;
        }
        self.rows_consumed += other.rows_consumed;
    }

    /// Finalises the fold as a [`SigGenOutput`].
    pub fn into_output(self) -> SigGenOutput {
        SigGenOutput {
            matrix: self.matrix,
            scores: self.scores,
        }
    }

    /// Resident bytes of the accumulator (matrix plus score vector).
    pub fn memory_bytes(&self) -> usize {
        self.matrix.memory_bytes() + self.scores.len() * std::mem::size_of::<u64>()
    }
}

/// One shard's complete signature fold, tagged with the global ids of
/// the skyline points its columns describe (ascending, one per column).
///
/// The serving layer caches these per `(dataset, shard, prefs, t,
/// seed)`. On `APPEND`, the skyline can only lose old members — a
/// surviving column's fold over an *old* shard is unchanged (skyline
/// members never dominate each other, so demoted members contributed
/// nothing to surviving columns) — which is what makes
/// [`position`](ShardFingerprint::position)-based column reuse exact.
#[derive(Debug, Clone)]
pub struct ShardFingerprint {
    /// Global skyline ids covered by the columns, ascending.
    pub columns: Vec<usize>,
    /// The shard-local fold over those columns.
    pub acc: SignatureAccumulator,
}

impl ShardFingerprint {
    /// Signature size `t`.
    pub fn t(&self) -> usize {
        self.acc.t()
    }

    /// Column position of global skyline id `s`, if covered.
    pub fn position(&self, s: usize) -> Option<usize> {
        self.columns.binary_search(&s).ok()
    }

    /// Resident bytes (what a cache charges against its ceiling).
    pub fn memory_bytes(&self) -> usize {
        self.acc.memory_bytes() + self.columns.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::INF_SLOT;

    #[test]
    fn merge_is_slot_min_score_sum_rows_sum() {
        let mut a = SignatureAccumulator::new(2, 2);
        a.matrix.update_column(0, &[5, 1]);
        a.scores[0] = 3;
        a.rows_consumed = 10;
        let mut b = SignatureAccumulator::new(2, 2);
        b.matrix.update_column(0, &[2, 8]);
        b.matrix.update_column(1, &[7, 7]);
        b.scores = vec![1, 4];
        b.rows_consumed = 5;
        a.merge(&b);
        assert_eq!(a.matrix.column(0), &[2, 1]);
        assert_eq!(a.matrix.column(1), &[7, 7]);
        assert_eq!(a.scores, vec![4, 4]);
        assert_eq!(a.rows_consumed, 15);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = SignatureAccumulator::new(3, 1);
        a.matrix.update_column(0, &[4, 9, 2]);
        a.scores[0] = 7;
        a.rows_consumed = 2;
        let before = a.clone();
        a.merge(&SignatureAccumulator::new(3, 1));
        assert_eq!(a, before);
        // And the empty accumulator really is all-∞ / zero.
        let e = SignatureAccumulator::new(3, 1);
        assert!(e.matrix.column(0).iter().all(|&v| v == INF_SLOT));
        assert_eq!(e.scores, vec![0]);
        assert_eq!(e.rows_consumed, 0);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mk = |seed: u64| {
            let mut acc = SignatureAccumulator::new(4, 2);
            for i in 0..3u64 {
                let h = [seed * 7 + i, seed * 13 + i, seed + 100 - i, seed ^ i];
                acc.matrix.update_column((i % 2) as usize, &h);
                acc.scores[(i % 2) as usize] += 1;
                acc.rows_consumed += 1;
            }
            acc
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut a_bc = b.clone();
        a_bc.merge(&c);
        let mut left = a.clone();
        left.merge(&a_bc);
        assert_eq!(ab_c, left, "associativity");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "commutativity");
    }

    #[test]
    fn shard_fingerprint_position_lookup() {
        let sf = ShardFingerprint {
            columns: vec![2, 5, 9],
            acc: SignatureAccumulator::new(2, 3),
        };
        assert_eq!(sf.position(5), Some(1));
        assert_eq!(sf.position(9), Some(2));
        assert_eq!(sf.position(4), None);
        assert_eq!(sf.t(), 2);
        assert!(sf.memory_bytes() >= sf.acc.memory_bytes());
    }

    #[test]
    fn into_output_carries_matrix_and_scores() {
        let mut a = SignatureAccumulator::new(2, 1);
        a.matrix.update_column(0, &[3, 4]);
        a.scores[0] = 1;
        let out = a.clone().into_output();
        assert_eq!(out.matrix, a.matrix);
        assert_eq!(out.scores, a.scores);
        assert_eq!(a.memory_bytes(), a.matrix.memory_bytes() + 8);
    }
}
