//! `SigGen-IF` — index-free signature generation (paper Fig. 3).
//!
//! One sequential pass over the data: each non-skyline point is checked
//! against every skyline point; where dominance holds, the point's row
//! hashes are folded into that skyline point's signature. Works for any
//! [`DominanceOrd`], which is the point — no index, no numeric attributes
//! required.
//!
//! The workhorse is [`scan_columns_budgeted`]: a fold of a
//! [`DatasetView`]'s rows into a [`SignatureAccumulator`] against an
//! explicit set of column points. Because row hashes use **global** row
//! ids (`view.global_id(local)`), per-shard or per-range folds merge
//! bit-identically into the monolithic result, and because the column
//! set is explicit, the serving layer can incrementally fingerprint only
//! the columns a cache does not already hold.

use skydiver_data::{DatasetView, DominanceOrd};

use crate::budget::{ExecContext, ExecPhase, Interrupt};
use crate::kernels::{SkylinePack, ROW_BLOCK};

use super::{HashFamily, SigGenOutput, SignatureAccumulator};

/// Runs the index-free pass.
///
/// * `ds` — the data, as a dataset or any [`DatasetView`],
/// * `ord` — dominance order (canonical min-space for numeric data),
/// * `skyline` — skyline point indices local to the view; columns of
///   the output follow this order,
/// * `family` — `t` hash functions; `t` becomes the signature size.
///
/// Row hashes are computed once per dominated data point (a hoisted form
/// of the paper's per-`(row, column)` `UpdateMatrix` loop with identical
/// semantics) and the domination scores `|Γ(p)|` are collected in the
/// same pass.
pub fn sig_gen_if<'a, O>(
    ds: impl Into<DatasetView<'a>>,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
) -> SigGenOutput
where
    O: DominanceOrd<Item = [f64]>,
{
    let ctx = ExecContext::unlimited();
    let (out, _, interrupt) = sig_gen_if_budgeted(ds, ord, skyline, family, &ctx);
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    out
}

/// Budget-aware [`sig_gen_if`]: charges `m` dominance tests per
/// *non-skyline* data row against `ctx` and stops at the first exhausted
/// limit. Skyline rows are skipped before any dominance test runs, so
/// they cost nothing — the charge reflects work actually performed, and
/// the sequential and sharded passes charge identically.
///
/// Returns `(output, rows_scanned, interrupt)`. When `interrupt` is
/// `Some`, the signatures and scores cover exactly the first
/// `rows_scanned` data rows — a consistent fingerprint of a data prefix,
/// usable for inspection but not for selection (the Jaccard estimates
/// are biased toward the scanned prefix), which is why the pipeline
/// skips selection after a fingerprint-phase interrupt.
pub fn sig_gen_if_budgeted<'a, O>(
    ds: impl Into<DatasetView<'a>>,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
    ctx: &ExecContext,
) -> (SigGenOutput, usize, Option<Interrupt>)
where
    O: DominanceOrd<Item = [f64]>,
{
    let view: DatasetView<'a> = ds.into();
    let mut skip = vec![false; view.len()];
    for &s in skyline {
        // lint: allow(R2) -- O(m) flag fill; the scan that follows polls
        skip[s] = true;
    }
    let cols: Vec<&[f64]> = skyline.iter().map(|&s| view.point(s)).collect();
    let mut acc = SignatureAccumulator::new(family.len(), skyline.len());
    let interrupt = scan_columns_budgeted(view, ord, &cols, &skip, family, ctx, &mut acc);
    let rows = acc.rows_consumed;
    (acc.into_output(), rows, interrupt)
}

/// Folds the rows of `view` into `acc` against an explicit column set —
/// the shard-native entry point of the index-free pass.
///
/// * `cols` — the column points (usually skyline members, but any
///   subset works: the incremental `APPEND` path scans only the columns
///   a cache does not hold),
/// * `skip` — one flag per view row (`skip[local]`); flagged rows are
///   skipped *before* any dominance test and cost nothing (the skyline
///   membership of the full pass),
/// * `acc` — the accumulator receiving the fold; its `rows_consumed`
///   grows by the fully-processed row prefix.
///
/// Each non-skipped row charges `cols.len()` dominance tests against
/// `ctx`; on a trip the accumulator covers exactly the funded prefix
/// and the interrupt is returned. Row hashes use the view's **global**
/// ids, so folds over disjoint views merge bit-identically with
/// [`SignatureAccumulator::merge`].
///
/// # Panics
/// Panics if `skip.len() != view.len()` or the accumulator shape does
/// not match `(family.len(), cols.len())`.
pub fn scan_columns_budgeted<O>(
    view: DatasetView<'_>,
    ord: &O,
    cols: &[&[f64]],
    skip: &[bool],
    family: &HashFamily,
    ctx: &ExecContext,
    acc: &mut SignatureAccumulator,
) -> Option<Interrupt>
where
    O: DominanceOrd<Item = [f64]>,
{
    let pack = ord
        .is_canonical_min()
        .then(|| SkylinePack::pack(view.dims(), cols.iter().copied()));
    scan_view(view, ord, cols, skip, pack.as_ref(), family, ctx, acc)
}

/// The inner fold shared by the sequential pass, each range of the
/// parallel pass and every shard scan: identical to
/// [`scan_columns_budgeted`] but with the [`SkylinePack`] built by the
/// caller (so the parallel pass packs once for all ranges).
///
/// With `pack` present (canonical all-min orders) the scan runs blocked:
/// up to [`ROW_BLOCK`] funded rows are admitted, then tested against the
/// packed columns one L1-sized tile at a time. Otherwise the generic
/// per-row [`DominanceOrd`] loop runs. Both paths produce per-row
/// dominator lists in ascending column order, so the folded matrix is
/// bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(super) fn scan_view<O>(
    view: DatasetView<'_>,
    ord: &O,
    cols: &[&[f64]],
    skip: &[bool],
    pack: Option<&SkylinePack>,
    family: &HashFamily,
    ctx: &ExecContext,
    acc: &mut SignatureAccumulator,
) -> Option<Interrupt>
where
    O: DominanceOrd<Item = [f64]>,
{
    assert_eq!(skip.len(), view.len(), "skip mask length mismatch");
    assert_eq!(
        (acc.t(), acc.m()),
        (family.len(), cols.len()),
        "accumulator shape mismatch"
    );
    let t = family.len();
    let m = cols.len();
    let hi = view.len();
    let mut row_hashes = vec![0u64; t];

    if let Some(pack) = pack {
        let mut block_rows: Vec<usize> = Vec::with_capacity(ROW_BLOCK);
        let mut block_pts: Vec<&[f64]> = Vec::with_capacity(ROW_BLOCK);
        let mut block_doms: Vec<Vec<usize>> = vec![Vec::new(); ROW_BLOCK];
        let mut row = 0usize;
        loop {
            block_rows.clear();
            block_pts.clear();
            let mut interrupt = None;
            while row < hi && block_rows.len() < ROW_BLOCK {
                if skip[row] {
                    row += 1;
                    continue;
                }
                match ctx.charge_dominance_tests(m as u64, ExecPhase::Fingerprint) {
                    Ok(()) => {
                        block_rows.push(row);
                        block_pts.push(view.point(row));
                        row += 1;
                    }
                    Err(int) => {
                        interrupt = Some(int);
                        break;
                    }
                }
            }
            let doms = &mut block_doms[..block_rows.len()];
            for d in doms.iter_mut() {
                d.clear();
            }
            pack.dominators_block(&block_pts, doms);
            for (bi, &r) in block_rows.iter().enumerate() {
                if doms[bi].is_empty() {
                    continue;
                }
                family.hash_all(view.global_id(r) as u64, &mut row_hashes);
                for &j in &doms[bi] {
                    acc.matrix.update_column(j, &row_hashes);
                    acc.scores[j] += 1;
                }
            }
            if let Some(int) = interrupt {
                acc.rows_consumed += row;
                return Some(int);
            }
            if row >= hi {
                acc.rows_consumed += hi;
                return None;
            }
        }
    }

    let mut dominators: Vec<usize> = Vec::with_capacity(m);
    for (row, &skipped) in skip.iter().enumerate() {
        if skipped {
            continue;
        }
        if let Err(int) = ctx.charge_dominance_tests(m as u64, ExecPhase::Fingerprint) {
            acc.rows_consumed += row;
            return Some(int);
        }
        let p = view.point(row);
        dominators.clear();
        for (j, &c) in cols.iter().enumerate() {
            if ord.dominates(c, p) {
                dominators.push(j);
            }
        }
        if dominators.is_empty() {
            continue;
        }
        family.hash_all(view.global_id(row) as u64, &mut row_hashes);
        for &j in &dominators {
            acc.matrix.update_column(j, &row_hashes);
            acc.scores[j] += 1;
        }
    }
    acc.rows_consumed += hi;
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::GammaSets;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_skyline::naive_skyline;

    #[test]
    fn scores_match_exact_gamma() {
        let ds = independent(500, 3, 90);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(32, 1);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        assert_eq!(out.scores, g.scores());
    }

    #[test]
    fn estimates_concentrate_around_exact_jaccard() {
        let ds = independent(2000, 2, 91);
        let sky = naive_skyline(&ds, &MinDominance);
        assert!(sky.len() >= 4, "need a few skyline points");
        let fam = HashFamily::new(512, 2);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let mut worst: f64 = 0.0;
        for i in 0..sky.len() {
            for j in (i + 1)..sky.len() {
                let est = out.matrix.estimated_similarity(i, j);
                let exact = g.jaccard_similarity(i, j);
                worst = worst.max((est - exact).abs());
            }
        }
        // 512 slots → standard error ≈ sqrt(s(1-s)/512) ≤ 0.023; allow 5σ.
        assert!(worst < 0.12, "worst estimation error {worst}");
    }

    #[test]
    fn identical_gamma_sets_give_identical_signatures() {
        // Two duplicate skyline points dominate exactly the same set.
        let mut rows = vec![[0.0, 0.5], [0.5, 0.0]];
        for i in 0..50 {
            rows.push([0.6 + (i as f64) * 0.001, 0.6]);
        }
        let ds = Dataset::from_rows(2, &rows);
        let sky = naive_skyline(&ds, &MinDominance);
        assert_eq!(sky, vec![0, 1]);
        let fam = HashFamily::new(64, 3);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        // Both dominate exactly rows 2..52 → identical signatures.
        assert_eq!(out.matrix.column(0), out.matrix.column(1));
        assert_eq!(out.matrix.estimated_similarity(0, 1), 1.0);
    }

    #[test]
    fn undominating_skyline_point_keeps_inf_signature() {
        // An isolated skyline point that dominates nothing (paper Fig. 1
        // point `a` is close: it dominates a single node; here: none).
        let ds = Dataset::from_rows(2, &[[0.0, 1.0], [1.0, 0.0], [1.5, 0.5]]);
        let sky = naive_skyline(&ds, &MinDominance);
        assert_eq!(sky, vec![0, 1]);
        let fam = HashFamily::new(16, 4);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        // Point 0 dominates nothing: all-∞ column, score 0.
        assert_eq!(out.scores[0], 0);
        assert!(out
            .matrix
            .column(0)
            .iter()
            .all(|&v| v == super::super::INF_SLOT));
        // Point 1 dominates row 2.
        assert_eq!(out.scores[1], 1);
    }

    #[test]
    fn budgeted_pass_stops_on_dominance_budget() {
        use crate::budget::{ExecContext, RunBudget, StopReason};
        let ds = independent(500, 3, 92);
        let sky = naive_skyline(&ds, &MinDominance);
        let m = sky.len() as u64;
        let fam = HashFamily::new(16, 1);
        // Budget covers exactly 100 non-skyline rows' worth of dominance
        // tests — skyline rows are skipped before any test, so they are
        // free.
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(100 * m));
        let (out, rows, int) = sig_gen_if_budgeted(&ds, &MinDominance, &sky, &fam, &ctx);
        let int = int.expect("budget must trip");
        assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));
        // The funded prefix ends right before the 101st non-skyline row.
        let mut is_sky = vec![false; ds.len()];
        for &s in &sky {
            is_sky[s] = true;
        }
        let mut funded = 0usize;
        let mut expect_rows = ds.len();
        for (i, &sk) in is_sky.iter().enumerate() {
            if !sk {
                if funded == 100 {
                    expect_rows = i;
                    break;
                }
                funded += 1;
            }
        }
        assert_eq!(rows, expect_rows, "stops after the funded prefix");
        assert!(rows >= 100);
        // Scores count only the scanned prefix.
        let total: u64 = out.scores.iter().sum();
        let full = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        assert!(total <= full.scores.iter().sum::<u64>());
    }

    #[test]
    fn charges_reflect_only_tested_rows() {
        use crate::budget::{ExecContext, RunBudget};
        let ds = independent(400, 3, 93);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(8, 2);
        // A counting (non-unlimited) context that never trips.
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(u64::MAX));
        let (_, rows, int) = sig_gen_if_budgeted(&ds, &MinDominance, &sky, &fam, &ctx);
        assert!(int.is_none());
        assert_eq!(rows, ds.len());
        let non_sky = (ds.len() - sky.len()) as u64;
        assert_eq!(
            ctx.dominance_tests(),
            non_sky * sky.len() as u64,
            "skyline rows must not be charged"
        );
    }

    /// Delegates to [`MinDominance`] but hides the canonical-min hook,
    /// forcing the generic scalar path for equivalence testing.
    struct HiddenMin;
    impl DominanceOrd for HiddenMin {
        type Item = [f64];
        fn dom_cmp(&self, a: &[f64], b: &[f64]) -> skydiver_data::Dominance {
            MinDominance.dom_cmp(a, b)
        }
    }

    #[test]
    fn packed_path_identical_to_generic_path() {
        for (n, d) in [(700, 2), (600, 3), (500, 4), (400, 5), (300, 6)] {
            let ds = independent(n, d, 94 + d as u64);
            let sky = naive_skyline(&ds, &MinDominance);
            let fam = HashFamily::new(32, 5);
            let packed = sig_gen_if(&ds, &MinDominance, &sky, &fam);
            let generic = sig_gen_if(&ds, &HiddenMin, &sky, &fam);
            assert_eq!(packed.matrix, generic.matrix, "d = {d}");
            assert_eq!(packed.scores, generic.scores, "d = {d}");
        }
    }

    #[test]
    fn view_folds_merge_to_the_monolithic_result() {
        // Split the data at an arbitrary row; scan each half against the
        // same skyline columns; merge. Global ids make the halves hash
        // the same rows the monolithic pass hashes.
        let ds = independent(600, 3, 95);
        let sky = naive_skyline(&ds, &MinDominance);
        let cols: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(32, 6);
        let mut skip = vec![false; ds.len()];
        for &s in &sky {
            skip[s] = true;
        }
        let whole = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        for cut in [0, 1, 217, 599, 600] {
            let ctx = ExecContext::unlimited();
            let mut left = SignatureAccumulator::new(32, sky.len());
            let mut right = SignatureAccumulator::new(32, sky.len());
            let v = ds.view();
            assert!(scan_columns_budgeted(
                v.slice(0, cut), &MinDominance, &cols, &skip[..cut], &fam, &ctx, &mut left
            )
            .is_none());
            assert!(scan_columns_budgeted(
                v.slice(cut, 600), &MinDominance, &cols, &skip[cut..], &fam, &ctx, &mut right
            )
            .is_none());
            left.merge(&right);
            assert_eq!(left.rows_consumed, 600, "cut = {cut}");
            let merged = left.into_output();
            assert_eq!(merged.matrix, whole.matrix, "cut = {cut}");
            assert_eq!(merged.scores, whole.scores, "cut = {cut}");
        }
    }

    #[test]
    fn column_subset_scan_matches_the_matching_columns() {
        // Scanning a subset of columns yields exactly those columns of
        // the full pass — the invariant the incremental APPEND path
        // relies on — and charges per subset column, not per skyline
        // member.
        use crate::budget::RunBudget;
        let ds = independent(500, 3, 96);
        let sky = naive_skyline(&ds, &MinDominance);
        assert!(sky.len() >= 3);
        let subset: Vec<usize> = sky.iter().copied().step_by(2).collect();
        let cols: Vec<&[f64]> = subset.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(16, 7);
        let mut skip = vec![false; ds.len()];
        for &s in &sky {
            skip[s] = true;
        }
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(u64::MAX));
        let mut acc = SignatureAccumulator::new(16, subset.len());
        assert!(scan_columns_budgeted(ds.view(), &MinDominance, &cols, &skip, &fam, &ctx, &mut acc)
            .is_none());
        let full = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        for (jn, &s) in subset.iter().enumerate() {
            let jf = sky.iter().position(|&x| x == s).unwrap();
            assert_eq!(acc.matrix.column(jn), full.matrix.column(jf));
            assert_eq!(acc.scores[jn], full.scores[jf]);
        }
        let non_sky = (ds.len() - sky.len()) as u64;
        assert_eq!(
            ctx.dominance_tests(),
            non_sky * subset.len() as u64,
            "subset scans charge per subset column"
        );
    }

    use skydiver_data::Dataset;
}
