//! `SigGen-IF` — index-free signature generation (paper Fig. 3).
//!
//! One sequential pass over the data: each non-skyline point is checked
//! against every skyline point; where dominance holds, the point's row
//! hashes are folded into that skyline point's signature. Works for any
//! [`DominanceOrd`], which is the point — no index, no numeric attributes
//! required.

use skydiver_data::{Dataset, DominanceOrd};

use crate::budget::{ExecContext, ExecPhase, Interrupt};

use super::{HashFamily, SigGenOutput, SignatureMatrix};

/// Runs the index-free pass.
///
/// * `ds` — the full data set,
/// * `ord` — dominance order (canonical min-space for numeric data),
/// * `skyline` — skyline point indices; columns of the output follow
///   this order,
/// * `family` — `t` hash functions; `t` becomes the signature size.
///
/// Row hashes are computed once per dominated data point (a hoisted form
/// of the paper's per-`(row, column)` `UpdateMatrix` loop with identical
/// semantics) and the domination scores `|Γ(p)|` are collected in the
/// same pass.
pub fn sig_gen_if<O>(
    ds: &Dataset,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
) -> SigGenOutput
where
    O: DominanceOrd<Item = [f64]>,
{
    let ctx = ExecContext::unlimited();
    let (out, _, interrupt) = sig_gen_if_budgeted(ds, ord, skyline, family, &ctx);
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    out
}

/// Budget-aware [`sig_gen_if`]: charges `m` dominance tests per data row
/// against `ctx` and stops at the first exhausted limit.
///
/// Returns `(output, rows_scanned, interrupt)`. When `interrupt` is
/// `Some`, the signatures and scores cover exactly the first
/// `rows_scanned` data rows — a consistent fingerprint of a data prefix,
/// usable for inspection but not for selection (the Jaccard estimates
/// are biased toward the scanned prefix), which is why the pipeline
/// skips selection after a fingerprint-phase interrupt.
pub fn sig_gen_if_budgeted<O>(
    ds: &Dataset,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
    ctx: &ExecContext,
) -> (SigGenOutput, usize, Option<Interrupt>)
where
    O: DominanceOrd<Item = [f64]>,
{
    let t = family.len();
    let m = skyline.len();
    let mut matrix = SignatureMatrix::new(t, m);
    let mut scores = vec![0u64; m];

    let mut is_skyline = vec![false; ds.len()];
    for &s in skyline {
        is_skyline[s] = true;
    }

    let mut row_hashes = vec![0u64; t];
    let mut dominators: Vec<usize> = Vec::with_capacity(m);

    for (row, p) in ds.iter().enumerate() {
        if let Err(int) = ctx.charge_dominance_tests(m as u64, ExecPhase::Fingerprint) {
            return (SigGenOutput { matrix, scores }, row, Some(int));
        }
        if is_skyline[row] {
            continue;
        }
        dominators.clear();
        for (j, &s) in skyline.iter().enumerate() {
            if ord.dominates(ds.point(s), p) {
                dominators.push(j);
            }
        }
        if dominators.is_empty() {
            continue;
        }
        family.hash_all(row as u64, &mut row_hashes);
        for &j in &dominators {
            matrix.update_column(j, &row_hashes);
            scores[j] += 1;
        }
    }

    (SigGenOutput { matrix, scores }, ds.len(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::GammaSets;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_skyline::naive_skyline;

    #[test]
    fn scores_match_exact_gamma() {
        let ds = independent(500, 3, 90);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(32, 1);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        assert_eq!(out.scores, g.scores());
    }

    #[test]
    fn estimates_concentrate_around_exact_jaccard() {
        let ds = independent(2000, 2, 91);
        let sky = naive_skyline(&ds, &MinDominance);
        assert!(sky.len() >= 4, "need a few skyline points");
        let fam = HashFamily::new(512, 2);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let mut worst: f64 = 0.0;
        for i in 0..sky.len() {
            for j in (i + 1)..sky.len() {
                let est = out.matrix.estimated_similarity(i, j);
                let exact = g.jaccard_similarity(i, j);
                worst = worst.max((est - exact).abs());
            }
        }
        // 512 slots → standard error ≈ sqrt(s(1-s)/512) ≤ 0.023; allow 5σ.
        assert!(worst < 0.12, "worst estimation error {worst}");
    }

    #[test]
    fn identical_gamma_sets_give_identical_signatures() {
        // Two duplicate skyline points dominate exactly the same set.
        let mut rows = vec![[0.0, 0.5], [0.5, 0.0]];
        for i in 0..50 {
            rows.push([0.6 + (i as f64) * 0.001, 0.6]);
        }
        let ds = Dataset::from_rows(2, &rows);
        let sky = naive_skyline(&ds, &MinDominance);
        assert_eq!(sky, vec![0, 1]);
        let fam = HashFamily::new(64, 3);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        // Both dominate exactly rows 2..52 → identical signatures.
        assert_eq!(out.matrix.column(0), out.matrix.column(1));
        assert_eq!(out.matrix.estimated_similarity(0, 1), 1.0);
    }

    #[test]
    fn undominating_skyline_point_keeps_inf_signature() {
        // An isolated skyline point that dominates nothing (paper Fig. 1
        // point `a` is close: it dominates a single node; here: none).
        let ds = Dataset::from_rows(2, &[[0.0, 1.0], [1.0, 0.0], [1.5, 0.5]]);
        let sky = naive_skyline(&ds, &MinDominance);
        assert_eq!(sky, vec![0, 1]);
        let fam = HashFamily::new(16, 4);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        // Point 0 dominates nothing: all-∞ column, score 0.
        assert_eq!(out.scores[0], 0);
        assert!(out
            .matrix
            .column(0)
            .iter()
            .all(|&v| v == super::super::INF_SLOT));
        // Point 1 dominates row 2.
        assert_eq!(out.scores[1], 1);
    }

    #[test]
    fn budgeted_pass_stops_on_dominance_budget() {
        use crate::budget::{ExecContext, RunBudget, StopReason};
        let ds = independent(500, 3, 92);
        let sky = naive_skyline(&ds, &MinDominance);
        let m = sky.len() as u64;
        let fam = HashFamily::new(16, 1);
        // Budget covers exactly 100 rows' worth of dominance tests.
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(100 * m));
        let (out, rows, int) = sig_gen_if_budgeted(&ds, &MinDominance, &sky, &fam, &ctx);
        let int = int.expect("budget must trip");
        assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));
        assert_eq!(rows, 100, "stops after the funded prefix");
        // Scores count only the scanned prefix.
        let total: u64 = out.scores.iter().sum();
        let full = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        assert!(total <= full.scores.iter().sum::<u64>());
    }

    use skydiver_data::Dataset;
}
