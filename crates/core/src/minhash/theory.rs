//! Theoretical guarantees of the MinHash approximation (paper §4.2.1).
//!
//! Datar & Muthukrishnan: with signature size
//! `t = Ω(ε⁻³ β⁻¹ log(1/δ))`, with probability ≥ 1 − δ every similarity
//! obeys `(1−ε)Js + εβ ≤ Ĵs ≤ (1+ε)Js + εβ`. From this the paper derives
//! Theorem 1 (how far the signature-space optimum can fall below the
//! true k-MMDP optimum) and Corollary 1 (the same for the greedy
//! 2-approximation run on signatures).

/// Signature size from the (ε, β, δ) guarantee:
/// `t = ⌈c · ε⁻³ · β⁻¹ · ln(1/δ)⌉`.
///
/// The asymptotic bound leaves the constant unspecified; `c = 1` is the
/// conventional reading. Panics unless `0 < ε < 1`, `0 < β < 1`,
/// `0 < δ < 1` and `c > 0`.
pub fn signature_size(eps: f64, beta: f64, delta: f64, c: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0, 1)");
    assert!(beta > 0.0 && beta < 1.0, "β must be in (0, 1)");
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    assert!(c > 0.0, "constant must be positive");
    (c * eps.powi(-3) / beta * (1.0 / delta).ln()).ceil() as usize
}

/// Theorem 1: if `OPT` is the true k-MMDP optimum and the problem is
/// solved *optimally* in signature space, the distance of the returned
/// pair satisfies `Jd(a,b) ≥ (1+ε)/(1−ε) · OPT − 2ε/(1−ε)`.
///
/// Returns that lower bound (clamped to `[0, 1]`, the range of `Jd`).
pub fn theorem1_bound(opt: f64, eps: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0, 1)");
    (((1.0 + eps) * opt - 2.0 * eps) / (1.0 - eps)).clamp(0.0, 1.0)
}

/// Corollary 1: running the greedy 2-approximation on signatures gives
/// `Jd(a,b) ≥ ½ · (1+ε)/(1−ε) · OPT − ε/(1−ε)`.
pub fn corollary1_bound(opt: f64, eps: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "ε must be in (0, 1)");
    ((0.5 * (1.0 + eps) * opt - eps) / (1.0 - eps)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_size_grows_with_tighter_eps() {
        let loose = signature_size(0.5, 0.5, 0.1, 1.0);
        let tight = signature_size(0.1, 0.5, 0.1, 1.0);
        assert!(tight > loose * 50, "ε⁻³ scaling: {loose} vs {tight}");
    }

    #[test]
    fn signature_size_reference_value() {
        // ε=β=0.5, δ=e⁻¹: 1 · 8 · 2 · 1 = 16.
        let t = signature_size(0.5, 0.5, (-1.0f64).exp(), 1.0);
        assert_eq!(t, 16);
    }

    #[test]
    fn theorem1_bound_tight_at_eps_to_zero() {
        // As ε → 0 the bound approaches OPT itself.
        assert!((theorem1_bound(0.8, 1e-9) - 0.8).abs() < 1e-6);
        // The bound never exceeds what Jd can be and never goes negative.
        assert_eq!(theorem1_bound(0.01, 0.5), 0.0);
        assert!(theorem1_bound(1.0, 0.3) <= 1.0);
    }

    #[test]
    fn corollary1_is_half_of_theorem1_plus_slack() {
        let (opt, eps) = (0.9, 0.05);
        let c = corollary1_bound(opt, eps);
        let t = theorem1_bound(opt, eps);
        assert!(c < t, "greedy bound must be weaker");
        assert!(c > 0.0);
    }

    #[test]
    #[should_panic(expected = "ε must be in (0, 1)")]
    fn invalid_eps_rejected() {
        let _ = signature_size(1.5, 0.5, 0.1, 1.0);
    }
}
