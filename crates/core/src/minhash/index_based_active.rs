//! `SigGen-IB/A` — index-based signature generation with *inherited*
//! dominance classifications.
//!
//! The Fig. 4 algorithm re-classifies **every** skyline point against
//! every visited entry, an `O(m)` cost per entry that dominates CPU time
//! for large skylines. But classification is monotone down the tree:
//!
//! * a point that **fully dominates** an MBR fully dominates every
//!   descendant MBR — it never needs re-checking, only remembering;
//! * a point that dominates **no part** of an MBR dominates no part of
//!   any descendant — it can be dropped from the subtree entirely;
//! * only the **partial** dominators remain undecided below.
//!
//! So the frontier carries (a) the set of still-partial "active" points
//! to re-classify and (b) an immutable chain of already-full ancestors.
//! Row ids follow the same deterministic range scheme as
//! [`sig_gen_ib`](super::sig_gen_ib) — each entry owns
//! `[base, base + e.count)` derived from sibling `count` prefix sums —
//! so the output is bit-identical to `sig_gen_ib` (same row ids, same
//! updates); only the CPU profile changes. The `ablation` harness
//! quantifies the speed-up.

use std::sync::Arc;

use skydiver_rtree::{classify_dominance, BufferPool, Child, MbrDominance, PageId, RTree};

use super::{HashFamily, IbStats, SigGenOutput, SignatureMatrix};

/// A persistent chain of "fully dominating" skyline-point sets gathered
/// along the path from the root. Shared with the parallel index-based
/// pass ([`super::sig_gen_ib_parallel`]), whose frontier items carry the
/// same inherited classifications across thread partitions.
pub(crate) struct FullChain {
    pub(crate) fulls: Vec<usize>,
    pub(crate) parent: Option<Arc<FullChain>>,
}

impl FullChain {
    pub(crate) fn for_each(&self, f: &mut impl FnMut(usize)) {
        for &j in &self.fulls {
            // lint: allow(R2) -- walks one root-to-leaf chain of full
            // classifications, bounded by tree height * m
            f(j);
        }
        if let Some(p) = &self.parent {
            p.for_each(f);
        }
    }

    pub(crate) fn count(&self) -> usize {
        self.fulls.len() + self.parent.as_ref().map_or(0, |p| p.count())
    }
}

/// Runs the inherited-classification index-based pass. Arguments and
/// output match [`sig_gen_ib`](super::sig_gen_ib) exactly.
pub fn sig_gen_ib_active(
    tree: &RTree,
    pool: &mut BufferPool,
    skyline_pts: &[&[f64]],
    family: &HashFamily,
) -> (SigGenOutput, IbStats) {
    let t = family.len();
    let m = skyline_pts.len();
    let mut matrix = SignatureMatrix::new(t, m);
    let mut scores = vec![0u64; m];
    let mut stats = IbStats::default();
    if tree.is_empty() || m == 0 {
        return (SigGenOutput { matrix, scores }, stats);
    }

    let mut row_hashes = vec![0u64; t];

    type Frontier = Vec<(PageId, u64, Arc<FullChain>, Arc<Vec<usize>>)>;
    let root_chain = Arc::new(FullChain {
        fulls: Vec::new(),
        parent: None,
    });
    let all_active: Arc<Vec<usize>> = Arc::new((0..m).collect());
    let mut frontier: Frontier = vec![(tree.root(), 0, root_chain, all_active)];

    while let Some((pid, node_base, chain, active)) = frontier.pop() {
        // lint: allow(R2) -- the active-pruning pass mirrors sig_gen_ib's
        // unbudgeted signature (no ExecContext parameter); the budgeted
        // production traversal lives in parallel_ib and polls per node
        let node = tree.read_node(pool, pid);
        stats.nodes_read += 1;
        let mut base = node_base;
        for e in &node.entries {
            let entry_base = base;
            base += e.count;
            let mut newly_full: Vec<usize> = Vec::new();
            let mut still_partial: Vec<usize> = Vec::new();
            for &j in active.iter() {
                match classify_dominance(skyline_pts[j], &e.mbr) {
                    MbrDominance::Full => newly_full.push(j),
                    MbrDominance::Partial => still_partial.push(j),
                    MbrDominance::None => {}
                }
            }
            if !still_partial.is_empty() {
                match e.child {
                    Child::Node(c) => {
                        let child_chain = Arc::new(FullChain {
                            fulls: newly_full,
                            parent: Some(chain.clone()),
                        });
                        frontier.push((c, entry_base, child_chain, Arc::new(still_partial)));
                        continue;
                    }
                    Child::Point(_) => {
                        // lint: allow(R1) -- a point MBR (lo == hi) classifies
                        // as Full or None, never Partial
                        unreachable!("degenerate MBRs are never partially dominated")
                    }
                }
            }
            // All dominators of this subtree are decided: the chain plus
            // the newly full ones.
            let full_count = newly_full.len() + chain.count();
            if full_count == 0 {
                stats.skipped += 1;
                continue;
            }
            stats.bulk_updates += 1;
            for r in entry_base..entry_base + e.count {
                family.hash_all(r, &mut row_hashes);
                for &j in &newly_full {
                    matrix.update_column(j, &row_hashes);
                }
                let mut apply = |j: usize| matrix.update_column(j, &row_hashes);
                chain.for_each(&mut apply);
            }
            for &j in &newly_full {
                scores[j] += e.count;
            }
            let mut bump = |j: usize| scores[j] += e.count;
            chain.for_each(&mut bump);
        }
    }

    (SigGenOutput { matrix, scores }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::sig_gen_ib;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, clustered, independent};
    use skydiver_skyline::naive_skyline;

    fn both(ds: &skydiver_data::Dataset, t: usize) -> (SigGenOutput, SigGenOutput) {
        let sky = naive_skyline(ds, &MinDominance);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(t, 5);
        let tree = skydiver_rtree::RTree::bulk_load(ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let (a, _) = sig_gen_ib(&tree, &mut pool, &pts, &fam);
        let (b, _) = sig_gen_ib_active(&tree, &mut pool, &pts, &fam);
        (a, b)
    }

    #[test]
    fn bit_identical_to_plain_ib() {
        for ds in [
            independent(2000, 3, 120),
            anticorrelated(1500, 3, 121),
            clustered(2000, 2, 6, 0.05, 122),
        ] {
            let (a, b) = both(&ds, 32);
            assert_eq!(a.matrix, b.matrix);
            assert_eq!(a.scores, b.scores);
        }
    }

    #[test]
    fn identical_on_high_dims() {
        let ds = independent(1200, 5, 123);
        let (a, b) = both(&ds, 16);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn empty_inputs() {
        let ds = skydiver_data::Dataset::new(2);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(4);
        let fam = HashFamily::new(4, 1);
        let (out, stats) = sig_gen_ib_active(&tree, &mut pool, &[], &fam);
        assert_eq!(out.matrix.m(), 0);
        assert_eq!(stats, IbStats::default());
    }
}
