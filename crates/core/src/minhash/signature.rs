//! The signature matrix `M̂` (t rows × m columns, column-major).

/// Sentinel for "no row hashed yet" (the `∞` of the paper's Fig. 3).
pub const INF_SLOT: u64 = u64::MAX;

/// A `t × m` MinHash signature matrix, one column per skyline point,
/// stored column-major so per-point signatures are contiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureMatrix {
    t: usize,
    m: usize,
    data: Vec<u64>,
}

impl SignatureMatrix {
    /// An all-`∞` matrix for `m` skyline points and signature size `t`.
    pub fn new(t: usize, m: usize) -> Self {
        assert!(t > 0, "signature size must be positive");
        SignatureMatrix {
            t,
            m,
            data: vec![INF_SLOT; t * m],
        }
    }

    /// Signature size `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of skyline points `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The signature of skyline point `j` (length `t`).
    #[inline]
    pub fn column(&self, j: usize) -> &[u64] {
        &self.data[j * self.t..(j + 1) * self.t]
    }

    /// Folds the row hashes of one dominated point into column `j`
    /// (the paper's `UpdateMatrix`): slot-wise minimum.
    #[inline]
    pub fn update_column(&mut self, j: usize, row_hashes: &[u64]) {
        debug_assert_eq!(row_hashes.len(), self.t);
        let col = &mut self.data[j * self.t..(j + 1) * self.t];
        for (slot, &h) in col.iter_mut().zip(row_hashes) {
            // lint: allow(R2) -- t slot-wise minima per dominated point;
            // the row loops charge the budget
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Estimated Jaccard similarity `Ĵs(i, j)`: the fraction of slots
    /// where the two signatures agree. Two `∞` slots agree — consistent
    /// with the convention that two empty dominated sets are identical.
    #[inline]
    pub fn estimated_similarity(&self, i: usize, j: usize) -> f64 {
        Self::similarity_between(self.column(i), self.column(j))
    }

    /// Agreement fraction of two explicit signature columns — the kernel
    /// entry point for callers that hoist `column(i)` out of an inner
    /// loop over `j` (e.g. the FarthestPair seed scan).
    #[inline]
    pub fn similarity_between(a: &[u64], b: &[u64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        crate::kernels::agreement_count(a, b) as f64 / a.len() as f64
    }

    /// Estimated Jaccard distance `Ĵd = 1 − Ĵs`.
    #[inline]
    pub fn estimated_distance(&self, i: usize, j: usize) -> f64 {
        1.0 - self.estimated_similarity(i, j)
    }

    /// Overwrites column `j` with an already-folded signature (used when
    /// assembling a matrix from cached per-shard columns).
    ///
    /// # Panics
    /// Panics if `col.len() != t`.
    #[inline]
    pub fn set_column(&mut self, j: usize, col: &[u64]) {
        assert_eq!(col.len(), self.t, "column length mismatch");
        self.data[j * self.t..(j + 1) * self.t].copy_from_slice(col);
    }

    /// Merges another matrix (from a parallel shard) by element-wise
    /// minimum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge_min(&mut self, other: &SignatureMatrix) {
        assert_eq!((self.t, self.m), (other.t, other.m), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            // lint: allow(R2) -- element-wise fold of two t*m matrices;
            // runs once per shard merge, no I/O
            if b < *a {
                *a = b;
            }
        }
    }

    /// Bytes consumed by the signatures (`t · m · 8`) — the MinHash side
    /// of the paper's Figure 13 memory comparison.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }
}

/// A selection-side transpose of a [`SignatureMatrix`]: `t` slot rows ×
/// `m` point columns, *slot-major* (`data[i · m + j]` = slot `i` of
/// point `j`).
///
/// The matrix itself stays column-major — that is what `update_column`
/// (the fingerprint hot path), the shard accumulator merge and the
/// SKYSIG persist codec all want, and changing it would silently
/// reshuffle every artefact. Selection wants the opposite orientation:
/// a greedy round compares one pivot against *all* candidates, and
/// slot-major storage turns that one-vs-all agreement count into `t`
/// passes over contiguous `u64` lanes (see DESIGN.md §14). The
/// transpose is materialised once per selection — a single `t · m` copy,
/// roughly the cost of one greedy round's reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMajorSignatures {
    t: usize,
    m: usize,
    data: Vec<u64>,
}

/// Candidate-block width of the batched agreement count: 1024 `f64`
/// accumulators (8 KiB) stay L1-resident across all `t` slot rows, so
/// the signature data streams through cache exactly once per call.
const SLOT_TILE: usize = 1024;

impl SlotMajorSignatures {
    /// Transposes `sig` (one `t · m` copy).
    pub fn from_matrix(sig: &SignatureMatrix) -> Self {
        let (t, m) = (sig.t(), sig.m());
        let mut data = vec![0u64; t * m];
        for (j, col) in sig.data.chunks_exact(t.max(1)).enumerate() {
            // lint: allow(R2) -- one-time O(t·m) transpose at selection
            // setup, amortised over every greedy round that follows; the
            // rounds themselves poll the budget
            for (i, &v) in col.iter().enumerate() {
                data[i * m + j] = v;
            }
        }
        SlotMajorSignatures { t, m, data }
    }

    /// Signature size `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of points `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Batched estimated Jaccard distances: writes
    /// `1 − agreement(pivot, lo + jj) / t` into `out[jj]` for every
    /// `jj < out.len()` — bit-identical to
    /// [`SignatureMatrix::estimated_distance`]`(pivot, lo + jj)`.
    ///
    /// # Panics
    /// Panics if `pivot` or `lo + out.len()` is out of range.
    pub fn distances_into(&self, pivot: usize, lo: usize, out: &mut [f64]) {
        let n = out.len();
        assert!(pivot < self.m, "pivot column out of range");
        assert!(lo + n <= self.m, "candidate range out of range");
        let t = self.t as f64;
        // Stack-resident agreement counts for one candidate block: 8 KiB
        // that stays in L1 across all `t` slot rows, converted to f64
        // distances once per tile (the u64 → f64 convert has no packed
        // form, so it must stay out of the per-slot inner loop).
        let mut counts = [0u64; SLOT_TILE];
        let mut b0 = 0;
        while b0 < n {
            // lint: allow(R2) -- bounded O(t·m) pass, one per greedy
            // round; the round loop in dispersion.rs polls the budget
            let b1 = (b0 + SLOT_TILE).min(n);
            let w = b1 - b0;
            counts[..w].fill(0);
            // Four slot rows joined per accumulator pass: the counts
            // tile is read-modify-written once per quad instead of once
            // per row, which is what puts the batched kernel ahead of
            // the per-pair path (see `equality_accumulate4`).
            let mut i = 0;
            while i + 4 <= self.t {
                let base = |k: usize| (i + k) * self.m;
                let pivots = [
                    self.data[base(0) + pivot],
                    self.data[base(1) + pivot],
                    self.data[base(2) + pivot],
                    self.data[base(3) + pivot],
                ];
                let rows = [
                    &self.data[base(0) + lo + b0..base(0) + lo + b1],
                    &self.data[base(1) + lo + b0..base(1) + lo + b1],
                    &self.data[base(2) + lo + b0..base(2) + lo + b1],
                    &self.data[base(3) + lo + b0..base(3) + lo + b1],
                ];
                crate::kernels::equality_accumulate4(rows, pivots, &mut counts[..w]);
                i += 4;
            }
            while i < self.t {
                let base = i * self.m;
                let pv = self.data[base + pivot];
                let row = &self.data[base + lo + b0..base + lo + b1];
                crate::kernels::equality_accumulate(row, pv, &mut counts[..w]);
                i += 1;
            }
            for (d, &c) in out[b0..b1].iter_mut().zip(&counts[..w]) {
                *d = 1.0 - c as f64 / t;
            }
            b0 = b1;
        }
    }

    /// Bytes resident in the transpose (`t · m · 8`) — exactly the extra
    /// memory a selection pass pins on top of the matrix itself.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_infinity() {
        let m = SignatureMatrix::new(4, 3);
        assert!(m.column(0).iter().all(|&v| v == INF_SLOT));
        assert_eq!(m.t(), 4);
        assert_eq!(m.m(), 3);
        assert_eq!(m.memory_bytes(), 4 * 3 * 8);
    }

    #[test]
    fn update_takes_minimum() {
        let mut m = SignatureMatrix::new(3, 2);
        m.update_column(0, &[5, 7, 9]);
        m.update_column(0, &[6, 2, 9]);
        assert_eq!(m.column(0), &[5, 2, 9]);
        assert_eq!(m.column(1), &[INF_SLOT; 3]);
    }

    #[test]
    fn similarity_counts_agreeing_slots() {
        let mut m = SignatureMatrix::new(4, 2);
        m.update_column(0, &[1, 2, 3, 4]);
        m.update_column(1, &[1, 2, 9, 9]);
        assert_eq!(m.estimated_similarity(0, 1), 0.5);
        assert_eq!(m.estimated_distance(0, 1), 0.5);
        // Self-similarity is 1.
        assert_eq!(m.estimated_similarity(0, 0), 1.0);
    }

    #[test]
    fn empty_columns_are_identical() {
        let m = SignatureMatrix::new(5, 2);
        assert_eq!(m.estimated_similarity(0, 1), 1.0);
    }

    #[test]
    fn merge_min_is_elementwise() {
        let mut a = SignatureMatrix::new(2, 2);
        let mut b = SignatureMatrix::new(2, 2);
        a.update_column(0, &[5, 1]);
        b.update_column(0, &[2, 8]);
        b.update_column(1, &[7, 7]);
        a.merge_min(&b);
        assert_eq!(a.column(0), &[2, 1]);
        assert_eq!(a.column(1), &[7, 7]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = SignatureMatrix::new(2, 2);
        let b = SignatureMatrix::new(3, 2);
        a.merge_min(&b);
    }

    #[test]
    fn slot_major_distances_are_bit_identical_to_pairwise() {
        let (t, m) = (7, 23);
        let mut sig = SignatureMatrix::new(t, m);
        for j in 0..m {
            let hashes: Vec<u64> = (0..t).map(|i| ((i * j + j) % 5) as u64).collect();
            sig.update_column(j, &hashes);
        }
        // Leave one column at ∞ to cover the empty-dominated-set case.
        let slots = SlotMajorSignatures::from_matrix(&sig);
        assert_eq!((slots.t(), slots.m()), (t, m));
        let mut out = vec![0.0f64; m];
        for pivot in 0..m {
            for lo in [0, 1, m / 2, m - 1] {
                let n = m - lo;
                slots.distances_into(pivot, lo, &mut out[..n]);
                for (jj, &got) in out[..n].iter().enumerate() {
                    let want = sig.estimated_distance(pivot, lo + jj);
                    assert!(
                        got.to_bits() == want.to_bits(),
                        "pivot {pivot} lo {lo} jj {jj}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn slot_major_spans_multiple_tiles() {
        // m > SLOT_TILE exercises the candidate-block loop boundary.
        let (t, m) = (3, SLOT_TILE + 37);
        let mut sig = SignatureMatrix::new(t, m);
        for j in 0..m {
            let hashes: Vec<u64> = (0..t).map(|i| ((j * 31 + i * 7) % 11) as u64).collect();
            sig.update_column(j, &hashes);
        }
        let slots = SlotMajorSignatures::from_matrix(&sig);
        let mut out = vec![0.0f64; m];
        slots.distances_into(5, 0, &mut out);
        for (jj, &d) in out.iter().enumerate() {
            assert_eq!(d.to_bits(), sig.estimated_distance(5, jj).to_bits(), "jj {jj}");
        }
    }

    #[test]
    fn slot_major_memory_bytes_is_exact() {
        let sig = SignatureMatrix::new(4, 3);
        let slots = SlotMajorSignatures::from_matrix(&sig);
        // Exactly t · m · 8 — the transpose adds no padding, so a
        // selection pass pins precisely one extra matrix worth of bytes.
        assert_eq!(slots.memory_bytes(), 4 * 3 * 8);
        assert_eq!(slots.memory_bytes(), sig.memory_bytes());
    }
}
