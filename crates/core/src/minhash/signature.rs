//! The signature matrix `M̂` (t rows × m columns, column-major).

/// Sentinel for "no row hashed yet" (the `∞` of the paper's Fig. 3).
pub const INF_SLOT: u64 = u64::MAX;

/// A `t × m` MinHash signature matrix, one column per skyline point,
/// stored column-major so per-point signatures are contiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureMatrix {
    t: usize,
    m: usize,
    data: Vec<u64>,
}

impl SignatureMatrix {
    /// An all-`∞` matrix for `m` skyline points and signature size `t`.
    pub fn new(t: usize, m: usize) -> Self {
        assert!(t > 0, "signature size must be positive");
        SignatureMatrix {
            t,
            m,
            data: vec![INF_SLOT; t * m],
        }
    }

    /// Signature size `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Number of skyline points `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The signature of skyline point `j` (length `t`).
    #[inline]
    pub fn column(&self, j: usize) -> &[u64] {
        &self.data[j * self.t..(j + 1) * self.t]
    }

    /// Folds the row hashes of one dominated point into column `j`
    /// (the paper's `UpdateMatrix`): slot-wise minimum.
    #[inline]
    pub fn update_column(&mut self, j: usize, row_hashes: &[u64]) {
        debug_assert_eq!(row_hashes.len(), self.t);
        let col = &mut self.data[j * self.t..(j + 1) * self.t];
        for (slot, &h) in col.iter_mut().zip(row_hashes) {
            // lint: allow(R2) -- t slot-wise minima per dominated point;
            // the row loops charge the budget
            if h < *slot {
                *slot = h;
            }
        }
    }

    /// Estimated Jaccard similarity `Ĵs(i, j)`: the fraction of slots
    /// where the two signatures agree. Two `∞` slots agree — consistent
    /// with the convention that two empty dominated sets are identical.
    #[inline]
    pub fn estimated_similarity(&self, i: usize, j: usize) -> f64 {
        Self::similarity_between(self.column(i), self.column(j))
    }

    /// Agreement fraction of two explicit signature columns — the kernel
    /// entry point for callers that hoist `column(i)` out of an inner
    /// loop over `j` (e.g. the FarthestPair seed scan).
    #[inline]
    pub fn similarity_between(a: &[u64], b: &[u64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        crate::kernels::agreement_count(a, b) as f64 / a.len() as f64
    }

    /// Estimated Jaccard distance `Ĵd = 1 − Ĵs`.
    #[inline]
    pub fn estimated_distance(&self, i: usize, j: usize) -> f64 {
        1.0 - self.estimated_similarity(i, j)
    }

    /// Overwrites column `j` with an already-folded signature (used when
    /// assembling a matrix from cached per-shard columns).
    ///
    /// # Panics
    /// Panics if `col.len() != t`.
    #[inline]
    pub fn set_column(&mut self, j: usize, col: &[u64]) {
        assert_eq!(col.len(), self.t, "column length mismatch");
        self.data[j * self.t..(j + 1) * self.t].copy_from_slice(col);
    }

    /// Merges another matrix (from a parallel shard) by element-wise
    /// minimum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge_min(&mut self, other: &SignatureMatrix) {
        assert_eq!((self.t, self.m), (other.t, other.m), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            // lint: allow(R2) -- element-wise fold of two t*m matrices;
            // runs once per shard merge, no I/O
            if b < *a {
                *a = b;
            }
        }
    }

    /// Bytes consumed by the signatures (`t · m · 8`) — the MinHash side
    /// of the paper's Figure 13 memory comparison.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_infinity() {
        let m = SignatureMatrix::new(4, 3);
        assert!(m.column(0).iter().all(|&v| v == INF_SLOT));
        assert_eq!(m.t(), 4);
        assert_eq!(m.m(), 3);
        assert_eq!(m.memory_bytes(), 4 * 3 * 8);
    }

    #[test]
    fn update_takes_minimum() {
        let mut m = SignatureMatrix::new(3, 2);
        m.update_column(0, &[5, 7, 9]);
        m.update_column(0, &[6, 2, 9]);
        assert_eq!(m.column(0), &[5, 2, 9]);
        assert_eq!(m.column(1), &[INF_SLOT; 3]);
    }

    #[test]
    fn similarity_counts_agreeing_slots() {
        let mut m = SignatureMatrix::new(4, 2);
        m.update_column(0, &[1, 2, 3, 4]);
        m.update_column(1, &[1, 2, 9, 9]);
        assert_eq!(m.estimated_similarity(0, 1), 0.5);
        assert_eq!(m.estimated_distance(0, 1), 0.5);
        // Self-similarity is 1.
        assert_eq!(m.estimated_similarity(0, 0), 1.0);
    }

    #[test]
    fn empty_columns_are_identical() {
        let m = SignatureMatrix::new(5, 2);
        assert_eq!(m.estimated_similarity(0, 1), 1.0);
    }

    #[test]
    fn merge_min_is_elementwise() {
        let mut a = SignatureMatrix::new(2, 2);
        let mut b = SignatureMatrix::new(2, 2);
        a.update_column(0, &[5, 1]);
        b.update_column(0, &[2, 8]);
        b.update_column(1, &[7, 7]);
        a.merge_min(&b);
        assert_eq!(a.column(0), &[2, 1]);
        assert_eq!(a.column(1), &[7, 7]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_shape_mismatch() {
        let mut a = SignatureMatrix::new(2, 2);
        let b = SignatureMatrix::new(3, 2);
        a.merge_min(&b);
    }
}
