//! Phase 1 — fingerprinting with MinHashing (paper §4.1).
//!
//! Every skyline point's dominated set `Γ(p)` (a column of the conceptual
//! domination matrix) is compressed into a signature of `t` slots using
//! min-wise hashing: slot `i` keeps the minimum of `hᵢ(row)` over all
//! rows dominated by the point. For each hash function,
//! `Prob[hᵢ(p) = hᵢ(q)] = Js(p, q)` (Broder et al.), so the fraction of
//! agreeing slots estimates the Jaccard similarity.
//!
//! Generation comes in three flavours:
//! * [`sig_gen_if`] — index-free single pass (Fig. 3),
//! * [`sig_gen_ib`] — aggregate-R*-tree traversal that updates whole
//!   fully-dominated MBRs without opening them (Fig. 4),
//! * [`sig_gen_parallel`] — sharded variant of `sig_gen_if` (the paper's
//!   future-work item ii), merging per-shard matrices by element-wise
//!   minimum,
//! * [`sig_gen_ib_active`] — an engineering refinement of `sig_gen_ib`
//!   that inherits dominance classifications down the tree
//!   (bit-identical output, much less CPU for large skylines),
//! * [`sig_gen_ib_parallel`] — `sig_gen_ib` over disjoint subtree
//!   partitions on scoped threads, bit-identical thanks to the
//!   deterministic row-id range scheme.

mod accumulator;
mod family;
mod fold;
mod generic;
mod index_based;
mod index_based_active;
mod index_free;
mod parallel;
mod parallel_ib;
pub mod persist;
mod signature;
pub mod theory;

pub use accumulator::{ShardFingerprint, SignatureAccumulator};
pub use family::HashFamily;
pub use fold::{fold_shard, ShardFold};
pub use generic::{diversify_generic, sig_gen_if_generic};
pub use index_based::{sig_gen_ib, sig_gen_ib_budgeted, IbStats};
pub use index_based_active::sig_gen_ib_active;
pub use index_free::{scan_columns_budgeted, sig_gen_if, sig_gen_if_budgeted};
pub use parallel::{scan_columns_parallel_budgeted, sig_gen_parallel, sig_gen_parallel_budgeted};
pub use parallel_ib::{sig_gen_ib_parallel, sig_gen_ib_parallel_budgeted};
pub use signature::{SignatureMatrix, SlotMajorSignatures, INF_SLOT};

/// Output of a signature-generation pass: the signature matrix plus the
/// exact domination scores `|Γ(p)|` gathered along the way (used to seed
/// and tie-break the selection phase).
#[derive(Debug, Clone)]
pub struct SigGenOutput {
    /// `t × m` signature matrix (column per skyline point).
    pub matrix: SignatureMatrix,
    /// `|Γ(sⱼ)|` per skyline point.
    pub scores: Vec<u64>,
}
