//! Parallel `SigGen-IB` — the index-based pass over disjoint subtree
//! partitions on scoped threads, with inherited dominance
//! classifications (the `SigGen-IB/A` refinement) inside every
//! partition.
//!
//! The deterministic row-id ranges of [`sig_gen_ib`](super::sig_gen_ib)
//! (every entry owns `[base, base + e.count)` from the subtree `count`
//! aggregates) make the traversal order-independent: any partition of
//! the frontier processes the exact same `(row id, dominator set)`
//! pairs, and MinHash matrices merge associatively by slot-wise minimum.
//! So the pass seeds a frontier of independent subtrees breadth-first,
//! splits it into **contiguous blocks** (one per thread — neighbouring
//! subtrees share ancestors and MBR locality, so a block is a coarse,
//! cache-friendly work unit instead of a round-robin shuffle), and
//! merges the per-thread partial matrices with
//! [`merge_min`](super::SignatureMatrix::merge_min) — **bit-identical**
//! to the sequential pass for every thread count.
//!
//! Each frontier item carries the `SigGen-IB/A` state
//! ([`FullChain`] ancestors plus the still-*active* dominator
//! candidates), so a worker classifies only the points that were
//! partial on the parent entry instead of all `m` — the classification
//! monotonicity argument in
//! [`index_based_active`](super::sig_gen_ib_active) applies unchanged
//! across partition boundaries because the seed phase builds the same
//! chains a sequential `SigGen-IB/A` traversal would.
//!
//! The buffer pool stays shared behind a mutex (one lock per node read),
//! so I/O statistics, fault injection, and poisoning behave exactly as
//! in the sequential pass, and every thread charges the shared
//! [`ExecContext`] so run budgets keep working.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use skydiver_rtree::{classify_dominance, BufferPool, Child, MbrDominance, Node, PageId, RTree};

use crate::budget::{ExecContext, ExecPhase, Interrupt};

use super::index_based_active::FullChain;
use super::{HashFamily, IbStats, SigGenOutput, SignatureAccumulator, SignatureMatrix};

/// How many independent subtrees the breadth-first seed phase gathers
/// per thread before handing the frontier to the workers.
const SEED_FACTOR: usize = 4;

/// A subtree awaiting traversal: page, first owned row id, inherited
/// full-dominator chain and the still-active dominator candidates.
type FrontierItem = (PageId, u64, Arc<FullChain>, Arc<Vec<usize>>);

/// Per-thread accumulator of one traversal partition: the mergeable
/// signature fold plus the traversal-only bookkeeping (I/O stats, rows
/// decided, scratch buffers) that rides along.
struct Acc {
    sig: SignatureAccumulator,
    stats: IbStats,
    rows_decided: u64,
    row_hashes: Vec<u64>,
    full: Vec<usize>,
    partial: Vec<usize>,
}

impl Acc {
    fn new(t: usize, m: usize) -> Self {
        Acc {
            sig: SignatureAccumulator::new(t, m),
            stats: IbStats::default(),
            rows_decided: 0,
            row_hashes: vec![0u64; t],
            full: Vec::with_capacity(m),
            partial: Vec::with_capacity(m),
        }
    }

    /// Folds another partition in: signature algebra via
    /// [`SignatureAccumulator::merge`], stats and row counts by sum.
    fn merge(&mut self, other: &Acc) {
        self.sig.merge(&other.sig);
        self.stats.nodes_read += other.stats.nodes_read;
        self.stats.bulk_updates += other.stats.bulk_updates;
        self.stats.skipped += other.stats.skipped;
        self.rows_decided += other.rows_decided;
    }
}

/// Processes one node's entries with inherited classifications: charge
/// one dominance test per *active* candidate, classify only those, then
/// bulk-update (newly-full plus the ancestor chain) / skip / expand.
/// Returns the interrupt if the shared budget trips mid-node.
///
/// An entry is expanded iff some point classifies `Partial` against it;
/// by downward monotonicity that point was `Partial` on the parent too,
/// i.e. it is in `active` — so expansions, node reads, bulk updates and
/// skips all match the full-reclassification pass exactly.
#[allow(clippy::too_many_arguments)]
fn process_node(
    node: &Node,
    node_base: u64,
    chain: &Arc<FullChain>,
    active: &[usize],
    skyline_pts: &[&[f64]],
    family: &HashFamily,
    ctx: &ExecContext,
    acc: &mut Acc,
    expand: &mut dyn FnMut(PageId, u64, Arc<FullChain>, Arc<Vec<usize>>),
) -> Option<Interrupt> {
    let mut base = node_base;
    for e in &node.entries {
        let entry_base = base;
        base += e.count;
        if let Err(int) = ctx.charge_dominance_tests(active.len() as u64, ExecPhase::Fingerprint)
        {
            return Some(int);
        }
        acc.full.clear();
        acc.partial.clear();
        for &j in active {
            match classify_dominance(skyline_pts[j], &e.mbr) {
                MbrDominance::Full => acc.full.push(j),
                MbrDominance::Partial => acc.partial.push(j),
                MbrDominance::None => {}
            }
        }
        if !acc.partial.is_empty() {
            match e.child {
                Child::Node(c) => {
                    let child_chain = Arc::new(FullChain {
                        fulls: std::mem::take(&mut acc.full),
                        parent: Some(chain.clone()),
                    });
                    expand(c, entry_base, child_chain, Arc::new(std::mem::take(&mut acc.partial)));
                    continue;
                }
                Child::Point(_) => {
                    debug_assert!(false, "degenerate MBRs are never partially dominated");
                    acc.rows_decided += e.count;
                    acc.stats.skipped += 1;
                    continue;
                }
            }
        }
        // Every dominator of this subtree is decided: the inherited
        // chain plus the newly full ones.
        if acc.full.is_empty() && chain.count() == 0 {
            acc.rows_decided += e.count;
            acc.stats.skipped += 1;
            continue;
        }
        acc.stats.bulk_updates += 1;
        for r in entry_base..entry_base + e.count {
            family.hash_all(r, &mut acc.row_hashes);
            for &j in &acc.full {
                acc.sig.matrix.update_column(j, &acc.row_hashes);
            }
            let mut apply = |j: usize| acc.sig.matrix.update_column(j, &acc.row_hashes);
            chain.for_each(&mut apply);
        }
        for &j in &acc.full {
            acc.sig.scores[j] += e.count;
        }
        let mut bump = |j: usize| acc.sig.scores[j] += e.count;
        chain.for_each(&mut bump);
        acc.rows_decided += e.count;
    }
    None
}

/// Parallel [`sig_gen_ib`](super::sig_gen_ib): identical arguments plus
/// a thread count; bit-identical output for every thread count.
pub fn sig_gen_ib_parallel(
    tree: &RTree,
    pool: &mut BufferPool,
    skyline_pts: &[&[f64]],
    family: &HashFamily,
    threads: usize,
) -> (SigGenOutput, IbStats) {
    let ctx = ExecContext::unlimited();
    let (out, stats, _, interrupt) =
        sig_gen_ib_parallel_budgeted(tree, pool, skyline_pts, family, threads, &ctx);
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    (out, stats)
}

/// Budget-aware [`sig_gen_ib_parallel`]: same contract as
/// [`sig_gen_ib_budgeted`](super::sig_gen_ib_budgeted) — every thread
/// charges the shared `ctx` (one dominance test per still-active
/// candidate per entry, the work actually done) and checks the shared
/// pool for poisoning before each node read, so budgets and injected
/// page faults stop all workers within one node's work.
///
/// Uninterrupted output (matrix, scores, stats, rows) is bit-identical
/// to the sequential pass; an interrupted or faulted run covers a
/// timing-dependent subset of entries, exactly like the sharded
/// index-free pass.
pub fn sig_gen_ib_parallel_budgeted(
    tree: &RTree,
    pool: &mut BufferPool,
    skyline_pts: &[&[f64]],
    family: &HashFamily,
    threads: usize,
    ctx: &ExecContext,
) -> (SigGenOutput, IbStats, usize, Option<Interrupt>) {
    let threads = threads.max(1);
    if threads == 1 {
        return super::sig_gen_ib_budgeted(tree, pool, skyline_pts, family, ctx);
    }
    let t = family.len();
    let m = skyline_pts.len();
    if tree.is_empty() || m == 0 {
        return (
            SigGenOutput {
                matrix: SignatureMatrix::new(t, m),
                scores: vec![0u64; m],
            },
            IbStats::default(),
            0,
            None,
        );
    }

    // Seed phase: expand breadth-first through the shared pool until the
    // frontier holds enough independent subtrees to keep every thread
    // busy. Non-expandable entries are folded into the seed accumulator
    // inline — identical work to the sequential pass, just node by node.
    let mut seed_acc = Acc::new(t, m);
    let mut interrupt: Option<Interrupt> = None;
    let target = threads * SEED_FACTOR;
    let root_chain = Arc::new(FullChain {
        fulls: Vec::new(),
        parent: None,
    });
    let all_active: Arc<Vec<usize>> = Arc::new((0..m).collect());
    let mut queue: VecDeque<FrontierItem> =
        VecDeque::from([(tree.root(), 0, root_chain, all_active)]);
    while queue.len() < target {
        // lint: allow(R2) -- process_node charges the budget per node and
        // its Interrupt return breaks this loop
        let Some((pid, base, chain, active)) = queue.pop_front() else {
            break;
        };
        if pool.poisoned() {
            break;
        }
        let node = tree.read_node(pool, pid);
        seed_acc.stats.nodes_read += 1;
        if let Some(int) = process_node(
            node,
            base,
            &chain,
            &active,
            skyline_pts,
            family,
            ctx,
            &mut seed_acc,
            &mut |c, b, ch, act| queue.push_back((c, b, ch, act)),
        ) {
            interrupt = Some(int);
            break;
        }
    }

    let mut partials: Vec<(Acc, Option<Interrupt>)> = Vec::new();
    if interrupt.is_none() && !queue.is_empty() && !pool.poisoned() {
        // Contiguous blocks, not round-robin: the breadth-first queue
        // lists sibling subtrees in tree order, so a contiguous slice is
        // a coarse unit whose subtrees share ancestor chains (the Arc'd
        // FullChains clone by pointer) and spatial locality.
        let block = queue.len().div_ceil(threads);
        let mut buckets: Vec<Vec<FrontierItem>> = Vec::with_capacity(threads);
        while !queue.is_empty() {
            // lint: allow(R2) -- drains at most threads*SEED_FACTOR queued
            // subtrees into `threads` blocks
            let take = block.min(queue.len());
            buckets.push(queue.drain(..take).collect());
        }
        let pool_mx = Mutex::new(pool);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for bucket in buckets {
                // lint: allow(R2) -- spawns at most `threads` scoped workers;
                // each worker's process_node charges the budget per node
                let pool_mx = &pool_mx;
                handles.push(scope.spawn(move || {
                    let mut acc = Acc::new(t, m);
                    let mut interrupt = None;
                    let mut frontier = bucket;
                    while let Some((pid, base, chain, active)) = frontier.pop() {
                        let node = {
                            // lint: allow(R1) -- mutex poison means a sibling
                            // worker panicked mid-read; the join below re-raises
                            // that panic, so recovery here would be dead code
                            let mut guard = pool_mx.lock().expect("pool mutex poisoned");
                            if guard.poisoned() {
                                break;
                            }
                            tree.read_node(&mut guard, pid)
                        };
                        acc.stats.nodes_read += 1;
                        if let Some(int) = process_node(
                            node,
                            base,
                            &chain,
                            &active,
                            skyline_pts,
                            family,
                            ctx,
                            &mut acc,
                            &mut |c, b, ch, act| frontier.push((c, b, ch, act)),
                        ) {
                            interrupt = Some(int);
                            break;
                        }
                    }
                    (acc, interrupt)
                }));
            }
            for h in handles {
                // lint: allow(R2) -- joins at most `threads` handles
                // lint: allow(R1) -- a worker panic is re-raised on the
                // caller by design; swallowing it would drop subtree counts
                partials.push(h.join().expect("ib partition panicked"));
            }
        });
    }

    let mut acc = seed_acc;
    for (p, int) in partials {
        // lint: allow(R2) -- folds `threads` partial accumulators
        acc.merge(&p);
        if interrupt.is_none() {
            interrupt = int;
        }
    }
    (acc.sig.into_output(), acc.stats, acc.rows_decided as usize, interrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::{sig_gen_ib, sig_gen_ib_budgeted};
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, clustered, independent};
    use skydiver_data::Dataset;
    use skydiver_skyline::naive_skyline;

    fn seq_and_par(
        ds: &Dataset,
        t: usize,
        threads: usize,
    ) -> ((SigGenOutput, IbStats), (SigGenOutput, IbStats)) {
        let sky = naive_skyline(ds, &MinDominance);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(t, 5);
        let tree = skydiver_rtree::RTree::bulk_load(ds, 1024);
        let mut pool_a = BufferPool::new(1 << 20);
        let seq = sig_gen_ib(&tree, &mut pool_a, &pts, &fam);
        let mut pool_b = BufferPool::new(1 << 20);
        let par = sig_gen_ib_parallel(&tree, &mut pool_b, &pts, &fam, threads);
        (seq, par)
    }

    #[test]
    fn bit_identical_to_sequential() {
        for threads in [2, 3, 8] {
            for ds in [
                independent(2000, 3, 170),
                anticorrelated(1200, 3, 171),
                clustered(2500, 2, 6, 0.05, 172),
            ] {
                let ((a, sa), (b, sb)) = seq_and_par(&ds, 32, threads);
                assert_eq!(a.matrix, b.matrix, "threads = {threads}");
                assert_eq!(a.scores, b.scores, "threads = {threads}");
                assert_eq!(sa, sb, "stats must match: threads = {threads}");
            }
        }
    }

    #[test]
    fn budgeted_run_trips_across_threads() {
        use crate::budget::{ExecContext, RunBudget, StopReason};
        let ds = independent(4000, 3, 173);
        let sky = naive_skyline(&ds, &MinDominance);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(8, 7);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let ctx = ExecContext::new(
            RunBudget::none().with_max_dominance_tests(5 * sky.len() as u64),
        );
        let (_, _, rows, int) =
            sig_gen_ib_parallel_budgeted(&tree, &mut pool, &pts, &fam, 4, &ctx);
        let int = int.expect("budget must trip");
        assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));
        assert!(rows < ds.len(), "stopped early at {rows} rows");
    }

    #[test]
    fn poisoned_pool_stops_all_workers() {
        use skydiver_rtree::FaultInjection;
        let ds = independent(4000, 3, 174);
        let sky = naive_skyline(&ds, &MinDominance);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(8, 7);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut clean = BufferPool::new(1 << 20);
        let (_, full_stats) = sig_gen_ib(&tree, &mut clean, &pts, &fam);
        let mut pool = BufferPool::new(1 << 20);
        pool.inject_faults(FaultInjection::at_access(2));
        let ctx = ExecContext::unlimited();
        let (_, stats, _, int) =
            sig_gen_ib_parallel_budgeted(&tree, &mut pool, &pts, &fam, 4, &ctx);
        assert!(int.is_none(), "a fault is not a budget interrupt");
        assert!(pool.poisoned(), "injected fault must register");
        assert!(
            stats.nodes_read < full_stats.nodes_read || full_stats.nodes_read <= 3,
            "workers bailed early: {} vs {}",
            stats.nodes_read,
            full_stats.nodes_read
        );
    }

    #[test]
    fn node_reads_counted_once_across_partitions() {
        // The shared pool's I/O statistics must equal the sequential
        // pass: every node is read by exactly one partition.
        let ds = clustered(8000, 3, 8, 0.03, 175);
        let sky = naive_skyline(&ds, &MinDominance);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(8, 9);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut pool_a = BufferPool::new(1 << 20);
        let (_, seq_stats, _, _) = {
            let ctx = ExecContext::unlimited();
            sig_gen_ib_budgeted(&tree, &mut pool_a, &pts, &fam, &ctx)
        };
        let mut pool_b = BufferPool::new(1 << 20);
        let (_, par_stats) = sig_gen_ib_parallel(&tree, &mut pool_b, &pts, &fam, 4);
        assert_eq!(seq_stats, par_stats);
        assert_eq!(
            pool_a.stats().accesses(),
            pool_b.stats().accesses(),
            "shared pool must see the same access count"
        );
    }

    #[test]
    fn empty_inputs() {
        let ds = Dataset::new(2);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(16);
        let fam = HashFamily::new(4, 8);
        let (out, stats) = sig_gen_ib_parallel(&tree, &mut pool, &[], &fam, 4);
        assert_eq!(out.matrix.m(), 0);
        assert_eq!(stats, IbStats::default());
    }
}
