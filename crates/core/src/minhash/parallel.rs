//! Parallel index-free signature generation.
//!
//! The paper's future work lists "parallelization aspects of our
//! methodology, aiming for scalable skyline diversification over massive
//! data". MinHash signatures merge associatively — the slot-wise minimum
//! of two partial matrices is the matrix of the combined rows — so the
//! index-free pass shards the data across threads and merges at the end.
//! Row ids are the global dataset indices in every shard, so the result
//! is **bit-identical** to the sequential [`sig_gen_if`].

use skydiver_data::{Dataset, DominanceOrd};

use crate::budget::{ExecContext, Interrupt};
use crate::kernels::SkylinePack;

use super::index_free::scan_rows;
use super::{HashFamily, SigGenOutput, SignatureMatrix};

/// Sharded `SigGen-IF`. `threads == 1` falls back to the sequential
/// implementation; results are identical for any thread count.
pub fn sig_gen_parallel<O>(
    ds: &Dataset,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
    threads: usize,
) -> SigGenOutput
where
    O: DominanceOrd<Item = [f64]> + Sync,
{
    let ctx = ExecContext::unlimited();
    let (out, _, interrupt) = sig_gen_parallel_budgeted(ds, ord, skyline, family, threads, &ctx);
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    out
}

/// Budget-aware [`sig_gen_parallel`]: every shard charges the shared
/// [`ExecContext`] — `m` dominance tests per *non-skyline* row, after
/// the skyline check, exactly like the sequential pass — so a tripped
/// budget stops all shards within one row's work and the total charge
/// matches the sequential run. Returns `(output, rows_scanned, interrupt)` like
/// [`sig_gen_if_budgeted`](super::sig_gen_if_budgeted); `rows_scanned`
/// sums over shards. Uninterrupted output is bit-identical to the
/// sequential pass; an interrupted one covers a timing-dependent subset
/// of rows, which is why the pipeline skips selection after a
/// fingerprint-phase interrupt.
pub fn sig_gen_parallel_budgeted<O>(
    ds: &Dataset,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
    threads: usize,
    ctx: &ExecContext,
) -> (SigGenOutput, usize, Option<Interrupt>)
where
    O: DominanceOrd<Item = [f64]> + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || ds.len() < 2 * threads {
        return super::sig_gen_if_budgeted(ds, ord, skyline, family, ctx);
    }

    let t = family.len();
    let m = skyline.len();
    let mut is_skyline = vec![false; ds.len()];
    for &s in skyline {
        is_skyline[s] = true;
    }
    let is_skyline = &is_skyline;
    let pack = ord
        .is_canonical_min()
        .then(|| SkylinePack::pack(ds.dims(), skyline.iter().map(|&s| ds.point(s))));
    let pack = pack.as_ref();

    let chunk = ds.len().div_ceil(threads);
    let mut partials: Vec<(SigGenOutput, usize, Option<Interrupt>)> =
        Vec::with_capacity(threads);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for shard in 0..threads {
            let lo = shard * chunk;
            let hi = ((shard + 1) * chunk).min(ds.len());
            handles.push(scope.spawn(move || {
                let mut matrix = SignatureMatrix::new(t, m);
                let mut scores = vec![0u64; m];
                let (rows_scanned, interrupt) = scan_rows(
                    ds,
                    ord,
                    skyline,
                    is_skyline,
                    pack,
                    family,
                    ctx,
                    lo,
                    hi,
                    &mut matrix,
                    &mut scores,
                );
                (SigGenOutput { matrix, scores }, rows_scanned, interrupt)
            }));
        }
        for h in handles {
            partials.push(h.join().expect("siggen shard panicked"));
        }
    });

    let mut iter = partials.into_iter();
    let (mut acc, mut rows, mut interrupt) = iter.next().expect("threads >= 1");
    for (p, r, int) in iter {
        acc.matrix.merge_min(&p.matrix);
        for (a, b) in acc.scores.iter_mut().zip(&p.scores) {
            *a += b;
        }
        rows += r;
        if interrupt.is_none() {
            interrupt = int;
        }
    }
    (acc, rows, interrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::sig_gen_if;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, independent};
    use skydiver_skyline::naive_skyline;

    #[test]
    fn identical_to_sequential() {
        for threads in [2, 3, 8] {
            let ds = independent(1200, 3, 110);
            let sky = naive_skyline(&ds, &MinDominance);
            let fam = HashFamily::new(64, 10);
            let seq = sig_gen_if(&ds, &MinDominance, &sky, &fam);
            let par = sig_gen_parallel(&ds, &MinDominance, &sky, &fam, threads);
            assert_eq!(seq.matrix, par.matrix, "threads = {threads}");
            assert_eq!(seq.scores, par.scores);
        }
    }

    #[test]
    fn identical_on_anticorrelated_many_skyline_points() {
        let ds = anticorrelated(900, 3, 111);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(32, 11);
        let seq = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let par = sig_gen_parallel(&ds, &MinDominance, &sky, &fam, 4);
        assert_eq!(seq.matrix, par.matrix);
        assert_eq!(seq.scores, par.scores);
    }

    #[test]
    fn budgeted_run_stops_all_shards_promptly() {
        use crate::budget::{ExecContext, RunBudget, StopReason};
        let ds = independent(2000, 3, 113);
        let sky = naive_skyline(&ds, &MinDominance);
        let m = sky.len() as u64;
        let fam = HashFamily::new(16, 13);
        // Budget funds ~200 rows across all shards combined.
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(200 * m));
        let (_, rows, int) =
            sig_gen_parallel_budgeted(&ds, &MinDominance, &sky, &fam, 4, &ctx);
        let int = int.expect("shared budget must trip");
        assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));
        assert!(rows < 2000, "shards stopped early, scanned {rows}");
    }

    #[test]
    fn budget_charges_agree_with_sequential() {
        use crate::budget::{ExecContext, RunBudget};
        use crate::minhash::sig_gen_if_budgeted;
        let ds = independent(800, 3, 114);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(16, 5);
        let counting =
            || ExecContext::new(RunBudget::none().with_max_dominance_tests(u64::MAX));
        let ctx_seq = counting();
        sig_gen_if_budgeted(&ds, &MinDominance, &sky, &fam, &ctx_seq);
        let ctx_par = counting();
        sig_gen_parallel_budgeted(&ds, &MinDominance, &sky, &fam, 4, &ctx_par);
        let non_sky = (ds.len() - sky.len()) as u64;
        assert_eq!(
            ctx_seq.dominance_tests(),
            non_sky * sky.len() as u64,
            "skyline rows are free in the sequential pass"
        );
        assert_eq!(
            ctx_par.dominance_tests(),
            ctx_seq.dominance_tests(),
            "sharded pass must charge exactly what the sequential pass does"
        );
    }

    #[test]
    fn tiny_input_falls_back() {
        let ds = independent(6, 2, 112);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(8, 12);
        let seq = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let par = sig_gen_parallel(&ds, &MinDominance, &sky, &fam, 16);
        assert_eq!(seq.matrix, par.matrix);
    }
}
