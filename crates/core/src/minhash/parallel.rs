//! Parallel index-free signature generation.
//!
//! The paper's future work lists "parallelization aspects of our
//! methodology, aiming for scalable skyline diversification over massive
//! data". MinHash signatures merge associatively — the slot-wise minimum
//! of two partial matrices is the matrix of the combined rows — so the
//! index-free pass shards the data across threads and merges the
//! per-range [`SignatureAccumulator`]s at the end. Row ids are the
//! global dataset indices in every range, so the result is
//! **bit-identical** to the sequential [`sig_gen_if`].

use skydiver_data::{DatasetView, DominanceOrd};

use crate::budget::{ExecContext, Interrupt};
use crate::kernels::SkylinePack;

use super::index_free::scan_view;
use super::{HashFamily, SigGenOutput, SignatureAccumulator};

/// Sharded `SigGen-IF`. `threads == 1` falls back to the sequential
/// implementation; results are identical for any thread count.
pub fn sig_gen_parallel<'a, O>(
    ds: impl Into<DatasetView<'a>>,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
    threads: usize,
) -> SigGenOutput
where
    O: DominanceOrd<Item = [f64]> + Sync,
{
    let ctx = ExecContext::unlimited();
    let (out, _, interrupt) = sig_gen_parallel_budgeted(ds, ord, skyline, family, threads, &ctx);
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    out
}

/// Budget-aware [`sig_gen_parallel`]: every range charges the shared
/// [`ExecContext`] — `m` dominance tests per *non-skyline* row, after
/// the skyline check, exactly like the sequential pass — so a tripped
/// budget stops all ranges within one row's work and the total charge
/// matches the sequential run. Returns `(output, rows_scanned, interrupt)` like
/// [`sig_gen_if_budgeted`](super::sig_gen_if_budgeted); `rows_scanned`
/// sums over ranges. Uninterrupted output is bit-identical to the
/// sequential pass; an interrupted one covers a timing-dependent subset
/// of rows, which is why the pipeline skips selection after a
/// fingerprint-phase interrupt.
pub fn sig_gen_parallel_budgeted<'a, O>(
    ds: impl Into<DatasetView<'a>>,
    ord: &O,
    skyline: &[usize],
    family: &HashFamily,
    threads: usize,
    ctx: &ExecContext,
) -> (SigGenOutput, usize, Option<Interrupt>)
where
    O: DominanceOrd<Item = [f64]> + Sync,
{
    let view: DatasetView<'a> = ds.into();
    let threads = threads.max(1);
    if threads == 1 || view.len() < 2 * threads {
        return super::sig_gen_if_budgeted(view, ord, skyline, family, ctx);
    }

    let mut skip = vec![false; view.len()];
    for &s in skyline {
        // lint: allow(R2) -- O(m) flag fill; the sharded scans poll
        skip[s] = true;
    }
    let cols: Vec<&[f64]> = skyline.iter().map(|&s| view.point(s)).collect();
    let (acc, interrupt) =
        scan_columns_parallel_budgeted(view, ord, &cols, &skip, family, ctx, threads);
    let rows = acc.rows_consumed;
    (acc.into_output(), rows, interrupt)
}

/// Parallel twin of
/// [`scan_columns_budgeted`](super::scan_columns_budgeted): splits
/// `view` into `threads` contiguous ranges, folds each on its own
/// scoped thread, and merges the per-range accumulators in range order.
/// The [`SkylinePack`] is built once and shared by all ranges. Global
/// row ids make the merged fold bit-identical to the sequential one;
/// budget charges are identical too since every range charges the shared
/// `ctx` per non-skipped row. The first (in range order) interrupt is
/// returned; on a trip the accumulator covers a timing-dependent row
/// subset.
pub fn scan_columns_parallel_budgeted<O>(
    view: DatasetView<'_>,
    ord: &O,
    cols: &[&[f64]],
    skip: &[bool],
    family: &HashFamily,
    ctx: &ExecContext,
    threads: usize,
) -> (SignatureAccumulator, Option<Interrupt>)
where
    O: DominanceOrd<Item = [f64]> + Sync,
{
    assert_eq!(skip.len(), view.len(), "skip mask length mismatch");
    let t = family.len();
    let m = cols.len();
    let threads = threads.max(1);
    let pack = ord
        .is_canonical_min()
        .then(|| SkylinePack::pack(view.dims(), cols.iter().copied()));
    let pack = pack.as_ref();

    let chunk = view.len().div_ceil(threads);
    let mut partials: Vec<(SignatureAccumulator, Option<Interrupt>)> = Vec::with_capacity(threads);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for range in 0..threads {
            // lint: allow(R2) -- spawns exactly `threads` scoped workers;
            // each worker's scan_view polls the shared ctx per row batch
            let lo = (range * chunk).min(view.len());
            let hi = ((range + 1) * chunk).min(view.len());
            let sub = view.slice(lo, hi);
            let sub_skip = &skip[lo..hi];
            handles.push(scope.spawn(move || {
                let mut acc = SignatureAccumulator::new(t, m);
                let interrupt = scan_view(sub, ord, cols, sub_skip, pack, family, ctx, &mut acc);
                (acc, interrupt)
            }));
        }
        for h in handles {
            // lint: allow(R2) -- joins at most `threads` handles
            // lint: allow(R1) -- a worker panic is re-raised on the caller
            // by design; swallowing it would drop rows from the signature
            partials.push(h.join().expect("siggen range panicked"));
        }
    });

    let mut iter = partials.into_iter();
    // lint: allow(R1) -- the pool spawns max(threads, 1) workers, so at
    // least one partial accumulator always comes back
    let (mut acc, mut interrupt) = iter.next().expect("threads >= 1");
    for (p, int) in iter {
        // lint: allow(R2) -- folds `threads` partial accumulators
        acc.merge(&p);
        if interrupt.is_none() {
            interrupt = int;
        }
    }
    (acc, interrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::sig_gen_if;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, independent};
    use skydiver_skyline::naive_skyline;

    #[test]
    fn identical_to_sequential() {
        for threads in [2, 3, 8] {
            let ds = independent(1200, 3, 110);
            let sky = naive_skyline(&ds, &MinDominance);
            let fam = HashFamily::new(64, 10);
            let seq = sig_gen_if(&ds, &MinDominance, &sky, &fam);
            let par = sig_gen_parallel(&ds, &MinDominance, &sky, &fam, threads);
            assert_eq!(seq.matrix, par.matrix, "threads = {threads}");
            assert_eq!(seq.scores, par.scores);
        }
    }

    #[test]
    fn identical_on_anticorrelated_many_skyline_points() {
        let ds = anticorrelated(900, 3, 111);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(32, 11);
        let seq = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let par = sig_gen_parallel(&ds, &MinDominance, &sky, &fam, 4);
        assert_eq!(seq.matrix, par.matrix);
        assert_eq!(seq.scores, par.scores);
    }

    #[test]
    fn budgeted_run_stops_all_shards_promptly() {
        use crate::budget::{ExecContext, RunBudget, StopReason};
        let ds = independent(2000, 3, 113);
        let sky = naive_skyline(&ds, &MinDominance);
        let m = sky.len() as u64;
        let fam = HashFamily::new(16, 13);
        // Budget funds ~200 rows across all shards combined.
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(200 * m));
        let (_, rows, int) =
            sig_gen_parallel_budgeted(&ds, &MinDominance, &sky, &fam, 4, &ctx);
        let int = int.expect("shared budget must trip");
        assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));
        assert!(rows < 2000, "shards stopped early, scanned {rows}");
    }

    #[test]
    fn budget_charges_agree_with_sequential() {
        use crate::budget::{ExecContext, RunBudget};
        use crate::minhash::sig_gen_if_budgeted;
        let ds = independent(800, 3, 114);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(16, 5);
        let counting =
            || ExecContext::new(RunBudget::none().with_max_dominance_tests(u64::MAX));
        let ctx_seq = counting();
        sig_gen_if_budgeted(&ds, &MinDominance, &sky, &fam, &ctx_seq);
        let ctx_par = counting();
        sig_gen_parallel_budgeted(&ds, &MinDominance, &sky, &fam, 4, &ctx_par);
        let non_sky = (ds.len() - sky.len()) as u64;
        assert_eq!(
            ctx_seq.dominance_tests(),
            non_sky * sky.len() as u64,
            "skyline rows are free in the sequential pass"
        );
        assert_eq!(
            ctx_par.dominance_tests(),
            ctx_seq.dominance_tests(),
            "sharded pass must charge exactly what the sequential pass does"
        );
    }

    #[test]
    fn tiny_input_falls_back() {
        let ds = independent(6, 2, 112);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(8, 12);
        let seq = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let par = sig_gen_parallel(&ds, &MinDominance, &sky, &fam, 16);
        assert_eq!(seq.matrix, par.matrix);
    }
}
