//! `SigGen-IB` — index-based signature generation over the aggregate
//! R*-tree (paper Fig. 4).
//!
//! Nearby points tend to be dominated by the same skyline subset, so the
//! traversal classifies every index entry against the skyline: entries
//! *fully* dominated by some points and *partially* by none are updated
//! wholesale — `e.count` synthetic rows are hashed without reading the
//! subtree, saving both I/O and dominance checks. Entries with any
//! partial dominator are expanded.
//!
//! Row ids are assigned by a **deterministic range scheme**: every
//! frontier entry owns the contiguous id range
//! `[base, base + e.count)`, where `base` is the parent's base plus the
//! `count` aggregates of the preceding siblings. Any bijective row-id
//! assignment yields a valid min-wise permutation, and all skyline
//! points dominating a given data point observe the same id, so the
//! Jaccard estimator is unchanged — but unlike traversal-order ids the
//! ranges are independent of processing order, which lets
//! [`sig_gen_ib_parallel`](super::sig_gen_ib_parallel) process disjoint
//! frontier partitions on separate threads and still merge to the exact
//! sequential matrix. (The paper keeps the expansion frontier in a
//! priority queue without specifying a priority; we use a LIFO
//! frontier — the processing order does not affect the result.)

use skydiver_rtree::{classify_dominance, BufferPool, Child, MbrDominance, PageId, RTree};

use crate::budget::{ExecContext, ExecPhase, Interrupt};

use super::{HashFamily, SigGenOutput, SignatureMatrix};

/// Traversal counters of one `SigGen-IB` run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IbStats {
    /// Index nodes read (each is one page access).
    pub nodes_read: u64,
    /// Entries whose whole subtree was updated without expansion.
    pub bulk_updates: u64,
    /// Entries skipped because no skyline point dominates any part.
    pub skipped: u64,
}

/// Runs the index-based pass.
///
/// * `tree` — aggregate R*-tree over the (canonicalised) data set,
/// * `pool` — buffer pool charged for every node read,
/// * `skyline_pts` — skyline coordinates; output columns follow this
///   order,
/// * `family` — `t` hash functions.
pub fn sig_gen_ib(
    tree: &RTree,
    pool: &mut BufferPool,
    skyline_pts: &[&[f64]],
    family: &HashFamily,
) -> (SigGenOutput, IbStats) {
    let ctx = ExecContext::unlimited();
    let (out, stats, _, interrupt) = sig_gen_ib_budgeted(tree, pool, skyline_pts, family, &ctx);
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    (out, stats)
}

/// Budget-aware [`sig_gen_ib`]: charges `m` dominance classifications
/// per index entry against `ctx` and stops at the first exhausted
/// limit. Also cooperates with fault injection — a poisoned `pool` (an
/// injected page-read failure) stops the traversal immediately;
/// callers must check `pool.failure()` afterwards, as the pipeline
/// does.
///
/// Returns `(output, stats, rows_consumed, interrupt)` where
/// `rows_consumed` counts the data rows whose classification was
/// decided — skipped or bulk-updated — before the stop (≤ the number of
/// data points).
pub fn sig_gen_ib_budgeted(
    tree: &RTree,
    pool: &mut BufferPool,
    skyline_pts: &[&[f64]],
    family: &HashFamily,
    ctx: &ExecContext,
) -> (SigGenOutput, IbStats, usize, Option<Interrupt>) {
    let t = family.len();
    let m = skyline_pts.len();
    let mut matrix = SignatureMatrix::new(t, m);
    let mut scores = vec![0u64; m];
    let mut stats = IbStats::default();
    if tree.is_empty() || m == 0 {
        return (SigGenOutput { matrix, scores }, stats, 0, None);
    }

    let mut rows_decided: u64 = 0;
    let mut row_hashes = vec![0u64; t];
    let mut full: Vec<usize> = Vec::with_capacity(m);

    // Each frontier entry owns the contiguous row-id range starting at
    // its recorded base; sibling ranges follow in entry order.
    let mut frontier: Vec<(PageId, u64)> = vec![(tree.root(), 0)];
    while let Some((pid, node_base)) = frontier.pop() {
        if pool.poisoned() {
            break;
        }
        let node = tree.read_node(pool, pid);
        stats.nodes_read += 1;
        let mut base = node_base;
        for e in &node.entries {
            let entry_base = base;
            base += e.count;
            if let Err(int) = ctx.charge_dominance_tests(m as u64, ExecPhase::Fingerprint) {
                return (
                    SigGenOutput { matrix, scores },
                    stats,
                    rows_decided as usize,
                    Some(int),
                );
            }
            full.clear();
            let mut any_partial = false;
            for (j, s) in skyline_pts.iter().enumerate() {
                match classify_dominance(s, &e.mbr) {
                    MbrDominance::Full => full.push(j),
                    MbrDominance::Partial => any_partial = true,
                    MbrDominance::None => {}
                }
            }
            if any_partial {
                match e.child {
                    Child::Node(c) => {
                        frontier.push((c, entry_base));
                        continue;
                    }
                    Child::Point(_) => {
                        debug_assert!(false, "degenerate MBRs are never partially dominated");
                        // Release builds: treat as unclassifiable and
                        // skip rather than corrupt the traversal.
                        rows_decided += e.count;
                        stats.skipped += 1;
                        continue;
                    }
                }
            }
            // Exclusive full dominance (or none): update without
            // expanding — the paper's UpdateFullDominance.
            if full.is_empty() {
                rows_decided += e.count;
                stats.skipped += 1;
                continue;
            }
            stats.bulk_updates += 1;
            for r in entry_base..entry_base + e.count {
                family.hash_all(r, &mut row_hashes);
                for &j in &full {
                    matrix.update_column(j, &row_hashes);
                }
            }
            for &j in &full {
                scores[j] += e.count;
            }
            rows_decided += e.count;
        }
    }

    (
        SigGenOutput { matrix, scores },
        stats,
        rows_decided as usize,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::GammaSets;
    use crate::minhash::sig_gen_if;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{clustered, independent};
    use skydiver_data::Dataset;
    use skydiver_skyline::naive_skyline;

    fn run_ib(ds: &Dataset, sky: &[usize], fam: &HashFamily) -> (SigGenOutput, IbStats) {
        let tree = skydiver_rtree::RTree::bulk_load(ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        sig_gen_ib(&tree, &mut pool, &pts, fam)
    }

    #[test]
    fn scores_match_index_free() {
        let ds = independent(800, 3, 100);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(16, 5);
        let (ib, _) = run_ib(&ds, &sky, &fam);
        let if_out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        assert_eq!(ib.scores, if_out.scores);
    }

    #[test]
    fn estimates_concentrate_like_index_free() {
        let ds = independent(1500, 2, 101);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(512, 6);
        let (ib, _) = run_ib(&ds, &sky, &fam);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let mut worst: f64 = 0.0;
        for i in 0..sky.len() {
            for j in (i + 1)..sky.len() {
                let est = ib.matrix.estimated_similarity(i, j);
                worst = worst.max((est - g.jaccard_similarity(i, j)).abs());
            }
        }
        assert!(worst < 0.12, "worst estimation error {worst}");
    }

    #[test]
    fn bulk_updates_save_node_reads() {
        // Clustered data: whole leaves are fully dominated, so IB must
        // read far fewer nodes than exist.
        let ds = clustered(20_000, 3, 8, 0.03, 102);
        let sky = naive_skyline(&ds, &MinDominance);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(8, 7);
        let (_, stats) = sig_gen_ib(&tree, &mut pool, &pts, &fam);
        assert!(stats.bulk_updates > 0, "expected MBR-level updates");
        assert!(
            stats.nodes_read < tree.num_pages() as u64,
            "IB read {} of {} pages",
            stats.nodes_read,
            tree.num_pages()
        );
    }

    #[test]
    fn budgeted_traversal_stops_on_dominance_budget() {
        use crate::budget::{ExecContext, RunBudget, StopReason};
        let ds = independent(3000, 3, 103);
        let sky = naive_skyline(&ds, &MinDominance);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(8, 7);
        // Fund only a handful of entry classifications.
        let ctx = ExecContext::new(
            RunBudget::none().with_max_dominance_tests(5 * sky.len() as u64),
        );
        let (_, stats, rows, int) = sig_gen_ib_budgeted(&tree, &mut pool, &pts, &fam, &ctx);
        let int = int.expect("budget must trip");
        assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));
        assert!(rows < ds.len(), "stopped early at {rows} rows");
        assert!(stats.nodes_read >= 1);
    }

    #[test]
    fn poisoned_pool_stops_the_traversal() {
        use skydiver_rtree::FaultInjection;
        let ds = independent(3000, 3, 104);
        let sky = naive_skyline(&ds, &MinDominance);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(8, 7);
        let mut clean = BufferPool::new(1 << 20);
        let (_, full_stats) = sig_gen_ib(&tree, &mut clean, &pts, &fam);
        let mut pool = BufferPool::new(1 << 20);
        pool.inject_faults(FaultInjection::at_access(1));
        let ctx = ExecContext::unlimited();
        let (_, stats, _, int) = sig_gen_ib_budgeted(&tree, &mut pool, &pts, &fam, &ctx);
        assert!(int.is_none(), "a fault is not a budget interrupt");
        assert!(pool.poisoned(), "injected fault must register");
        assert!(
            stats.nodes_read < full_stats.nodes_read || full_stats.nodes_read <= 2,
            "traversal bailed early: {} vs {}",
            stats.nodes_read,
            full_stats.nodes_read
        );
    }

    #[test]
    fn empty_inputs() {
        let ds = Dataset::new(2);
        let tree = skydiver_rtree::RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(16);
        let fam = HashFamily::new(4, 8);
        let (out, stats) = sig_gen_ib(&tree, &mut pool, &[], &fam);
        assert_eq!(out.matrix.m(), 0);
        assert_eq!(stats, IbStats::default());
    }

    #[test]
    fn total_rowcount_covers_every_point() {
        // Every data point must consume exactly one row id: the sum of
        // bulk-updated and skipped counts equals n. We verify indirectly:
        // one skyline point dominating everything gets score n − m'.
        let mut rows = vec![[0.0, 0.0]];
        for i in 0..500 {
            rows.push([0.1 + (i as f64) * 1e-3, 0.1]);
        }
        let ds = Dataset::from_rows(2, &rows);
        let sky = naive_skyline(&ds, &MinDominance);
        assert_eq!(sky, vec![0]);
        let fam = HashFamily::new(8, 9);
        let (out, _) = run_ib(&ds, &sky, &fam);
        assert_eq!(out.scores, vec![500]);
    }
}
