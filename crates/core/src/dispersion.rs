//! Phase 2 — selecting the `k` most diverse skyline points as a
//! dispersion problem (paper §3.1, §4.2, Fig. 6).
//!
//! k-diversification is cast as **k-MMDP** (maximise the minimum
//! pairwise distance), which is NP-hard; because every backend distance
//! is a metric, the greedy heuristic ([`select_diverse`]) achieves a
//! 2-approximation. The paper's variant seeds with the skyline point of
//! maximum domination score (`O(k²m)` instead of the `O(m²)` of the
//! classic farthest-pair seed) and breaks ties by domination score,
//! "treating coverage as a secondary objective". [`brute_force_mmdp`]
//! and the **k-MSDP** (max-sum) variants exist as baselines/ablations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

use crate::budget::{ExecContext, ExecPhase, Interrupt};
use crate::diversity::{DiversityDistance, SyncDiversityDistance};
use crate::error::{Result, SkyDiverError};

/// How the first point(s) of the greedy selection are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedRule {
    /// Start from the skyline point with the maximum domination score
    /// (the paper's choice; keeps selection `O(k²m)`).
    #[default]
    MaxDominance,
    /// Start from the two most distant points (the classic heuristic of
    /// Ravi et al.; costs `O(m²)` distance evaluations).
    FarthestPair,
}

/// How ties on the max–min criterion are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Prefer the candidate with the larger domination score (the
    /// paper's choice).
    #[default]
    MaxDominance,
    /// Keep the first candidate found (ablation baseline).
    FirstIndex,
}

/// The max-domination seed shared by every selection variant
/// ([`SeedRule::MaxDominance`] in the sequential and parallel greedy
/// k-MMDP and the seed of [`greedy_msdp`]): the candidate with the
/// highest domination score, lowest index winning ties.
fn max_dominance_seed(scores: &[u64]) -> usize {
    (0..scores.len())
        .max_by_key(|&i| (scores[i], std::cmp::Reverse(i)))
        // lint: allow(R1) -- callers seed only after validating m >= 1
        .expect("at least one candidate")
}

/// The paper's `SelectDiverseSet` (Fig. 6): greedy k-MMDP.
///
/// * `dist` — any metric [`DiversityDistance`] backend,
/// * `scores` — domination scores `|Γ(p)|` for seeding/tie-breaking
///   (must have length `m`),
/// * `k` — number of points, `2 ≤ k ≤ m`.
///
/// Returns the selected skyline indices in selection order. Guarantees a
/// 2-approximation of the optimal k-MMDP value when `dist` is a metric.
pub fn select_diverse<D: DiversityDistance>(
    dist: &mut D,
    scores: &[u64],
    k: usize,
    seed: SeedRule,
    tie: TieBreak,
) -> Result<Vec<usize>> {
    let ctx = ExecContext::unlimited();
    let (selected, interrupt) = select_diverse_budgeted(dist, scores, k, seed, tie, &ctx)?;
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    Ok(selected)
}

/// Budget-aware [`select_diverse`]: checks `ctx` once per greedy round
/// (and once per outer row of the [`SeedRule::FarthestPair`] seed scan).
///
/// A tripped budget is not an error: because the greedy selection is
/// incremental, the prefix selected so far **is** the greedy diverse set
/// for its own size, so the function returns it together with the
/// [`Interrupt`] describing the stop. The prefix is bitwise equal to the
/// first `len` selections of an unbudgeted run with the same inputs.
pub fn select_diverse_budgeted<D: DiversityDistance>(
    dist: &mut D,
    scores: &[u64],
    k: usize,
    seed: SeedRule,
    tie: TieBreak,
    ctx: &ExecContext,
) -> Result<(Vec<usize>, Option<Interrupt>)> {
    let m = dist.num_points();
    validate_k(k, m)?;
    if scores.len() != m {
        return Err(SkyDiverError::ScoresLengthMismatch {
            scores: scores.len(),
            points: m,
        });
    }

    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut in_set = vec![false; m];
    // min distance from each candidate to the selected set
    let mut min_dist = vec![f64::INFINITY; m];

    match seed {
        SeedRule::MaxDominance => {
            if let Err(int) = ctx.check(ExecPhase::Selection) {
                return Ok((selected, Some(int)));
            }
            let first = max_dominance_seed(scores);
            push(first, dist, &mut selected, &mut in_set, &mut min_dist);
        }
        SeedRule::FarthestPair => {
            let (mut bi, mut bj, mut bd) = (0, 1, f64::NEG_INFINITY);
            // Row buffer so backends can hoist the per-`i` fetch (the
            // signature column / LSH zone row) out of the inner loop.
            let mut row = vec![0.0f64; m];
            for i in 0..m {
                if let Err(int) = ctx.check(ExecPhase::Selection) {
                    // Nothing selected yet: an empty prefix is the only
                    // honest partial answer mid-seed.
                    return Ok((selected, Some(int)));
                }
                let out = &mut row[..m - i - 1];
                dist.distances_row(i, i + 1, out);
                for (jj, &d) in out.iter().enumerate() {
                    if d > bd {
                        (bi, bj, bd) = (i, i + 1 + jj, d);
                    }
                }
            }
            push(bi, dist, &mut selected, &mut in_set, &mut min_dist);
            if k >= 2 {
                push(bj, dist, &mut selected, &mut in_set, &mut min_dist);
            }
        }
    }

    while selected.len() < k {
        if let Err(int) = ctx.check(ExecPhase::Selection) {
            return Ok((selected, Some(int)));
        }
        let mut best: Option<usize> = None;
        for x in 0..m {
            if in_set[x] {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    min_dist[x] > min_dist[b]
                        || (min_dist[x] == min_dist[b]
                            && matches!(tie, TieBreak::MaxDominance)
                            && scores[x] > scores[b])
                }
            };
            if better {
                best = Some(x);
            }
        }
        // lint: allow(R1) -- k <= m is validated at entry, so the scan over
        // unselected candidates is never empty
        let x = best.expect("k <= m guarantees a candidate");
        push(x, dist, &mut selected, &mut in_set, &mut min_dist);
    }
    Ok((selected, None))
}

fn push<D: DiversityDistance>(
    x: usize,
    dist: &mut D,
    selected: &mut Vec<usize>,
    in_set: &mut [bool],
    min_dist: &mut [f64],
) {
    selected.push(x);
    in_set[x] = true;
    // One O(m) relaxation per greedy round, batched by backends that
    // override `relax_min_dist`; the caller's round loop polls ctx.
    dist.relax_min_dist(x, in_set, min_dist);
}

/// Parallel [`select_diverse`] over a thread-safe distance backend.
///
/// The candidate range is split into `P = min(threads, m)` contiguous
/// **partitions** — a pure function of `(m, threads)`, independent of
/// the machine — and served by a persistent pool of
/// `W = min(P, available_parallelism)` workers (the calling thread is
/// worker 0; `W − 1` threads are spawned once for the whole selection,
/// not per round). Each round every partition computes a batched
/// relax-and-argmax over its range and the partials are folded in
/// ascending partition order under the *exact* sequential comparison —
/// `min_dist` strictly greater, or equal `min_dist` and strictly
/// greater domination score under [`TieBreak::MaxDominance`].
///
/// **Determinism.** Under that strictly-better predicate a partition's
/// winner is the *first* best candidate of its contiguous range, and an
/// ascending-order fold of first-bests over contiguous ranges yields
/// the first best of `0..m` — the sequential scan's pick — for *any*
/// partition boundaries. The result is therefore bit-identical to
/// [`select_diverse`] for every `threads` value, and clamping `W` to
/// the machine cannot affect the output (it only changes which worker
/// computes a partition, never the fold order). `min_dist` entries are
/// never NaN — the `d < min_dist` fold discards NaN exactly as the
/// sequential code does — so the strict comparison is a total
/// tournament.
pub fn select_diverse_parallel<D: SyncDiversityDistance>(
    dist: &D,
    scores: &[u64],
    k: usize,
    seed: SeedRule,
    tie: TieBreak,
    threads: usize,
) -> Result<Vec<usize>> {
    let ctx = ExecContext::unlimited();
    let (selected, interrupt) =
        select_diverse_parallel_budgeted(dist, scores, k, seed, tie, threads, &ctx)?;
    debug_assert!(interrupt.is_none(), "unlimited context cannot trip");
    Ok(selected)
}

/// Round commands published by the driver to the persistent pool.
#[derive(Clone, Copy)]
enum Cmd {
    /// Compute the per-partition farthest pair over the full matrix.
    SeedScan,
    /// Fold distances to `last` into `min_dist`, report the partition
    /// argmax under the sequential strictly-better predicate.
    Relax { last: usize },
    /// Selection is over: exit the worker loop.
    Done,
}

/// One partition's per-round result.
#[derive(Clone, Copy)]
enum Part {
    /// Farthest pair found in the partition's row range (`NEG_INFINITY`
    /// distance when the range contains no pairs).
    Pair(usize, usize, f64),
    /// Partition argmax: `(min_dist, score, index)` of the first best
    /// unselected candidate, `None` when every entry is selected.
    Arg(Option<(f64, u64, usize)>),
}

/// The exact sequential strictly-better comparison shared by the
/// sequential scan, every partition scan and the ascending fold:
/// strictly larger `min_dist`, or an exact tie broken by strictly
/// larger domination score under [`TieBreak::MaxDominance`].
#[inline]
fn strictly_better(tie: TieBreak, cand: (f64, u64), best: Option<(f64, u64, usize)>) -> bool {
    match best {
        None => true,
        Some((bd, bs, _)) => {
            cand.0 > bd || (cand.0 == bd && matches!(tie, TieBreak::MaxDominance) && cand.1 > bs)
        }
    }
}

/// A worker's share of one round: runs `cmd` over every owned
/// partition `(index, lo, min_dist slice)` and publishes each
/// partition's [`Part`] into its slot of `partials`.
///
/// The relax pass covers *all* entries of the partition, including
/// already-selected ones — their `min_dist` slots are never read by the
/// argmax (selected entries are skipped there via `in_set`), and the
/// unselected entries fold exactly the values the sequential
/// relaxation would.
#[allow(clippy::too_many_arguments)] // one worker's full round context
fn run_partitions<D: SyncDiversityDistance>(
    dist: &D,
    scores: &[u64],
    tie: TieBreak,
    m: usize,
    in_set: &[AtomicBool],
    cmd: Cmd,
    parts: &mut [(usize, usize, &mut [f64])],
    partials: &[Mutex<Option<Part>>],
    scratch: &mut Vec<f64>,
) {
    for (pi, lo, md) in parts.iter_mut() {
        // lint: allow(R2) -- a worker owns O(P/W) partitions and runs
        // them once per round; the driver's round loop polls ctx
        let res = match cmd {
            Cmd::Done => return,
            Cmd::SeedScan => {
                let (mut bi, mut bj, mut bd) = (0usize, 1usize, f64::NEG_INFINITY);
                scratch.resize(m, 0.0);
                for i in *lo..*lo + md.len() {
                    if i + 1 >= m {
                        continue;
                    }
                    let out = &mut scratch[..m - i - 1];
                    dist.distances_row_shared(i, i + 1, out);
                    for (jj, &d) in out.iter().enumerate() {
                        if d > bd {
                            (bi, bj, bd) = (i, i + 1 + jj, d);
                        }
                    }
                }
                Part::Pair(bi, bj, bd)
            }
            Cmd::Relax { last } => {
                scratch.resize(md.len().max(scratch.len()), 0.0);
                let out = &mut scratch[..md.len()];
                dist.distances_row_shared(last, *lo, out);
                let mut best: Option<(f64, u64, usize)> = None;
                for (off, slot) in md.iter_mut().enumerate() {
                    if out[off] < *slot {
                        *slot = out[off];
                    }
                    let i = *lo + off;
                    if in_set[i].load(Ordering::Relaxed) {
                        continue;
                    }
                    if strictly_better(tie, (*slot, scores[i]), best) {
                        best = Some((*slot, scores[i], i));
                    }
                }
                Part::Arg(best)
            }
        };
        *partials[*pi].lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
    }
}

/// Budget-aware [`select_diverse_parallel`]: polls `ctx` once per greedy
/// round like the sequential pass, so a tripped budget returns the same
/// greedy prefix. The [`SeedRule::FarthestPair`] seed polls once for the
/// whole `O(m²)` scan (the sequential pass polls once per row — the
/// cadence differs, the selected points do not).
#[allow(clippy::too_many_arguments)]
pub fn select_diverse_parallel_budgeted<D: SyncDiversityDistance>(
    dist: &D,
    scores: &[u64],
    k: usize,
    seed: SeedRule,
    tie: TieBreak,
    threads: usize,
    ctx: &ExecContext,
) -> Result<(Vec<usize>, Option<Interrupt>)> {
    let m = dist.num_points();
    validate_k(k, m)?;
    if scores.len() != m {
        return Err(SkyDiverError::ScoresLengthMismatch {
            scores: scores.len(),
            points: m,
        });
    }

    // P contiguous partitions — a pure function of (m, threads). All P
    // partials are computed and folded every round regardless of how
    // many OS workers serve them, so the reduction a test exercises at
    // `threads = 8` is the same one production runs on any machine.
    let threads = threads.max(1);
    let chunk = m.div_ceil(threads.min(m));
    let bounds: Vec<(usize, usize)> = (0..m)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(m)))
        .collect();
    let parts_n = bounds.len();
    // W OS workers (the calling thread is worker 0), clamped to the
    // machine: on a small host the same partitions are simply served
    // inline, with no spawns or barrier traffic beyond the free
    // single-participant case. Output-invariant by the fold argument in
    // the `select_diverse_parallel` docs.
    let workers = parts_n
        .min(std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1);

    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let in_set: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(false)).collect();
    let mut min_dist = vec![f64::INFINITY; m];

    // Split min_dist into per-partition slices, grouped contiguously
    // per worker (worker w serves partitions w·P/W .. (w+1)·P/W).
    let mut groups: Vec<Vec<(usize, usize, &mut [f64])>> =
        (0..workers).map(|_| Vec::new()).collect();
    {
        let mut rest: &mut [f64] = &mut min_dist;
        for (pi, &(lo, hi)) in bounds.iter().enumerate() {
            // lint: allow(R2) -- O(P) setup split of the min_dist buffer
            let (head, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            groups[pi * workers / parts_n].push((pi, lo, head));
        }
    }

    let cmd: Mutex<Cmd> = Mutex::new(Cmd::Done);
    let barrier = Barrier::new(workers);
    let partials: Vec<Mutex<Option<Part>>> = (0..parts_n).map(|_| Mutex::new(None)).collect();
    let (in_set_ref, cmd_ref, barrier_ref, partials_ref) = (&in_set, &cmd, &barrier, &partials);

    let (selected, interrupt) = std::thread::scope(|scope| {
        let mut groups = groups.into_iter();
        // lint: allow(R1) -- workers >= 1, so group 0 always exists
        let mut my_parts = groups.next().expect("main worker group");
        for group in groups {
            // lint: allow(R2) -- spawns W-1 <= threads persistent
            // workers once for the whole selection
            let mut parts = group;
            scope.spawn(move || {
                // Persistent worker: two barrier waits per round (cmd
                // published → work → results visible). A worker panic
                // inside `run_partitions` would deadlock the barrier;
                // the closure is pure computation over validated
                // buffers, so a panic here is a library bug, not a
                // reachable input state.
                let mut scratch: Vec<f64> = Vec::new();
                loop {
                    // Round-stepped by the driver's barrier; the driver
                    // polls ctx once per round and releases the pool
                    // via Cmd::Done on every exit path.
                    barrier_ref.wait();
                    let c = *cmd_ref.lock().unwrap_or_else(|e| e.into_inner());
                    if matches!(c, Cmd::Done) {
                        break;
                    }
                    run_partitions(
                        dist, scores, tie, m, in_set_ref, c, &mut parts, partials_ref,
                        &mut scratch,
                    );
                    barrier_ref.wait();
                }
            });
        }

        let mut scratch: Vec<f64> = Vec::new();
        // One pool round: publish cmd, release the workers, serve the
        // main thread's partitions, wait until every partial is
        // published (the second barrier is the happens-before edge that
        // makes the partials readable).
        let round = |c: Cmd, my_parts: &mut Vec<(usize, usize, &mut [f64])>,
                         scratch: &mut Vec<f64>| {
            *cmd_ref.lock().unwrap_or_else(|e| e.into_inner()) = c;
            barrier_ref.wait();
            if !matches!(c, Cmd::Done) {
                run_partitions(
                    dist, scores, tie, m, in_set_ref, c, my_parts, partials_ref, scratch,
                );
                barrier_ref.wait();
            }
        };
        let fold_pair = || {
            // Strict `>` fold in ascending partition order keeps the
            // first pair attaining the maximum — the sequential pick.
            let (mut bi, mut bj, mut bd) = (0usize, 1usize, f64::NEG_INFINITY);
            for p in partials_ref {
                // lint: allow(R2) -- folds P <= threads partials
                if let Some(Part::Pair(i, j, d)) = *p.lock().unwrap_or_else(|e| e.into_inner()) {
                    if d > bd {
                        (bi, bj, bd) = (i, j, d);
                    }
                }
            }
            (bi, bj)
        };
        let fold_arg = || {
            let mut best: Option<(f64, u64, usize)> = None;
            for p in partials_ref {
                // lint: allow(R2) -- folds P <= threads partials in
                // ascending partition order
                if let Some(Part::Arg(Some(c))) = *p.lock().unwrap_or_else(|e| e.into_inner()) {
                    if strictly_better(tie, (c.0, c.1), best) {
                        best = Some(c);
                    }
                }
            }
            best.map(|(_, _, i)| i)
        };
        let mark = |i: usize, selected: &mut Vec<usize>| {
            selected.push(i);
            in_set_ref[i].store(true, Ordering::Relaxed);
        };

        let mut interrupt: Option<Interrupt> = None;
        'drive: {
            match seed {
                SeedRule::MaxDominance => {
                    if let Err(int) = ctx.check(ExecPhase::Selection) {
                        interrupt = Some(int);
                        break 'drive;
                    }
                    mark(max_dominance_seed(scores), &mut selected);
                }
                SeedRule::FarthestPair => {
                    if let Err(int) = ctx.check(ExecPhase::Selection) {
                        interrupt = Some(int);
                        break 'drive;
                    }
                    round(Cmd::SeedScan, &mut my_parts, &mut scratch);
                    let (bi, bj) = fold_pair();
                    mark(bi, &mut selected);
                    // Relax d(·, bi) before bj joins — identical to the
                    // sequential push(bi) (bj is unselected there too).
                    round(Cmd::Relax { last: bi }, &mut my_parts, &mut scratch);
                    mark(bj, &mut selected);
                }
            }
            while selected.len() < k {
                if let Err(int) = ctx.check(ExecPhase::Selection) {
                    interrupt = Some(int);
                    break 'drive;
                }
                // lint: allow(R1) -- the seeding block above always pushes
                // at least one point before this loop runs
                let last = *selected.last().expect("seeded above");
                round(Cmd::Relax { last }, &mut my_parts, &mut scratch);
                let best = fold_arg()
                    // lint: allow(R1) -- k <= m is validated at entry, so
                    // unselected candidates remain while selected.len() < k
                    .expect("k <= m guarantees a candidate");
                mark(best, &mut selected);
            }
        }
        // Release the pool on every exit path (success or budget trip):
        // workers observe Done after the first barrier and exit without
        // the second.
        round(Cmd::Done, &mut my_parts, &mut scratch);
        (selected, interrupt)
    });
    Ok((selected, interrupt))
}

/// Exact k-MMDP by exhaustive enumeration with branch-and-bound
/// pruning. Fails with [`SkyDiverError::BruteForceTooLarge`] when
/// `C(m, k)` exceeds `limit`.
///
/// Returns `(selection, optimal min pairwise distance)`.
pub fn brute_force_mmdp<D: DiversityDistance>(
    dist: &mut D,
    k: usize,
    limit: u128,
) -> Result<(Vec<usize>, f64)> {
    let m = dist.num_points();
    validate_k(k, m)?;
    let combos = binomial(m as u128, k as u128);
    if combos > limit {
        return Err(SkyDiverError::BruteForceTooLarge {
            combinations: combos,
            limit,
        });
    }
    // Materialise the distance matrix once (the paper's O(m²) cost).
    let matrix = full_matrix(dist);
    let mut best: (Vec<usize>, f64) = (Vec::new(), f64::NEG_INFINITY);
    let mut current: Vec<usize> = Vec::with_capacity(k);
    enumerate(&matrix, m, k, 0, f64::INFINITY, &mut current, &mut best);
    Ok(best)
}

/// Exact k-MSDP (max-sum) by exhaustive enumeration; same guard.
pub fn brute_force_msdp<D: DiversityDistance>(
    dist: &mut D,
    k: usize,
    limit: u128,
) -> Result<(Vec<usize>, f64)> {
    let m = dist.num_points();
    validate_k(k, m)?;
    let combos = binomial(m as u128, k as u128);
    if combos > limit {
        return Err(SkyDiverError::BruteForceTooLarge {
            combinations: combos,
            limit,
        });
    }
    let matrix = full_matrix(dist);
    let mut best: (Vec<usize>, f64) = (Vec::new(), f64::NEG_INFINITY);
    let mut current: Vec<usize> = Vec::with_capacity(k);
    enumerate_sum(&matrix, m, k, 0, 0.0, &mut current, &mut best);
    Ok(best)
}

/// Greedy k-MSDP (max-sum dispersion): seeds like [`select_diverse`] and
/// adds the point maximising the **sum** of distances to the selected
/// set. Illustrates the paper's Example 1: max-sum tolerates one small
/// pairwise distance if compensated by large ones, so k-MMDP is the
/// better diversity objective.
pub fn greedy_msdp<D: DiversityDistance>(
    dist: &mut D,
    scores: &[u64],
    k: usize,
) -> Result<Vec<usize>> {
    let m = dist.num_points();
    validate_k(k, m)?;
    if scores.len() != m {
        return Err(SkyDiverError::ScoresLengthMismatch {
            scores: scores.len(),
            points: m,
        });
    }
    let first = max_dominance_seed(scores);
    let mut selected = vec![first];
    let mut in_set = vec![false; m];
    in_set[first] = true;
    let mut sum_dist = vec![0.0f64; m];
    for (i, slot) in sum_dist.iter_mut().enumerate() {
        // lint: allow(R2) -- greedy_msdp is the paper's illustrative
        // baseline (Example 1), documented unbudgeted; one O(m) seed pass
        if i != first {
            *slot = dist.distance(i, first);
        }
    }
    // lint: allow(R2) -- illustrative unbudgeted baseline: k rounds of
    // O(m) scans, used for the Example 1 comparison and tests
    while selected.len() < k {
        let x = (0..m)
            .filter(|&i| !in_set[i])
            .max_by(|&a, &b| {
                sum_dist[a]
                    .partial_cmp(&sum_dist[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            // lint: allow(R1) -- k <= m is validated at entry, so the
            // unselected set is never empty here
            .expect("k <= m");
        in_set[x] = true;
        selected.push(x);
        for i in 0..m {
            if !in_set[i] {
                sum_dist[i] += dist.distance(i, x);
            }
        }
    }
    Ok(selected)
}

fn validate_k(k: usize, m: usize) -> Result<()> {
    if m == 0 {
        return Err(SkyDiverError::EmptySkyline);
    }
    if k < 2 {
        return Err(SkyDiverError::KTooSmall { k });
    }
    if k > m {
        return Err(SkyDiverError::KExceedsSkyline { k, m });
    }
    Ok(())
}

#[allow(clippy::needless_range_loop)] // symmetric fill is clearest with indices
fn full_matrix<D: DiversityDistance>(dist: &mut D) -> Vec<Vec<f64>> {
    let m = dist.num_points();
    let mut matrix = vec![vec![0.0; m]; m];
    for i in 0..m {
        // lint: allow(R2) -- feeds only the brute-force baselines, which
        // refuse to run unless binomial(m, k) clears the size guard
        for j in (i + 1)..m {
            let d = dist.distance(i, j);
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    matrix
}

fn enumerate(
    matrix: &[Vec<f64>],
    m: usize,
    k: usize,
    start: usize,
    cur_min: f64,
    current: &mut Vec<usize>,
    best: &mut (Vec<usize>, f64),
) {
    if cur_min <= best.1 {
        return; // adding points can only lower the min
    }
    if current.len() == k {
        if cur_min > best.1 {
            *best = (current.clone(), cur_min);
        }
        return;
    }
    let remaining = k - current.len();
    for i in start..=(m - remaining) {
        // lint: allow(R2) -- exhaustive baseline, gated by the
        // binomial(m, k) limit check at the public entry point
        let mut new_min = cur_min;
        for &s in current.iter() {
            new_min = new_min.min(matrix[s][i]);
        }
        current.push(i);
        enumerate(matrix, m, k, i + 1, new_min, current, best);
        current.pop();
    }
}

fn enumerate_sum(
    matrix: &[Vec<f64>],
    m: usize,
    k: usize,
    start: usize,
    cur_sum: f64,
    current: &mut Vec<usize>,
    best: &mut (Vec<usize>, f64),
) {
    if current.len() == k {
        if cur_sum > best.1 {
            *best = (current.clone(), cur_sum);
        }
        return;
    }
    let remaining = k - current.len();
    for i in start..=(m - remaining) {
        // lint: allow(R2) -- exhaustive baseline, gated by the
        // binomial(m, k) limit check at the public entry point
        let add: f64 = current.iter().map(|&s| matrix[s][i]).sum();
        current.push(i);
        enumerate_sum(matrix, m, k, i + 1, cur_sum + add, current, best);
        current.pop();
    }
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // lint: allow(R2) -- at most k <= n/2 integer steps
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

/// Minimum pairwise distance of a selection (the diversity score the
/// paper reports).
pub fn min_pairwise<D: DiversityDistance>(dist: &mut D, selection: &[usize]) -> f64 {
    let mut best = f64::INFINITY;
    for (a, &i) in selection.iter().enumerate() {
        // lint: allow(R2) -- O(k^2) over the final selection, k points
        for &j in &selection[a + 1..] {
            best = best.min(dist.distance(i, j));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A distance backend over an explicit matrix.
    struct Matrix(Vec<Vec<f64>>);
    impl DiversityDistance for Matrix {
        fn num_points(&self) -> usize {
            self.0.len()
        }
        fn distance(&mut self, i: usize, j: usize) -> f64 {
            self.0[i][j]
        }
    }

    /// Points on a line: distance |i−j| (a metric).
    fn line(m: usize) -> Matrix {
        Matrix(
            (0..m)
                .map(|i| (0..m).map(|j| (i as f64 - j as f64).abs()).collect())
                .collect(),
        )
    }

    #[test]
    fn greedy_on_line_picks_extremes() {
        let mut d = line(11);
        let scores = vec![1u64; 11];
        // Seed MaxDominance (all ties → index 0), then the farthest point
        // is 10, then the one maximising min distance is 5.
        let sel = select_diverse(&mut d, &scores, 3, SeedRule::MaxDominance, TieBreak::FirstIndex)
            .unwrap();
        assert_eq!(sel, vec![0, 10, 5]);
    }

    #[test]
    fn greedy_achieves_half_of_optimum() {
        // Metric property check across random metrics: compare greedy to
        // brute force on small instances.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(140);
        for _ in 0..20 {
            let m = 8;
            // Random points in the plane → Euclidean metric.
            let pts: Vec<(f64, f64)> = (0..m).map(|_| (rng.gen(), rng.gen())).collect();
            let mat: Vec<Vec<f64>> = (0..m)
                .map(|i| {
                    (0..m)
                        .map(|j| {
                            ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt()
                        })
                        .collect()
                })
                .collect();
            for k in 2..=4 {
                let mut d = Matrix(mat.clone());
                let scores = vec![1u64; m];
                let sel =
                    select_diverse(&mut d, &scores, k, SeedRule::MaxDominance, TieBreak::FirstIndex)
                        .unwrap();
                let got = min_pairwise(&mut d, &sel);
                let (_, opt) = brute_force_mmdp(&mut d, k, 1 << 30).unwrap();
                assert!(
                    got >= opt / 2.0 - 1e-12,
                    "greedy {got} < OPT/2 = {}",
                    opt / 2.0
                );
            }
        }
    }

    #[test]
    fn farthest_pair_seed_matches_classic() {
        let mut d = line(7);
        let scores = vec![0u64; 7];
        let sel =
            select_diverse(&mut d, &scores, 2, SeedRule::FarthestPair, TieBreak::FirstIndex)
                .unwrap();
        assert_eq!(min_pairwise(&mut d, &sel), 6.0, "exact for k = 2");
    }

    #[test]
    fn seed_uses_max_dominance_score() {
        let mut d = line(5);
        let scores = vec![1, 9, 2, 3, 4];
        let sel = select_diverse(&mut d, &scores, 2, SeedRule::MaxDominance, TieBreak::MaxDominance)
            .unwrap();
        assert_eq!(sel[0], 1, "seed must be the max-score point");
        assert_eq!(sel[1], 4, "then the farthest from it");
    }

    #[test]
    fn tie_break_prefers_higher_score() {
        // Distances: point 0 equidistant to 1 and 2; scores favour 2.
        let mat = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let mut d = Matrix(mat);
        let scores = vec![5, 1, 3];
        let sel = select_diverse(&mut d, &scores, 2, SeedRule::MaxDominance, TieBreak::MaxDominance)
            .unwrap();
        assert_eq!(sel, vec![0, 2], "tie resolved by domination score");
    }

    #[test]
    fn msdp_vs_mmdp_example1() {
        // Paper Example 1 / Figure 2: both objectives keep the distant
        // pair a, b; max-sum adds c (near a, but its two long edges
        // inflate the sum) while max-min adds d, which is farther from
        // everything — "in k-MSDP … small distances may still occur,
        // because they are compensated by larger ones".
        let pts = [(0.0, 0.0), (10.0, 0.0), (0.0, 3.0), (5.0, 3.0)];
        let mat: Vec<Vec<f64>> = (0..4)
            .map(|i| {
                (0..4)
                    .map(|j| {
                        let (dx, dy): (f64, f64) =
                            (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                        (dx * dx + dy * dy).sqrt()
                    })
                    .collect()
            })
            .collect();
        let mut d = Matrix(mat.clone());
        let (mut mmdp_sel, _) = brute_force_mmdp(&mut d, 3, 1 << 20).unwrap();
        let mut d2 = Matrix(mat);
        let (mut msdp_sel, _) = brute_force_msdp(&mut d2, 3, 1 << 20).unwrap();
        mmdp_sel.sort_unstable();
        msdp_sel.sort_unstable();
        assert_eq!(mmdp_sel, vec![0, 1, 3], "max-min spreads out");
        assert_eq!(msdp_sel, vec![0, 1, 2], "max-sum keeps the close pair");
    }

    #[test]
    fn greedy_msdp_runs_and_selects_k() {
        let mut d = line(9);
        let scores = vec![1u64; 9];
        let sel = greedy_msdp(&mut d, &scores, 4).unwrap();
        assert_eq!(sel.len(), 4);
        // All distinct.
        let mut s = sel.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn input_validation() {
        let mut d = line(4);
        let scores = vec![0u64; 4];
        assert_eq!(
            select_diverse(&mut d, &scores, 1, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .unwrap_err(),
            SkyDiverError::KTooSmall { k: 1 }
        );
        assert_eq!(
            select_diverse(&mut d, &scores, 5, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .unwrap_err(),
            SkyDiverError::KExceedsSkyline { k: 5, m: 4 }
        );
        let mut empty = Matrix(vec![]);
        assert_eq!(
            select_diverse(&mut empty, &[], 2, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .unwrap_err(),
            SkyDiverError::EmptySkyline
        );
    }

    #[test]
    fn scores_length_mismatch_is_a_typed_error() {
        let mut d = line(4);
        assert_eq!(
            select_diverse(&mut d, &[1, 2], 2, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .unwrap_err(),
            SkyDiverError::ScoresLengthMismatch { scores: 2, points: 4 }
        );
        assert!(matches!(
            greedy_msdp(&mut d, &[1], 2),
            Err(SkyDiverError::ScoresLengthMismatch { .. })
        ));
    }

    #[test]
    fn budgeted_selection_returns_exact_greedy_prefix() {
        use crate::budget::{CancelToken, RunBudget, StopReason};
        let scores = vec![1u64; 11];
        let mut d = line(11);
        let full = select_diverse(&mut d, &scores, 6, SeedRule::MaxDominance, TieBreak::FirstIndex)
            .unwrap();
        // The fused token trips on the 4th poll: one poll for the seed,
        // then one per greedy round → 3 points selected.
        let ctx = ExecContext::new(
            RunBudget::none().with_cancel_token(CancelToken::after_polls(4)),
        );
        let mut d2 = line(11);
        let (partial, int) = select_diverse_budgeted(
            &mut d2,
            &scores,
            6,
            SeedRule::MaxDominance,
            TieBreak::FirstIndex,
            &ctx,
        )
        .unwrap();
        let int = int.expect("budget must trip");
        assert_eq!(int.phase, ExecPhase::Selection);
        assert_eq!(int.reason, StopReason::Cancelled);
        assert_eq!(partial.len(), 3);
        assert_eq!(partial, full[..3], "prefix equals the unbudgeted run");
    }

    #[test]
    fn budgeted_selection_without_budget_matches_plain() {
        let scores = vec![1u64; 9];
        let mut a = line(9);
        let plain =
            select_diverse(&mut a, &scores, 4, SeedRule::FarthestPair, TieBreak::MaxDominance)
                .unwrap();
        let mut b = line(9);
        let ctx = ExecContext::unlimited();
        let (budgeted, int) = select_diverse_budgeted(
            &mut b,
            &scores,
            4,
            SeedRule::FarthestPair,
            TieBreak::MaxDominance,
            &ctx,
        )
        .unwrap();
        assert!(int.is_none());
        assert_eq!(plain, budgeted);
    }

    /// A thread-safe matrix backend for the parallel selection tests.
    struct SyncMatrix(Vec<Vec<f64>>);
    impl DiversityDistance for SyncMatrix {
        fn num_points(&self) -> usize {
            self.0.len()
        }
        fn distance(&mut self, i: usize, j: usize) -> f64 {
            self.0[i][j]
        }
    }
    impl SyncDiversityDistance for SyncMatrix {
        fn distance_shared(&self, i: usize, j: usize) -> f64 {
            self.0[i][j]
        }
    }

    fn random_euclidean(m: usize, seed: u64) -> Vec<Vec<f64>> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..m).map(|_| (rng.gen(), rng.gen())).collect();
        (0..m)
            .map(|i| {
                (0..m)
                    .map(|j| {
                        ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_selection_bit_identical_to_sequential() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(150);
        for trial in 0..6 {
            let m = 20 + trial * 7;
            let mat = random_euclidean(m, 151 + trial as u64);
            let scores: Vec<u64> = (0..m).map(|_| rng.gen_range(0..5)).collect();
            for seed in [SeedRule::MaxDominance, SeedRule::FarthestPair] {
                for tie in [TieBreak::MaxDominance, TieBreak::FirstIndex] {
                    let mut d = Matrix(mat.clone());
                    let seq = select_diverse(&mut d, &scores, 7, seed, tie).unwrap();
                    let sd = SyncMatrix(mat.clone());
                    for threads in [2, 3, 8] {
                        let par =
                            select_diverse_parallel(&sd, &scores, 7, seed, tie, threads)
                                .unwrap();
                        assert_eq!(
                            seq, par,
                            "m={m} seed={seed:?} tie={tie:?} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_selection_with_tied_distances_matches_sequential() {
        // Integer-valued distances manufacture exact f64 ties, the case
        // where fold order could diverge if the reduction were sloppy.
        let m = 24;
        let mat: Vec<Vec<f64>> = (0..m)
            .map(|i| (0..m).map(|j| ((i + j) % 5) as f64).collect())
            .collect();
        let scores: Vec<u64> = (0..m as u64).map(|i| i % 3).collect();
        for tie in [TieBreak::MaxDominance, TieBreak::FirstIndex] {
            let mut d = Matrix(mat.clone());
            let seq = select_diverse(&mut d, &scores, 6, SeedRule::MaxDominance, tie).unwrap();
            let sd = SyncMatrix(mat.clone());
            for threads in [2, 3, 8] {
                let par = select_diverse_parallel(
                    &sd,
                    &scores,
                    6,
                    SeedRule::MaxDominance,
                    tie,
                    threads,
                )
                .unwrap();
                assert_eq!(seq, par, "tie={tie:?} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_budgeted_returns_exact_greedy_prefix() {
        use crate::budget::{CancelToken, RunBudget, StopReason};
        let mat = random_euclidean(30, 160);
        let scores = vec![1u64; 30];
        let sd = SyncMatrix(mat.clone());
        let full =
            select_diverse_parallel(&sd, &scores, 8, SeedRule::MaxDominance, TieBreak::FirstIndex, 4)
                .unwrap();
        // Same poll cadence as the sequential pass: one for the seed,
        // one per round → the 4th poll trips with 3 points selected.
        let ctx = ExecContext::new(
            RunBudget::none().with_cancel_token(CancelToken::after_polls(4)),
        );
        let (partial, int) = select_diverse_parallel_budgeted(
            &sd,
            &scores,
            8,
            SeedRule::MaxDominance,
            TieBreak::FirstIndex,
            4,
            &ctx,
        )
        .unwrap();
        let int = int.expect("token must trip");
        assert_eq!(int.reason, StopReason::Cancelled);
        assert_eq!(partial.len(), 3);
        assert_eq!(partial, full[..3]);
    }

    #[test]
    fn parallel_selection_more_threads_than_points() {
        let mat = random_euclidean(5, 161);
        let scores = vec![1u64; 5];
        let mut d = Matrix(mat.clone());
        let seq =
            select_diverse(&mut d, &scores, 3, SeedRule::FarthestPair, TieBreak::MaxDominance)
                .unwrap();
        let sd = SyncMatrix(mat);
        let par =
            select_diverse_parallel(&sd, &scores, 3, SeedRule::FarthestPair, TieBreak::MaxDominance, 16)
                .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_selection_validates_inputs() {
        let sd = SyncMatrix(random_euclidean(10, 162));
        assert_eq!(
            select_diverse_parallel(&sd, &[1; 10], 11, SeedRule::MaxDominance, TieBreak::MaxDominance, 4)
                .unwrap_err(),
            SkyDiverError::KExceedsSkyline { k: 11, m: 10 }
        );
        assert!(matches!(
            select_diverse_parallel(&sd, &[1; 3], 4, SeedRule::MaxDominance, TieBreak::MaxDominance, 4),
            Err(SkyDiverError::ScoresLengthMismatch { .. })
        ));
    }

    #[test]
    fn brute_force_guard() {
        let mut d = line(30);
        assert!(matches!(
            brute_force_mmdp(&mut d, 15, 1000),
            Err(SkyDiverError::BruteForceTooLarge { .. })
        ));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }
}
