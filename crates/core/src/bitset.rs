//! Fixed-size bitsets used to materialise dominated sets `Γ(p)`.

/// A fixed-capacity bitset over `0..len` with word-parallel set algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An all-zeros bitset of capacity `len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|self ∩ other|`.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|`.
    pub fn union_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Number of bits set in `other` but not in `self` — the "newly
    /// covered" count of the greedy max-coverage step.
    pub fn new_bits_from(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (!a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over set bit positions in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = BitSet::new(130);
        assert_eq!(b.count(), 0);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1, 5, 70] {
            a.set(i);
        }
        for i in [5, 70, 99] {
            b.set(i);
        }
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.union_count(&b), 4);
        assert_eq!(a.new_bits_from(&b), 1);
        a.union_with(&b);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for i in [3, 63, 64, 127, 128, 199] {
            b.set(i);
        }
        assert_eq!(
            b.iter_ones().collect::<Vec<_>>(),
            vec![3, 63, 64, 127, 128, 199]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        BitSet::new(10).set(10);
    }
}
