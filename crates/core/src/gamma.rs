//! Materialised dominated sets `Γ(p)` and domination scores.
//!
//! The conceptual *domination matrix* `M` of the paper (§3.2) — rows are
//! data points, columns are skyline points, `M[i][j] = 1` iff `sⱼ ≺ pᵢ` —
//! is "used only for illustration purposes and … not constructed in
//! practice" by the SkyDiver fingerprinting path. The exact baselines
//! (Brute-Force, k-max-coverage) and the quality re-scoring of the
//! experiments *do* need real `Γ` sets though, so this module builds them
//! as one bitset per skyline point in a single scan.

use skydiver_data::{DatasetView, DominanceOrd};

use crate::bitset::BitSet;

/// One bitset of dominated point ids per skyline point, plus the
/// domination scores `|Γ(p)|`.
#[derive(Debug, Clone)]
pub struct GammaSets {
    rows: usize,
    sets: Vec<BitSet>,
}

impl GammaSets {
    /// Builds the Γ sets for `skyline` (view-local indices) by one scan
    /// over `ds` (a dataset or any [`DatasetView`]). `O(n · m · d)`
    /// time, `O(n · m / 8)` bytes.
    pub fn build<'a, O>(ds: impl Into<DatasetView<'a>>, ord: &O, skyline: &[usize]) -> Self
    where
        O: DominanceOrd<Item = [f64]>,
    {
        let view: DatasetView<'a> = ds.into();
        let mut sets: Vec<BitSet> = skyline.iter().map(|_| BitSet::new(view.len())).collect();
        for (i, q) in view.iter().enumerate() {
            for (j, &s) in skyline.iter().enumerate() {
                if s == i {
                    continue;
                }
                if ord.dominates(view.point(s), q) {
                    sets[j].set(i);
                }
            }
        }
        GammaSets {
            rows: view.len(),
            sets,
        }
    }

    /// Builds Γ sets directly from explicit edge lists: `edges[j]` holds
    /// the dominated-point ids of skyline point `j`, ids in `0..rows`.
    /// This is the entry point for the dominance-graph setting (paper
    /// Fig. 1) where only the relation — not coordinates — is known.
    pub fn from_edges(rows: usize, edges: &[Vec<usize>]) -> Self {
        let mut sets = Vec::with_capacity(edges.len());
        for dominated in edges {
            let mut b = BitSet::new(rows);
            for &i in dominated {
                b.set(i);
            }
            sets.push(b);
        }
        GammaSets { rows, sets }
    }

    /// Number of skyline points `m`.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` when there are no skyline points.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Number of candidate dominated rows (`|D|` or the graph's
    /// right-side cardinality).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The bitset `Γ(sⱼ)`.
    pub fn set(&self, j: usize) -> &BitSet {
        &self.sets[j]
    }

    /// Domination score `|Γ(sⱼ)|`.
    pub fn score(&self, j: usize) -> u64 {
        self.sets[j].count() as u64
    }

    /// All domination scores.
    pub fn scores(&self) -> Vec<u64> {
        (0..self.len()).map(|j| self.score(j)).collect()
    }

    /// Exact Jaccard similarity of `Γ(sᵢ)` and `Γ(sⱼ)`.
    ///
    /// Two empty sets are defined as identical (`Js = 1`), matching the
    /// MinHash estimate where two all-∞ signatures agree everywhere.
    pub fn jaccard_similarity(&self, i: usize, j: usize) -> f64 {
        let inter = self.sets[i].intersection_count(&self.sets[j]);
        let uni = self.sets[i].union_count(&self.sets[j]);
        if uni == 0 {
            1.0
        } else {
            inter as f64 / uni as f64
        }
    }

    /// Exact Jaccard distance `Jd = 1 − Js`.
    pub fn jaccard_distance(&self, i: usize, j: usize) -> f64 {
        1.0 - self.jaccard_similarity(i, j)
    }

    /// Number of distinct points dominated by at least one member of
    /// `selection` (the max-coverage objective).
    pub fn union_coverage(&self, selection: &[usize]) -> usize {
        if selection.is_empty() {
            return 0;
        }
        let mut acc = BitSet::new(self.rows);
        for &j in selection {
            acc.union_with(&self.sets[j]);
        }
        acc.count()
    }

    /// Number of points dominated by at least one skyline point — the
    /// denominator of the coverage percentages in Table 1 (equals
    /// `n − m` for numeric skylines, where every non-skyline point is
    /// dominated by some skyline point).
    pub fn total_dominated(&self) -> usize {
        self.union_coverage(&(0..self.len()).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;
    use skydiver_skyline::naive_skyline;

    /// Figure 1 of the paper: skyline {a,b,c,d} over p1..p11 with the
    /// drawn edges (a→p1; b→p1..p6; c→p4..p10; d→p5..p8 roughly — we use
    /// a faithful reading of the figure).
    fn figure1() -> GammaSets {
        GammaSets::from_edges(
            11,
            &[
                vec![0],                // a → p1
                vec![0, 1, 2, 3, 4, 5], // b
                vec![3, 4, 5, 6, 7, 8, 9, 10], // c
                vec![6, 7, 8, 9],       // d
            ],
        )
    }

    #[test]
    fn scores_and_sets() {
        let g = figure1();
        assert_eq!(g.len(), 4);
        assert_eq!(g.rows(), 11);
        assert_eq!(g.scores(), vec![1, 6, 8, 4]);
        assert!(g.set(1).get(0));
        assert!(!g.set(3).get(0));
    }

    #[test]
    fn jaccard_of_figure1_pairs() {
        let g = figure1();
        // b and c share p4,p5,p6 (ids 3,4,5): |∩| = 3, |∪| = 11.
        assert!((g.jaccard_similarity(1, 2) - 3.0 / 11.0).abs() < 1e-12);
        // a and c share nothing.
        assert_eq!(g.jaccard_distance(0, 2), 1.0);
        // d ⊂ c: |∩| = 4, |∪| = 8.
        assert!((g.jaccard_similarity(3, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_are_identical() {
        let g = GammaSets::from_edges(5, &[vec![], vec![], vec![0]]);
        assert_eq!(g.jaccard_similarity(0, 1), 1.0);
        assert_eq!(g.jaccard_distance(0, 1), 0.0);
        assert_eq!(g.jaccard_similarity(0, 2), 0.0);
    }

    #[test]
    fn build_matches_scan_semantics() {
        let ds = independent(400, 3, 77);
        let sky = naive_skyline(&ds, &MinDominance);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        assert_eq!(g.len(), sky.len());
        for (j, &s) in sky.iter().enumerate() {
            let expect = ds.dominated_by_scan(&MinDominance, ds.point(s));
            assert_eq!(g.set(j).iter_ones().collect::<Vec<_>>(), expect);
        }
    }

    #[test]
    fn skyline_rows_never_dominated() {
        let ds = independent(300, 2, 78);
        let sky = naive_skyline(&ds, &MinDominance);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        for j in 0..g.len() {
            for &s in &sky {
                assert!(!g.set(j).get(s), "skyline point marked dominated");
            }
        }
    }

    #[test]
    fn total_dominated_is_n_minus_m_for_numeric_skylines() {
        let ds = independent(500, 3, 79);
        let sky = naive_skyline(&ds, &MinDominance);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        assert_eq!(g.total_dominated(), ds.len() - sky.len());
    }

    #[test]
    fn union_coverage_of_subsets() {
        let g = figure1();
        assert_eq!(g.union_coverage(&[0]), 1);
        assert_eq!(g.union_coverage(&[1, 2]), 11);
        assert_eq!(g.union_coverage(&[0, 3]), 5);
        assert_eq!(g.union_coverage(&[]), 0);
    }
}
