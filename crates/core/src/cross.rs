//! Cross-set diversification — the paper's future-work item (i):
//! "the diversification of a data set A based on (dominance)
//! relationships over another set B, where A is not necessarily a
//! Pareto optimal set (as in the skyline case)".
//!
//! Everything in SkyDiver only needs each candidate's dominated set, so
//! the generalisation is direct: for candidates `A` and reference set
//! `B`, define `Γ_B(a) = { b ∈ B : a ≺ b }` and diversify `A` under the
//! Jaccard distance of those sets. `A` may contain mutually comparable
//! points — the selection is oblivious to that.
//!
//! One caveat carries over from the skyline case and is sharper here:
//! candidates that dominate nothing in `B` all have `Γ_B = ∅` and are
//! mutually *identical* (distance 0), so at most one of them can be
//! picked before the greedy's max–min drops to zero.

use skydiver_data::{Dataset, DominanceOrd};

use crate::dispersion::{select_diverse, SeedRule, TieBreak};
use crate::diversity::SignatureDistance;
use crate::error::Result;
use crate::gamma::GammaSets;
use crate::minhash::{HashFamily, SigGenOutput, SignatureMatrix};

/// Builds the cross-set Γ sets `Γ_B(a)` for every candidate `a ∈ A`.
///
/// `O(|A| · |B| · d)` — exact; use [`cross_fingerprint`] for large `B`.
pub fn cross_gamma_sets<O>(candidates: &Dataset, reference: &Dataset, ord: &O) -> GammaSets
where
    O: DominanceOrd<Item = [f64]>,
{
    assert_eq!(
        candidates.dims(),
        reference.dims(),
        "candidate and reference dimensionality must match"
    );
    let edges: Vec<Vec<usize>> = candidates
        .iter()
        .map(|a| {
            reference
                .iter()
                .enumerate()
                .filter(|(_, b)| ord.dominates(a, b))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    GammaSets::from_edges(reference.len(), &edges)
}

/// MinHash fingerprints of the cross-set dominated sets: one pass over
/// `B`, exactly like `SigGen-IF` but with `A` as the column set.
pub fn cross_fingerprint<O>(
    candidates: &Dataset,
    reference: &Dataset,
    ord: &O,
    family: &HashFamily,
) -> SigGenOutput
where
    O: DominanceOrd<Item = [f64]>,
{
    assert_eq!(
        candidates.dims(),
        reference.dims(),
        "candidate and reference dimensionality must match"
    );
    let t = family.len();
    let m = candidates.len();
    let mut matrix = SignatureMatrix::new(t, m);
    let mut scores = vec![0u64; m];
    let mut row_hashes = vec![0u64; t];
    let mut dominators: Vec<usize> = Vec::new();
    for (row, b) in reference.iter().enumerate() {
        dominators.clear();
        for (j, a) in candidates.iter().enumerate() {
            if ord.dominates(a, b) {
                dominators.push(j);
            }
        }
        if dominators.is_empty() {
            continue;
        }
        family.hash_all(row as u64, &mut row_hashes);
        for &j in &dominators {
            matrix.update_column(j, &row_hashes);
            scores[j] += 1;
        }
    }
    SigGenOutput { matrix, scores }
}

/// End-to-end cross-set diversification: fingerprint `A` against `B`
/// and return the indices (into `A`) of the `k` most diverse
/// candidates.
pub fn diversify_cross<O>(
    candidates: &Dataset,
    reference: &Dataset,
    ord: &O,
    k: usize,
    signature_size: usize,
    hash_seed: u64,
) -> Result<Vec<usize>>
where
    O: DominanceOrd<Item = [f64]>,
{
    if signature_size == 0 {
        return Err(crate::error::SkyDiverError::ZeroSignatureSize);
    }
    let family = HashFamily::new(signature_size, hash_seed);
    let out = cross_fingerprint(candidates, reference, ord, &family);
    let mut dist = SignatureDistance::new(&out.matrix);
    select_diverse(
        &mut dist,
        &out.scores,
        k,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diversity::{DiversityDistance, ExactJaccardDistance};
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;

    #[test]
    fn cross_gamma_matches_per_point_scan() {
        let a = independent(40, 3, 1);
        let b = independent(300, 3, 2);
        let g = cross_gamma_sets(&a, &b, &MinDominance);
        assert_eq!(g.len(), 40);
        assert_eq!(g.rows(), 300);
        for (j, p) in a.iter().enumerate() {
            let expect = b.dominated_by_scan(&MinDominance, p);
            assert_eq!(g.set(j).iter_ones().collect::<Vec<_>>(), expect);
        }
    }

    #[test]
    fn candidates_need_not_be_an_antichain() {
        // a0 dominates a1 — both are still valid candidates.
        let a = Dataset::from_rows(2, &[[0.1, 0.1], [0.2, 0.2], [0.9, 0.05]]);
        let b = independent(500, 2, 3);
        let g = cross_gamma_sets(&a, &b, &MinDominance);
        // Γ(a1) ⊂ Γ(a0) strictly (a0 dominates whatever a1 does).
        let inter = g.set(0).intersection_count(g.set(1));
        assert_eq!(inter, g.set(1).count());
        assert!(g.set(0).count() > g.set(1).count());
    }

    #[test]
    fn fingerprint_estimates_cross_jaccard() {
        let a = independent(25, 2, 4);
        let b = independent(2000, 2, 5);
        let g = cross_gamma_sets(&a, &b, &MinDominance);
        let fam = HashFamily::new(512, 6);
        let out = cross_fingerprint(&a, &b, &MinDominance, &fam);
        assert_eq!(out.scores, g.scores());
        let mut worst: f64 = 0.0;
        for i in 0..25 {
            for j in (i + 1)..25 {
                worst = worst.max(
                    (out.matrix.estimated_similarity(i, j) - g.jaccard_similarity(i, j)).abs(),
                );
            }
        }
        assert!(worst < 0.12, "worst estimation error {worst}");
    }

    #[test]
    fn diversify_cross_selects_spread_candidates() {
        // Candidates: two clones near the origin corner plus one point
        // covering a disjoint region. The diverse pair must not be the
        // two clones.
        let a = Dataset::from_rows(2, &[[0.05, 0.5], [0.06, 0.5], [0.5, 0.05]]);
        let b = independent(3000, 2, 7);
        let sel = diversify_cross(&a, &b, &MinDominance, 2, 128, 8).unwrap();
        assert_eq!(sel.len(), 2);
        assert!(
            !(sel.contains(&0) && sel.contains(&1)),
            "clones must not both be selected: {sel:?}"
        );
        // Exact check: the chosen pair has higher Jd than the clones.
        let g = cross_gamma_sets(&a, &b, &MinDominance);
        let mut exact = ExactJaccardDistance::new(&g);
        assert!(exact.distance(sel[0], sel[1]) > exact.distance(0, 1));
    }

    #[test]
    fn empty_reference_makes_all_candidates_identical() {
        let a = independent(5, 2, 9);
        let b = Dataset::new(2);
        let fam = HashFamily::new(16, 10);
        let out = cross_fingerprint(&a, &b, &MinDominance, &fam);
        assert!(out.scores.iter().all(|&s| s == 0));
        assert_eq!(out.matrix.estimated_similarity(0, 4), 1.0);
    }

    use skydiver_data::Dataset;
}
