//! Flat, cache-friendly storage for multidimensional point sets.

use crate::dominance::{Dominance, DominanceOrd, MinDominance};

/// A set of `d`-dimensional points stored row-major in one contiguous
/// allocation.
///
/// ```
/// use skydiver_data::Dataset;
/// let mut ds = Dataset::new(2);
/// ds.push(&[1.0, 2.0]);
/// ds.push(&[0.5, 3.0]);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.point(1), &[0.5, 3.0]);
/// ```
///
/// Point *identity* is positional: point `i` is `self.point(i)`. All
/// SkyDiver structures (skyline sets, Γ sets, signatures) refer to points
/// by these indices, mirroring the paper's domination-matrix view where
/// rows are data points and columns are skyline points.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dims: usize,
    coords: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of dimensionality `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        Self {
            dims,
            coords: Vec::new(),
        }
    }

    /// Creates an empty dataset with room for `n` points.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        Self {
            dims,
            coords: Vec::with_capacity(dims * n),
        }
    }

    /// Builds a dataset from a flat row-major coordinate buffer.
    ///
    /// # Panics
    /// Panics if `coords.len()` is not a multiple of `dims`.
    pub fn from_flat(dims: usize, coords: Vec<f64>) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        assert!(
            coords.len().is_multiple_of(dims),
            "coordinate buffer length {} not a multiple of dims {}",
            coords.len(),
            dims
        );
        Self { dims, coords }
    }

    /// Builds a dataset from per-point rows.
    ///
    /// # Panics
    /// Panics if any row has the wrong dimensionality.
    pub fn from_rows<R: AsRef<[f64]>>(dims: usize, rows: &[R]) -> Self {
        let mut ds = Self::with_capacity(dims, rows.len());
        for r in rows {
            ds.push(r.as_ref());
        }
        ds
    }

    /// Appends one point.
    ///
    /// # Panics
    /// Panics if `p.len() != self.dims()`.
    pub fn push(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.dims, "point dimensionality mismatch");
        self.coords.extend_from_slice(p);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// `true` when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow point `i` as a slice of length `d`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        let s = i * self.dims;
        &self.coords[s..s + self.dims]
    }

    /// Iterate over all points in index order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.coords.chunks_exact(self.dims)
    }

    /// The raw row-major coordinate buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.coords
    }

    /// Projects the dataset onto its first `d` dimensions (used to run the
    /// paper's experiments at several dimensionalities of one data set,
    /// e.g. FC4D/FC5D/FC7D).
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > self.dims()`.
    pub fn project(&self, d: usize) -> Dataset {
        assert!(d > 0 && d <= self.dims, "invalid projection dims {d}");
        if d == self.dims {
            return self.clone();
        }
        let mut out = Dataset::with_capacity(d, self.len());
        for p in self.iter() {
            out.push(&p[..d]);
        }
        out
    }

    /// Keeps only the first `n` points (used by the `--scale` harness
    /// option).
    pub fn truncate(&mut self, n: usize) {
        let keep = n.min(self.len());
        self.coords.truncate(keep * self.dims);
    }

    /// Computes the indices of points dominated by `p` under `ord` with a
    /// full scan. `O(n · d)`; intended for tests and exact baselines, not
    /// the hot path.
    pub fn dominated_by_scan<O>(&self, ord: &O, p: &[f64]) -> Vec<usize>
    where
        O: DominanceOrd<Item = [f64]>,
    {
        self.iter()
            .enumerate()
            .filter(|(_, q)| ord.dominates(p, q))
            .map(|(i, _)| i)
            .collect()
    }

    /// Axis-aligned bounding box `(lows, highs)` of all points.
    ///
    /// Returns `None` for an empty dataset.
    pub fn bounding_box(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.point(0).to_vec();
        let mut hi = lo.clone();
        for p in self.iter().skip(1) {
            for j in 0..self.dims {
                if p[j] < lo[j] {
                    lo[j] = p[j];
                }
                if p[j] > hi[j] {
                    hi[j] = p[j];
                }
            }
        }
        Some((lo, hi))
    }

    /// The fraction of zero entries in the (conceptual) domination matrix
    /// `M` whose rows are the points of `self` minus `skyline` and whose
    /// columns are `skyline` members — reproduces the sparsity numbers of
    /// §3.2 (45 % / 84 % / 97 % of zeros at 3/5/7 dimensions for 10 K
    /// uniform points).
    pub fn domination_matrix_sparsity(&self, skyline: &[usize]) -> f64 {
        use std::collections::HashSet;
        let sky: HashSet<usize> = skyline.iter().copied().collect();
        let rows = self.len() - sky.len();
        let cols = sky.len();
        if rows == 0 || cols == 0 {
            return 0.0;
        }
        let mut ones = 0usize;
        for (i, q) in self.iter().enumerate() {
            if sky.contains(&i) {
                continue;
            }
            for &s in skyline {
                if MinDominance.dominates(self.point(s), q) {
                    ones += 1;
                }
            }
        }
        1.0 - ones as f64 / (rows * cols) as f64
    }
}

/// Compares two points of a dataset by index under an order.
///
/// Convenience wrapper used by skyline algorithms that work on index
/// permutations instead of materialised rows.
#[inline]
pub fn dom_cmp_idx<O>(ds: &Dataset, ord: &O, a: usize, b: usize) -> Dominance
where
    O: DominanceOrd<Item = [f64]>,
{
    ord.dom_cmp(ds.point(a), ds.point(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::MinDominance;

    fn small() -> Dataset {
        Dataset::from_rows(2, &[[1.0, 4.0], [2.0, 3.0], [3.0, 3.0], [0.5, 5.0]])
    }

    #[test]
    fn push_len_point() {
        let ds = small();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.point(1), &[2.0, 3.0]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn iter_yields_rows_in_order() {
        let ds = small();
        let rows: Vec<&[f64]> = ds.iter().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], &[0.5, 5.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dims_panics() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_checks_length() {
        let _ = Dataset::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    fn projection_keeps_prefix_dims() {
        let ds = small();
        let p = ds.project(1);
        assert_eq!(p.dims(), 1);
        assert_eq!(p.len(), 4);
        assert_eq!(p.point(0), &[1.0]);
        // full projection is identity
        assert_eq!(ds.project(2), ds);
    }

    #[test]
    fn truncate_limits_points() {
        let mut ds = small();
        ds.truncate(2);
        assert_eq!(ds.len(), 2);
        ds.truncate(10); // no-op beyond length
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn dominated_by_scan_matches_manual() {
        let ds = small();
        // point (1,4) dominates nothing but (… check): candidates
        // (2,3) inc, (3,3) inc, (0.5,5) inc → empty
        assert!(ds.dominated_by_scan(&MinDominance, &[1.0, 4.0]).is_empty());
        // (2,3) dominates (3,3)
        assert_eq!(ds.dominated_by_scan(&MinDominance, &[2.0, 3.0]), vec![2]);
        // origin dominates everything
        assert_eq!(
            ds.dominated_by_scan(&MinDominance, &[0.0, 0.0]),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn bounding_box_spans_all_points() {
        let ds = small();
        let (lo, hi) = ds.bounding_box().unwrap();
        assert_eq!(lo, vec![0.5, 3.0]);
        assert_eq!(hi, vec![3.0, 5.0]);
        assert!(Dataset::new(2).bounding_box().is_none());
    }

    #[test]
    fn sparsity_of_tiny_matrix() {
        // skyline = {3, 0, 1} … compute by hand instead: points
        // p0=(1,4) p1=(2,3) p2=(3,3) p3=(0.5,5); skyline = {0,1,3}
        // dominated rows: {2}; columns {0,1,3}: p0≺p2? (1≤3,4>3) no.
        // p1≺p2 yes. p3≺p2? (0.5≤3, 5>3) no → 1 one of 3 cells.
        let ds = small();
        let s = ds.domination_matrix_sparsity(&[0, 1, 3]);
        assert!((s - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }
}
