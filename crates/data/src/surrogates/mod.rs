//! Synthetic surrogates for the paper's real-life data sets.
//!
//! The paper evaluates on two real data sets we cannot redistribute:
//!
//! * **Forest Cover (FC)** — ≈ 581 012 cartographic observations from the
//!   UCI repository with 10 quantitative attributes (elevation, aspect,
//!   slope, distances to hydrology/roads/fire points, hillshades, …), used
//!   at 4, 5 and 7 dimensions.
//! * **Recipes (REC)** — ≈ 365 000 recipes crawled from Sparkrecipes.com
//!   where attributes are nutritional values (calories, fat, carbohydrates,
//!   protein, sodium, calcium, …), used at 4, 5 and 7 dimensions.
//!
//! Every SkyDiver experiment depends only on the *dominance structure* of
//! the input — skyline cardinality, the overlap pattern of dominated sets,
//! and spatial clustering for the R-tree — which is governed by
//! cardinality, dimensionality and inter-attribute correlation. The
//! surrogates reproduce those: matching cardinalities, marginals of the
//! right family (mixtures / log-normals), and a low-rank latent-factor
//! correlation structure. Absolute attribute values are irrelevant to the
//! algorithms. This substitution is recorded in `DESIGN.md` §5.

mod forest_cover;
mod recipes;

pub use forest_cover::{forest_cover, FC_CARDINALITY, FC_DIMS};
pub use recipes::{recipes, REC_CARDINALITY, REC_DIMS};
