//! Recipes (REC) surrogate.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::generators::NormalSampler;

/// Cardinality of the real Recipes data set (the paper's Table 4 lists
/// "∼ 365K").
pub const REC_CARDINALITY: usize = 365_000;

/// Number of nutritional attributes generated; the paper projects to 4, 5
/// and 7 of them.
pub const REC_DIMS: usize = 8;

/// Generates a REC-like data set with `n` rows and [`REC_DIMS`] attributes.
///
/// Attribute channels (projection order):
///
/// 0. calories (kcal) — *derived* from the macronutrients via the Atwater
///    factors `4·carbs + 4·protein + 9·fat` plus reporting noise, which
///    reproduces the strong positive correlations of real nutrition data,
/// 1. total fat (g) — log-normal,
/// 2. carbohydrates (g) — log-normal,
/// 3. protein (g) — log-normal,
/// 4. sodium (mg) — log-normal, heavier for savoury recipes,
/// 5. cholesterol (mg) — follows fat for savoury recipes, near zero for
///    desserts,
/// 6. calcium (% DV) — log-normal,
/// 7. fiber (g) — follows carbohydrates.
///
/// A per-row `dessert` latent class flips the carb/fat balance, giving the
/// heavy-tailed, partially-correlated dominance structure (REC has the
/// largest skylines of the paper's real data; see Table 1 where REC5D
/// coverage at k=2 is only 70 %).
pub fn recipes(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC1_9E5A);
    let mut normal = NormalSampler::new();
    let mut ds = Dataset::with_capacity(REC_DIMS, n);
    let mut row = [0.0f64; REC_DIMS];
    for _ in 0..n {
        let dessert = rng.gen_bool(0.35);

        // Macronutrients (grams per serving).
        let fat = normal.sample_lognormal(&mut rng, if dessert { 2.2 } else { 2.6 }, 0.7);
        let carbs = normal.sample_lognormal(&mut rng, if dessert { 3.6 } else { 2.9 }, 0.6);
        let protein = normal.sample_lognormal(&mut rng, if dessert { 1.2 } else { 2.8 }, 0.7);

        row[1] = fat.min(150.0);
        row[2] = carbs.min(250.0);
        row[3] = protein.min(120.0);

        // Calories via Atwater factors + reporting noise.
        row[0] = (4.0 * row[2] + 4.0 * row[3] + 9.0 * row[1]
            + normal.sample(&mut rng, 0.0, 20.0))
        .max(1.0);

        // Sodium: savoury recipes are saltier.
        row[4] = normal
            .sample_lognormal(&mut rng, if dessert { 4.5 } else { 6.0 }, 0.8)
            .min(4000.0);

        // Cholesterol tracks animal fat in savoury dishes.
        row[5] = if dessert {
            normal.sample_lognormal(&mut rng, 2.0, 1.0).min(300.0)
        } else {
            (1.2 * row[1] + normal.sample_lognormal(&mut rng, 2.5, 0.8)).min(400.0)
        };

        // Calcium (% daily value).
        row[6] = normal.sample_lognormal(&mut rng, 2.0, 0.9).min(100.0);

        // Fiber follows carbohydrates (with noise), desserts have less.
        let fiber_scale = if dessert { 0.03 } else { 0.10 };
        row[7] = (fiber_scale * row[2] + normal.sample_lognormal(&mut rng, 0.0, 0.8)).min(40.0);

        ds.push(&row);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_spec() {
        let ds = recipes(1500, 1);
        assert_eq!(ds.len(), 1500);
        assert_eq!(ds.dims(), REC_DIMS);
    }

    #[test]
    fn all_attributes_nonnegative() {
        let ds = recipes(3000, 2);
        for p in ds.iter() {
            for (j, &v) in p.iter().enumerate() {
                assert!(v >= 0.0, "attr {j} negative: {v}");
            }
        }
    }

    #[test]
    fn calories_track_macronutrients() {
        let ds = recipes(5000, 3);
        // Pearson correlation between calories and the Atwater combination
        // must be very strong by construction.
        let xs: Vec<f64> = ds.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = ds
            .iter()
            .map(|p| 9.0 * p[1] + 4.0 * p[2] + 4.0 * p[3])
            .collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        assert!(cov / (vx.sqrt() * vy.sqrt()) > 0.95);
    }

    #[test]
    fn deterministic() {
        assert_eq!(recipes(400, 9), recipes(400, 9));
        assert_ne!(recipes(400, 9), recipes(400, 10));
    }
}
