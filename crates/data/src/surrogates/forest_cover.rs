//! Forest Cover (FC) surrogate.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::generators::NormalSampler;

/// Cardinality of the real Forest Cover data set (~581 K, the paper's
/// Table 4 lists "∼ 581K").
pub const FC_CARDINALITY: usize = 581_012;

/// Number of quantitative attributes generated (the UCI data set has 10);
/// the paper projects to 4, 5 and 7 of them.
pub const FC_DIMS: usize = 10;

/// Generates an FC-like data set with `n` rows and [`FC_DIMS`] attributes.
///
/// Attribute channels (in projection order, mirroring the UCI column
/// order of the quantitative attributes):
///
/// 0. elevation — bimodal mixture of normals (two mountain ranges),
/// 1. aspect — uniform on \[0, 360),
/// 2. slope — folded normal (most terrain is gentle),
/// 3. horizontal distance to hydrology — log-normal,
/// 4. vertical distance to hydrology — normal correlated with slope,
/// 5. horizontal distance to roadways — log-normal, correlated with
///    elevation (remote terrain is high terrain),
/// 6. hillshade 9 am — inversely coupled with aspect,
/// 7. hillshade noon — high, mildly coupled with slope,
/// 8. hillshade 3 pm — complement of hillshade 9 am,
/// 9. horizontal distance to fire points — log-normal, correlated with
///    distance to roadways.
///
/// A per-row latent factor (`terrain ruggedness`) couples elevation,
/// slope and the distance channels so that the data set exhibits the
/// moderately-correlated, clustered dominance structure of the real FC
/// data (small skylines relative to `n`, strongly overlapping Γ sets).
pub fn forest_cover(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0C0_51DE);
    let mut normal = NormalSampler::new();
    let mut ds = Dataset::with_capacity(FC_DIMS, n);
    let mut row = [0.0f64; FC_DIMS];
    for _ in 0..n {
        // Latent ruggedness factor in roughly [-1, 1].
        let rugged = normal.sample_clamped(&mut rng, 0.0, 0.5, -1.5, 1.5);

        // 0: elevation (m) — bimodal around 2500/3200; rugged terrain is
        // more likely to sit in the high range, coupling elevation with
        // slope through the latent factor.
        let range_hi = rng.gen_bool((0.4 + 0.3 * rugged).clamp(0.05, 0.95));
        let base = if range_hi { 3200.0 } else { 2500.0 };
        row[0] = normal.sample_clamped(&mut rng, base + 250.0 * rugged, 180.0, 1800.0, 3900.0);

        // 1: aspect (deg) — uniform.
        row[1] = rng.gen_range(0.0..360.0);

        // 2: slope (deg) — folded normal, steeper when rugged.
        row[2] = (normal.sample(&mut rng, 8.0 + 6.0 * rugged, 6.0)).abs().min(60.0);

        // 3: horiz. distance to hydrology (m) — log-normal.
        row[3] = normal.sample_lognormal(&mut rng, 5.2, 0.8).min(1400.0);

        // 4: vert. distance to hydrology (m) — follows slope.
        row[4] = normal.sample(&mut rng, 0.05 * row[3] + 2.0 * row[2], 25.0);

        // 5: horiz. distance to roadways (m) — remote when high.
        row[5] = normal
            .sample_lognormal(&mut rng, 7.0 + 0.4 * rugged, 0.6)
            .min(7000.0);

        // 6–8: hillshades (0–254) driven by aspect.
        let a = row[1].to_radians();
        row[6] = (220.0 - 60.0 * a.sin() + normal.sample(&mut rng, 0.0, 12.0)).clamp(0.0, 254.0);
        row[7] = (230.0 - 0.8 * row[2] + normal.sample(&mut rng, 0.0, 8.0)).clamp(0.0, 254.0);
        row[8] = (140.0 + 60.0 * a.sin() + normal.sample(&mut rng, 0.0, 12.0)).clamp(0.0, 254.0);

        // 9: horiz. distance to fire points — tracks roadway distance.
        row[9] = (0.6 * row[5] + normal.sample_lognormal(&mut rng, 6.0, 0.5)).min(7200.0);

        ds.push(&row);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_spec() {
        let ds = forest_cover(2000, 1);
        assert_eq!(ds.len(), 2000);
        assert_eq!(ds.dims(), FC_DIMS);
    }

    #[test]
    fn attribute_ranges_plausible() {
        let ds = forest_cover(3000, 2);
        for p in ds.iter() {
            assert!((1800.0..=3900.0).contains(&p[0]), "elevation {}", p[0]);
            assert!((0.0..360.0).contains(&p[1]), "aspect {}", p[1]);
            assert!((0.0..=60.0).contains(&p[2]), "slope {}", p[2]);
            assert!(p[3] >= 0.0 && p[5] >= 0.0 && p[9] >= 0.0);
            assert!((0.0..=254.0).contains(&p[6]));
            assert!((0.0..=254.0).contains(&p[7]));
            assert!((0.0..=254.0).contains(&p[8]));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(forest_cover(500, 7), forest_cover(500, 7));
        assert_ne!(forest_cover(500, 7), forest_cover(500, 8));
    }

    #[test]
    fn elevation_slope_positively_coupled() {
        // The latent ruggedness factor should induce a visible positive
        // correlation between elevation (0) and slope (2).
        let ds = forest_cover(8000, 3);
        let xs: Vec<f64> = ds.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = ds.iter().map(|p| p[2]).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let r = cov / (vx.sqrt() * vy.sqrt());
        assert!(r > 0.15, "elevation/slope correlation too weak: {r}");
    }
}
