//! Dataset persistence: CSV for interoperability and a compact
//! little-endian binary snapshot for fast reloads.
//!
//! The binary layout also serves as the *record format* assumed by the
//! paged-scan I/O cost model (`skydiver-rtree`): one point is `d` × 8
//! bytes, stored sequentially — "the data file is stored sequentially on
//! the disk" (paper §4.1.1).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;

/// Magic bytes of the binary snapshot format.
const MAGIC: &[u8; 8] = b"SKYDIVE1";

/// Writes a dataset as a binary snapshot (`SKYDIVE1` header, `u64` dims,
/// `u64` count, then row-major `f64` little-endian coordinates).
pub fn write_binary<P: AsRef<Path>>(ds: &Dataset, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(ds.dims() as u64).to_le_bytes())?;
    w.write_all(&(ds.len() as u64).to_le_bytes())?;
    for &v in ds.as_flat() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a binary snapshot written by [`write_binary`].
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SkyDiver binary snapshot",
        ));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let dims = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    if dims == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot declares zero dimensions",
        ));
    }
    let mut coords = Vec::with_capacity(n * dims);
    for _ in 0..n * dims {
        r.read_exact(&mut b8)?;
        coords.push(f64::from_le_bytes(b8));
    }
    Ok(Dataset::from_flat(dims, coords))
}

/// Writes a dataset as headerless CSV (one point per line).
pub fn write_csv<P: AsRef<Path>>(ds: &Dataset, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for p in ds.iter() {
        let mut first = true;
        for v in p {
            if !first {
                w.write_all(b",")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads a headerless CSV of floats. Dimensionality is inferred from the
/// first line; short/long/malformed lines are an error.
pub fn read_csv<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    let r = BufReader::new(File::open(path)?);
    let mut dims = 0usize;
    let mut coords = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut count = 0usize;
        for field in line.split(',') {
            let v: f64 = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad float {:?}: {e}", lineno + 1, field),
                )
            })?;
            coords.push(v);
            count += 1;
        }
        if dims == 0 {
            dims = count;
        } else if count != dims {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {dims} fields, found {count}",
                    lineno + 1
                ),
            ));
        }
    }
    if dims == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty CSV"));
    }
    Ok(Dataset::from_flat(dims, coords))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::independent;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skydiver-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn binary_round_trip() {
        let ds = independent(123, 4, 5);
        let path = tmp("bin");
        write_binary(&ds, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_round_trip() {
        let ds = independent(50, 3, 6);
        let path = tmp("csv");
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.dims(), ds.dims());
        for (a, b) in ds.iter().zip(back.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let path = tmp("ragged");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_rejects_bad_floats() {
        let path = tmp("badfloat");
        std::fs::write(&path, "1,banana\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
