//! Dataset persistence: CSV for interoperability and a compact
//! little-endian binary snapshot for fast reloads.
//!
//! The binary layout also serves as the *record format* assumed by the
//! paged-scan I/O cost model (`skydiver-rtree`): one point is `d` × 8
//! bytes, stored sequentially — "the data file is stored sequentially on
//! the disk" (paper §4.1.1).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;

/// Magic bytes of the binary snapshot format.
const MAGIC: &[u8; 8] = b"SKYDIVE1";

/// Writes a dataset as a binary snapshot (`SKYDIVE1` header, `u64` dims,
/// `u64` count, then row-major `f64` little-endian coordinates).
pub fn write_binary<P: AsRef<Path>>(ds: &Dataset, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(ds.dims() as u64).to_le_bytes())?;
    w.write_all(&(ds.len() as u64).to_le_bytes())?;
    for &v in ds.as_flat() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a binary snapshot written by [`write_binary`].
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SkyDiver binary snapshot",
        ));
    }
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let dims = u64::from_le_bytes(b8) as usize;
    r.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    if dims == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot declares zero dimensions",
        ));
    }
    let mut coords = Vec::with_capacity(n * dims);
    for _ in 0..n * dims {
        r.read_exact(&mut b8)?;
        coords.push(f64::from_le_bytes(b8));
    }
    Ok(Dataset::from_flat(dims, coords))
}

/// Writes a dataset as headerless CSV (one point per line).
pub fn write_csv<P: AsRef<Path>>(ds: &Dataset, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for p in ds.iter() {
        let mut first = true;
        for v in p {
            if !first {
                w.write_all(b",")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads a headerless CSV of floats. Dimensionality is inferred from the
/// first line; short/long/malformed lines are an error.
pub fn read_csv<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    read_csv_reader(BufReader::new(File::open(path)?))
}

/// Reads a headerless CSV of floats from any buffered reader.
///
/// Hardened against the usual edge cases:
/// * error messages carry **1-based** line numbers,
/// * a trailing newline (or any number of blank lines, anywhere) is
///   fine — blank lines are skipped, not parsed as empty records,
/// * an input with no data lines at all is a clean
///   [`io::ErrorKind::InvalidData`] error ("empty CSV"), never a
///   zero-dimension dataset,
/// * an I/O error from the underlying reader propagates unchanged
///   (see [`FailingReader`] for testing that path).
pub fn read_csv_reader<R: BufRead>(r: R) -> io::Result<Dataset> {
    let mut dims = 0usize;
    let mut coords = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut count = 0usize;
        for field in line.split(',') {
            let v: f64 = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad float {:?}: {e}", lineno + 1, field),
                )
            })?;
            coords.push(v);
            count += 1;
        }
        if dims == 0 {
            dims = count;
        } else if count != dims {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {dims} fields, found {count}",
                    lineno + 1
                ),
            ));
        }
    }
    if dims == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty CSV"));
    }
    Ok(Dataset::from_flat(dims, coords))
}

/// A reader shim that serves `limit` bytes from an underlying source and
/// then fails every read with [`io::ErrorKind::Other`] — a deterministic
/// stand-in for a disk that dies mid-file. Used by the resilience tests
/// to drive the reader-failure branch of [`read_csv_reader`].
#[derive(Debug)]
pub struct FailingReader<R> {
    inner: R,
    remaining: usize,
}

impl<R: Read> FailingReader<R> {
    /// Fails after `limit` bytes have been served.
    pub fn new(inner: R, limit: usize) -> Self {
        FailingReader {
            inner,
            remaining: limit,
        }
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            // Only fail if the source still has data: reaching the
            // limit exactly at EOF is a clean end, not a failure.
            let mut probe = [0u8; 1];
            return match self.inner.read(&mut probe)? {
                0 => Ok(0),
                _ => Err(io::Error::other("injected read failure")),
            };
        }
        let cap = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..cap])?;
        self.remaining -= n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::independent;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skydiver-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn binary_round_trip() {
        let ds = independent(123, 4, 5);
        let path = tmp("bin");
        write_binary(&ds, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_round_trip() {
        let ds = independent(50, 3, 6);
        let path = tmp("csv");
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.dims(), ds.dims());
        for (a, b) in ds.iter().zip(back.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a snapshot at all").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let path = tmp("ragged");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_rejects_bad_floats() {
        let path = tmp("badfloat");
        std::fs::write(&path, "1,banana\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_errors_use_one_based_line_numbers() {
        let e = read_csv_reader(&b"1,2\n3,oops\n"[..]).unwrap_err();
        assert!(e.to_string().contains("line 2"), "got: {e}");
        let e = read_csv_reader(&b"1,2\n3,4\n5,6,7\n"[..]).unwrap_err();
        assert!(e.to_string().contains("line 3"), "got: {e}");
    }

    #[test]
    fn csv_tolerates_trailing_newline_and_blank_lines() {
        // Trailing newline, a blank final line, and interior blanks all
        // parse to the same two points.
        for input in ["1,2\n3,4\n", "1,2\n3,4\n\n", "1,2\n\n3,4"] {
            let ds = read_csv_reader(input.as_bytes()).unwrap();
            assert_eq!(ds.len(), 2, "input {input:?}");
            assert_eq!(ds.dims(), 2);
        }
    }

    #[test]
    fn csv_empty_input_is_a_clean_error() {
        for input in ["", "\n", "\n  \n"] {
            let e = read_csv_reader(input.as_bytes()).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "input {input:?}");
            assert!(e.to_string().contains("empty CSV"));
        }
    }

    #[test]
    fn csv_propagates_reader_failures() {
        let data = b"1,2\n3,4\n5,6\n";
        let e = read_csv_reader(BufReader::new(FailingReader::new(&data[..], 5))).unwrap_err();
        assert_ne!(e.kind(), io::ErrorKind::InvalidData, "an I/O error, not a parse error");
        assert!(e.to_string().contains("injected read failure"));
        // With enough budget the same reader succeeds.
        let ds = read_csv_reader(BufReader::new(FailingReader::new(&data[..], data.len())))
            .unwrap();
        assert_eq!(ds.len(), 3);
    }
}
