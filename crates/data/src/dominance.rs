//! The dominance relation — the single concept SkyDiver's diversity
//! measure is built on.
//!
//! For numeric data (w.l.o.g. smaller-is-better), `p` *dominates* `q`
//! (written `p ≺ q`) when `p.xᵢ ≤ q.xᵢ` on every dimension and
//! `p.xⱼ < q.xⱼ` on at least one. The [`DominanceOrd`] trait generalises
//! this to categorical and partially-ordered domains, which the paper
//! explicitly targets ("our approach applies to categorical ones equally
//! well").

use crate::preference::Preference;

/// Outcome of comparing two items under a dominance order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dominance {
    /// The left item dominates the right one (`a ≺ b`).
    Dominates,
    /// The left item is dominated by the right one (`b ≺ a`).
    DominatedBy,
    /// The items are equal on every attribute.
    Equal,
    /// Neither item dominates the other.
    Incomparable,
}

/// A dominance order over items of type `Self::Item`.
///
/// Implementations must form a strict partial order: irreflexive
/// (`dom_cmp(a, a) == Equal`, never `Dominates`), asymmetric, and
/// transitive. The skyline and diversification algorithms rely on these
/// axioms; they are property-tested for the built-in implementations.
pub trait DominanceOrd {
    /// The item type compared by this order.
    type Item: ?Sized;

    /// Full three-way-plus-incomparable comparison.
    fn dom_cmp(&self, a: &Self::Item, b: &Self::Item) -> Dominance;

    /// `true` iff `a ≺ b`.
    #[inline]
    fn dominates(&self, a: &Self::Item, b: &Self::Item) -> bool {
        self.dom_cmp(a, b) == Dominance::Dominates
    }

    /// Hot-path specialisation hook: `true` when this order is
    /// *exactly* all-minimise dominance over `[f64]` slices, letting
    /// kernels substitute a packed, monomorphized dominance test with
    /// identical outcomes. Defaults to `false` (the generic path).
    #[inline]
    fn is_canonical_min(&self) -> bool {
        false
    }
}

/// Dominance over `[f64]` slices where every dimension is minimised.
///
/// This is the canonical order of the paper (§3.1). Use
/// [`MinMaxDominance`] when some attributes are maximised instead.
///
/// # Precondition: finite inputs
///
/// [`DominanceOrd::dom_cmp`] assumes every coordinate is finite. NaN
/// compares neither `<` nor `≥`, which silently breaks the strict
/// partial-order axioms (a NaN-carrying point ends up `Incomparable`
/// with everything, including itself in surprising ways), and ±∞ breaks
/// the R-tree MBR geometry. The pipeline enforces this once up front —
/// `skydiver_core::canonicalise` rejects non-finite coordinates with a
/// typed error — so the hot comparison loop carries no checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinDominance;

impl DominanceOrd for MinDominance {
    type Item = [f64];

    #[inline]
    fn is_canonical_min(&self) -> bool {
        true
    }

    fn dom_cmp(&self, a: &[f64], b: &[f64]) -> Dominance {
        debug_assert_eq!(a.len(), b.len(), "dimensionality mismatch");
        let mut a_better = false;
        let mut b_better = false;
        for (&x, &y) in a.iter().zip(b.iter()) {
            if x < y {
                a_better = true;
            } else if y < x {
                b_better = true;
            }
            if a_better && b_better {
                return Dominance::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            (false, false) => Dominance::Equal,
            // lint: allow(R1) -- the loop returns Incomparable as soon as
            // both flags are set, so this arm cannot be reached
            (true, true) => unreachable!("early return above"),
        }
    }
}

/// Dominance over `[f64]` slices with a per-dimension [`Preference`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinMaxDominance {
    prefs: Vec<Preference>,
}

impl MinMaxDominance {
    /// Builds an order from per-dimension preferences.
    pub fn new(prefs: Vec<Preference>) -> Self {
        Self { prefs }
    }

    /// An all-minimising order in `d` dimensions (equivalent to
    /// [`MinDominance`]).
    pub fn all_min(d: usize) -> Self {
        Self::new(Preference::all_min(d))
    }

    /// The per-dimension preferences of this order.
    pub fn preferences(&self) -> &[Preference] {
        &self.prefs
    }

    /// Dimensionality this order expects.
    pub fn dims(&self) -> usize {
        self.prefs.len()
    }
}

impl DominanceOrd for MinMaxDominance {
    type Item = [f64];

    #[inline]
    fn is_canonical_min(&self) -> bool {
        self.prefs.iter().all(|p| matches!(p, Preference::Min))
    }

    fn dom_cmp(&self, a: &[f64], b: &[f64]) -> Dominance {
        debug_assert_eq!(a.len(), self.prefs.len(), "dimensionality mismatch");
        debug_assert_eq!(b.len(), self.prefs.len(), "dimensionality mismatch");
        let mut a_better = false;
        let mut b_better = false;
        for ((&x, &y), &p) in a.iter().zip(b.iter()).zip(self.prefs.iter()) {
            if p.strictly_better(x, y) {
                a_better = true;
            } else if p.strictly_better(y, x) {
                b_better = true;
            }
            if a_better && b_better {
                return Dominance::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            _ => Dominance::Equal,
        }
    }
}

/// Convenience free function: `a ≺ b` under all-minimisation.
#[inline]
pub fn dominates_min(a: &[f64], b: &[f64]) -> bool {
    MinDominance.dominates(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        assert_eq!(
            MinDominance.dom_cmp(&[1.0, 1.0], &[2.0, 2.0]),
            Dominance::Dominates
        );
        assert_eq!(
            MinDominance.dom_cmp(&[2.0, 2.0], &[1.0, 1.0]),
            Dominance::DominatedBy
        );
    }

    #[test]
    fn weak_dominance_needs_one_strict() {
        // Equal on one dim, better on another → dominates.
        assert_eq!(
            MinDominance.dom_cmp(&[1.0, 2.0], &[1.0, 3.0]),
            Dominance::Dominates
        );
        // All equal → Equal, not Dominates (irreflexivity).
        assert_eq!(
            MinDominance.dom_cmp(&[1.0, 2.0], &[1.0, 2.0]),
            Dominance::Equal
        );
    }

    #[test]
    fn incomparable_points() {
        assert_eq!(
            MinDominance.dom_cmp(&[1.0, 3.0], &[3.0, 1.0]),
            Dominance::Incomparable
        );
    }

    #[test]
    fn min_max_mixed_prefs() {
        // dim0 minimised (price), dim1 maximised (quality).
        let ord = MinMaxDominance::new(vec![Preference::Min, Preference::Max]);
        // cheaper and better quality → dominates
        assert!(ord.dominates(&[10.0, 0.9], &[20.0, 0.5]));
        // cheaper but worse quality → incomparable
        assert_eq!(
            ord.dom_cmp(&[10.0, 0.4], &[20.0, 0.5]),
            Dominance::Incomparable
        );
        // identical → equal
        assert_eq!(ord.dom_cmp(&[10.0, 0.5], &[10.0, 0.5]), Dominance::Equal);
    }

    #[test]
    fn all_min_matches_min_dominance() {
        let ord = MinMaxDominance::all_min(3);
        let a = [1.0, 5.0, 2.0];
        let b = [2.0, 5.0, 2.0];
        assert_eq!(ord.dom_cmp(&a, &b), MinDominance.dom_cmp(&a, &b));
        assert_eq!(ord.dims(), 3);
    }

    #[test]
    fn dominates_min_free_fn() {
        assert!(dominates_min(&[0.0], &[1.0]));
        assert!(!dominates_min(&[1.0], &[1.0]));
    }

    #[test]
    fn canonical_min_hook() {
        assert!(MinDominance.is_canonical_min());
        assert!(MinMaxDominance::all_min(3).is_canonical_min());
        assert!(!MinMaxDominance::new(vec![Preference::Min, Preference::Max])
            .is_canonical_min());
    }
}
