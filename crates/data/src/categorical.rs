//! Categorical attributes and partially-ordered domains.
//!
//! One of SkyDiver's selling points over `Lp`-norm techniques is that it
//! only needs the dominance relation, so it works when attributes are
//! categorical or drawn from a partial order (paper §1, §2 "Skyline
//! Diversity" case ii/iii) — settings where a multidimensional index is
//! inapplicable. This module supplies such domains: each attribute is a
//! user-declared DAG of values ("better-than" edges) and dominance is
//! evaluated through its transitive closure.

use crate::dominance::{Dominance, DominanceOrd};

/// A partially-ordered attribute domain over values `0..num_values`.
///
/// Edges are declared with [`PartialOrderAttr::add_preference`]
/// (`better → worse`); [`PartialOrderAttr::close`] finalises the
/// transitive closure. Cycles are rejected at close time.
#[derive(Debug, Clone)]
pub struct PartialOrderAttr {
    num_values: usize,
    /// `reach[a]` holds the set of values strictly worse than `a`, as a
    /// bitset over value ids.
    reach: Vec<Vec<u64>>,
    edges: Vec<(u32, u32)>,
    closed: bool,
}

impl PartialOrderAttr {
    /// A domain with `num_values` values and no preferences yet
    /// (everything incomparable).
    pub fn new(num_values: usize) -> Self {
        let words = num_values.div_ceil(64);
        Self {
            num_values,
            reach: vec![vec![0u64; words]; num_values],
            edges: Vec::new(),
            closed: false,
        }
    }

    /// A totally ordered domain where value `0` is best and
    /// `num_values - 1` is worst (e.g. hotel star ratings reversed).
    pub fn total_order(num_values: usize) -> Self {
        let mut po = Self::new(num_values);
        for v in 1..num_values {
            po.add_preference((v - 1) as u32, v as u32);
        }
        // lint: allow(R1) -- the edges form the chain 0 -> 1 -> … -> n-1,
        // which is acyclic by construction
        po.close().expect("chains are acyclic")
    }

    /// Declares `better` strictly preferable to `worse`.
    ///
    /// # Panics
    /// Panics if either value id is out of range or the domain is already
    /// closed.
    pub fn add_preference(&mut self, better: u32, worse: u32) {
        assert!(!self.closed, "domain already closed");
        assert!(
            (better as usize) < self.num_values && (worse as usize) < self.num_values,
            "value id out of range"
        );
        self.edges.push((better, worse));
    }

    /// Computes the transitive closure and freezes the domain.
    ///
    /// Returns an error when the declared preferences contain a cycle
    /// (which would make the relation not a strict partial order).
    pub fn close(mut self) -> Result<Self, PartialOrderError> {
        // Direct edges into the reachability bitsets.
        for &(b, w) in &self.edges {
            set_bit(&mut self.reach[b as usize], w as usize);
        }
        // Iterate to fixpoint (small domains; simplicity over asymptotics).
        let words = self.num_values.div_ceil(64);
        let mut changed = true;
        while changed {
            changed = false;
            for a in 0..self.num_values {
                // reach[a] |= union of reach[w] for every w reachable from a.
                let mut acc = vec![0u64; words];
                for w in iter_bits(&self.reach[a], self.num_values) {
                    for (slot, &word) in acc.iter_mut().zip(&self.reach[w]) {
                        *slot |= word;
                    }
                }
                for (slot, &add) in self.reach[a].iter_mut().zip(&acc) {
                    let before = *slot;
                    *slot |= add;
                    if *slot != before {
                        changed = true;
                    }
                }
            }
        }
        // Cycle check: a value reaching itself means a preference cycle.
        for a in 0..self.num_values {
            if get_bit(&self.reach[a], a) {
                return Err(PartialOrderError::Cycle { value: a as u32 });
            }
        }
        self.closed = true;
        Ok(self)
    }

    /// Number of values in the domain.
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// `true` iff `a` is strictly better than `b`.
    ///
    /// # Panics
    /// Panics (debug) if the domain is not closed.
    #[inline]
    pub fn better(&self, a: u32, b: u32) -> bool {
        debug_assert!(self.closed, "call close() before comparisons");
        get_bit(&self.reach[a as usize], b as usize)
    }

    /// `true` iff `a` is at least as good as `b` (equal or better).
    #[inline]
    pub fn at_least_as_good(&self, a: u32, b: u32) -> bool {
        a == b || self.better(a, b)
    }
}

/// Errors from building a partially-ordered domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartialOrderError {
    /// The declared preferences contain a cycle through `value`.
    Cycle {
        /// A value id that participates in the cycle.
        value: u32,
    },
}

impl std::fmt::Display for PartialOrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartialOrderError::Cycle { value } => {
                write!(f, "preference cycle through value {value}")
            }
        }
    }
}

impl std::error::Error for PartialOrderError {}

/// Dominance over records of categorical values, one
/// [`PartialOrderAttr`] per attribute.
///
/// Records are `[u32]` slices of value ids, one per attribute.
#[derive(Debug, Clone)]
pub struct CategoricalDominance {
    attrs: Vec<PartialOrderAttr>,
}

impl CategoricalDominance {
    /// Builds the order from per-attribute domains.
    pub fn new(attrs: Vec<PartialOrderAttr>) -> Self {
        Self { attrs }
    }

    /// Number of attributes.
    pub fn dims(&self) -> usize {
        self.attrs.len()
    }

    /// The domain of attribute `j`.
    pub fn attr(&self, j: usize) -> &PartialOrderAttr {
        &self.attrs[j]
    }
}

impl DominanceOrd for CategoricalDominance {
    type Item = [u32];

    fn dom_cmp(&self, a: &[u32], b: &[u32]) -> Dominance {
        debug_assert_eq!(a.len(), self.attrs.len());
        debug_assert_eq!(b.len(), self.attrs.len());
        let mut a_better = false;
        let mut b_better = false;
        for (j, attr) in self.attrs.iter().enumerate() {
            let (x, y) = (a[j], b[j]);
            if x == y {
                continue;
            }
            let xb = attr.better(x, y);
            let yb = attr.better(y, x);
            if xb {
                a_better = true;
            } else if yb {
                b_better = true;
            } else {
                // Incomparable on one attribute ⇒ neither record can
                // dominate (it would need to be at-least-as-good on all).
                return Dominance::Incomparable;
            }
            if a_better && b_better {
                return Dominance::Incomparable;
            }
        }
        match (a_better, b_better) {
            (true, false) => Dominance::Dominates,
            (false, true) => Dominance::DominatedBy,
            _ => Dominance::Equal,
        }
    }
}

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] & (1u64 << (i % 64)) != 0
}

fn iter_bits(bits: &[u64], n: usize) -> impl Iterator<Item = usize> + '_ {
    (0..n).filter(move |&i| get_bit(bits, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond partial order: 0 best; 1, 2 incomparable; 3 worst.
    fn diamond() -> PartialOrderAttr {
        let mut po = PartialOrderAttr::new(4);
        po.add_preference(0, 1);
        po.add_preference(0, 2);
        po.add_preference(1, 3);
        po.add_preference(2, 3);
        po.close().unwrap()
    }

    #[test]
    fn transitive_closure_reaches_bottom() {
        let po = diamond();
        assert!(po.better(0, 3), "0 → 1 → 3 must be closed");
        assert!(po.better(0, 1));
        assert!(!po.better(1, 2));
        assert!(!po.better(2, 1));
        assert!(!po.better(3, 0));
    }

    #[test]
    fn at_least_as_good_includes_equality() {
        let po = diamond();
        assert!(po.at_least_as_good(1, 1));
        assert!(po.at_least_as_good(0, 3));
        assert!(!po.at_least_as_good(1, 2));
    }

    #[test]
    fn cycle_detected() {
        let mut po = PartialOrderAttr::new(3);
        po.add_preference(0, 1);
        po.add_preference(1, 2);
        po.add_preference(2, 0);
        assert!(matches!(po.close(), Err(PartialOrderError::Cycle { .. })));
    }

    #[test]
    fn total_order_behaves_like_integers() {
        let po = PartialOrderAttr::total_order(5);
        for a in 0..5u32 {
            for b in 0..5u32 {
                assert_eq!(po.better(a, b), a < b, "better({a},{b})");
            }
        }
    }

    #[test]
    fn categorical_dominance_two_attrs() {
        let ord = CategoricalDominance::new(vec![diamond(), PartialOrderAttr::total_order(3)]);
        assert_eq!(ord.dims(), 2);
        // Better on both attrs → dominates.
        assert_eq!(ord.dom_cmp(&[0, 0], &[3, 2]), Dominance::Dominates);
        // Equal on attr 1, better on attr 0 → dominates.
        assert_eq!(ord.dom_cmp(&[0, 1], &[1, 1]), Dominance::Dominates);
        // Incomparable on attr 0 (1 vs 2) → incomparable overall.
        assert_eq!(ord.dom_cmp(&[1, 0], &[2, 2]), Dominance::Incomparable);
        // Better on one attr each → incomparable.
        assert_eq!(ord.dom_cmp(&[0, 2], &[3, 0]), Dominance::Incomparable);
        // Identical records → equal.
        assert_eq!(ord.dom_cmp(&[1, 1], &[1, 1]), Dominance::Equal);
    }

    #[test]
    fn transitivity_of_categorical_dominance() {
        let ord = CategoricalDominance::new(vec![diamond()]);
        // 0 ≺ 1, 1 ≺ 3 ⇒ 0 ≺ 3 (records of one attribute).
        assert!(ord.dominates(&[0], &[1]));
        assert!(ord.dominates(&[1], &[3]));
        assert!(ord.dominates(&[0], &[3]));
    }

    #[test]
    #[should_panic(expected = "value id out of range")]
    fn out_of_range_rejected() {
        let mut po = PartialOrderAttr::new(2);
        po.add_preference(0, 5);
    }
}
