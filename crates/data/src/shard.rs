//! Immutable dataset shards and zero-copy row-range views.
//!
//! The fingerprinting algebra of the paper is mergeable: MinHash slots
//! combine by slot-wise minimum and domination scores `|Γ(p)|` by sum,
//! both associative and commutative over *any* partition of the data.
//! This module supplies the data-side half of that contract:
//!
//! * [`DatasetView`] — a borrowed, zero-copy window over a contiguous
//!   run of rows that remembers the **global** row id of its first row,
//!   so a pass over a shard hashes exactly the ids the monolithic pass
//!   would have hashed;
//! * [`ShardedDataset`] — an ordered list of immutable [`Dataset`]
//!   shards with cumulative global-id bases. Concatenating the shards
//!   in order reproduces the unsharded dataset row for row.
//!
//! Shards are held behind [`Arc`] so that appending a shard to a
//! registry entry can reuse the existing shards without copying them.

use std::sync::Arc;

use crate::dataset::Dataset;

/// A zero-copy view of a contiguous row range, tagged with the global
/// id of its first row.
///
/// Skyline, Γ-set and SigGen entry points accept `impl Into<DatasetView>`,
/// so passing a `&Dataset` keeps working unchanged (the view then spans
/// the whole dataset with base 0). Row *hashing* uses
/// [`global_id`](DatasetView::global_id) = `base + local`, which is what
/// makes per-shard MinHash passes bit-compatible with a monolithic pass;
/// all *returned indices* stay local to the view.
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'a> {
    dims: usize,
    coords: &'a [f64],
    base: usize,
}

impl<'a> DatasetView<'a> {
    /// Views `ds` in full, with global ids starting at `base`.
    pub fn with_base(ds: &'a Dataset, base: usize) -> Self {
        Self {
            dims: ds.dims(),
            coords: ds.as_flat(),
            base,
        }
    }

    /// Restricts the view to local rows `lo..hi`; the global ids of the
    /// surviving rows are unchanged (the new base is `base + lo`).
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > self.len()`.
    pub fn slice(&self, lo: usize, hi: usize) -> DatasetView<'a> {
        assert!(lo <= hi && hi <= self.len(), "invalid slice {lo}..{hi}");
        DatasetView {
            dims: self.dims,
            coords: &self.coords[lo * self.dims..hi * self.dims],
            base: self.base + lo,
        }
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of rows in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// `true` when the view spans no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Global id of the first row.
    #[inline]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Global id of local row `i`.
    #[inline]
    pub fn global_id(&self, i: usize) -> usize {
        self.base + i
    }

    /// Borrows local row `i` as a slice of length `d`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &'a [f64] {
        let s = i * self.dims;
        &self.coords[s..s + self.dims]
    }

    /// Iterates over the rows of the view in local order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &'a [f64]> + '_ {
        self.coords.chunks_exact(self.dims)
    }

    /// The raw row-major coordinate buffer of the view.
    #[inline]
    pub fn as_flat(&self) -> &'a [f64] {
        self.coords
    }
}

impl<'a> From<&'a Dataset> for DatasetView<'a> {
    fn from(ds: &'a Dataset) -> Self {
        DatasetView::with_base(ds, 0)
    }
}

impl Dataset {
    /// A zero-copy view of the whole dataset with global-id base 0.
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::with_base(self, 0)
    }
}

/// An ordered list of immutable [`Dataset`] shards forming one logical
/// dataset.
///
/// Shard `i` covers the global row ids `base(i) .. base(i) + shard(i).len()`,
/// with bases cumulative in shard order, so [`concat`](ShardedDataset::concat)
/// reproduces the unsharded dataset row for row. Shards are reference
/// counted: [`push_shard`](ShardedDataset::push_shard) on a clone shares
/// the existing shards instead of copying them, which is what makes
/// `APPEND` in the serve layer cheap.
#[derive(Debug, Clone)]
pub struct ShardedDataset {
    dims: usize,
    shards: Vec<Arc<Dataset>>,
    bases: Vec<usize>,
    len: usize,
}

impl ShardedDataset {
    /// Creates an empty sharded dataset of dimensionality `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        Self {
            dims,
            shards: Vec::new(),
            bases: Vec::new(),
            len: 0,
        }
    }

    /// Wraps a single dataset as a one-shard sharded dataset.
    pub fn from_dataset(ds: Dataset) -> Self {
        let mut s = Self::new(ds.dims());
        s.push_shard(ds);
        s
    }

    /// Builds a sharded dataset from shards in order.
    ///
    /// # Panics
    /// Panics if `shards` is empty or the shards disagree on
    /// dimensionality.
    pub fn from_shards(shards: Vec<Dataset>) -> Self {
        assert!(!shards.is_empty(), "from_shards needs at least one shard");
        let mut s = Self::new(shards[0].dims());
        for sh in shards {
            s.push_shard(sh);
        }
        s
    }

    /// Splits `ds` into `n` contiguous, near-equal shards (the first
    /// `len % n` shards get one extra row). Row order — and therefore
    /// every global id — is preserved.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn partition(ds: &Dataset, n: usize) -> Self {
        assert!(n > 0, "shard count must be positive");
        let total = ds.len();
        let n = n.min(total.max(1));
        let base_sz = total / n;
        let extra = total % n;
        let mut out = Self::new(ds.dims());
        let mut row = 0usize;
        for i in 0..n {
            let sz = base_sz + usize::from(i < extra);
            let mut shard = Dataset::with_capacity(ds.dims(), sz);
            for r in row..row + sz {
                shard.push(ds.point(r));
            }
            out.push_shard(shard);
            row += sz;
        }
        out
    }

    /// Appends a shard at the end (global ids continue where the last
    /// shard stopped).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn push_shard(&mut self, ds: Dataset) {
        self.push_shard_arc(Arc::new(ds));
    }

    /// Appends an already shared shard without copying it.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn push_shard_arc(&mut self, ds: Arc<Dataset>) {
        assert_eq!(ds.dims(), self.dims, "shard dimensionality mismatch");
        self.bases.push(self.len);
        self.len += ds.len();
        self.shards.push(ds);
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total number of rows across all shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no shard holds any row.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrows shard `i`.
    #[inline]
    pub fn shard(&self, i: usize) -> &Dataset {
        &self.shards[i]
    }

    /// The shared handle of shard `i` (for zero-copy reuse).
    #[inline]
    pub fn shard_arc(&self, i: usize) -> &Arc<Dataset> {
        &self.shards[i]
    }

    /// Global id of the first row of shard `i`.
    #[inline]
    pub fn base(&self, i: usize) -> usize {
        self.bases[i]
    }

    /// A [`DatasetView`] of shard `i` with its global-id base.
    pub fn shard_view(&self, i: usize) -> DatasetView<'_> {
        DatasetView::with_base(&self.shards[i], self.bases[i])
    }

    /// Views of all shards in order.
    pub fn views(&self) -> Vec<DatasetView<'_>> {
        (0..self.shards.len()).map(|i| self.shard_view(i)).collect()
    }

    /// Global-id half-open range `[lo, hi)` covered by shard `i` — the
    /// ownership unit routed to cluster workers.
    #[inline]
    pub fn shard_range(&self, i: usize) -> (usize, usize) {
        let lo = self.bases[i];
        (lo, lo + self.shards[i].len())
    }

    /// Global-id ranges of all shards in order; `ranges[i]` is
    /// [`shard_range`](Self::shard_range)`(i)`.
    pub fn shard_ranges(&self) -> Vec<(usize, usize)> {
        (0..self.shards.len())
            .map(|i| self.shard_range(i))
            .collect()
    }

    /// Borrows the row with global id `g`.
    ///
    /// # Panics
    /// Panics if `g >= self.len()`.
    pub fn point(&self, g: usize) -> &[f64] {
        assert!(g < self.len, "global id {g} out of range {}", self.len);
        // bases is sorted; find the last base <= g.
        let i = match self.bases.binary_search(&g) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.shards[i].point(g - self.bases[i])
    }

    /// Materialises the shards, in order, as one contiguous [`Dataset`]
    /// (global id `g` becomes row `g`).
    pub fn concat(&self) -> Dataset {
        let mut out = Dataset::with_capacity(self.dims, self.len);
        for sh in &self.shards {
            for p in sh.iter() {
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_dataset(n: usize, dims: usize) -> Dataset {
        let mut ds = Dataset::with_capacity(dims, n);
        for i in 0..n {
            let row: Vec<f64> = (0..dims).map(|j| (i * dims + j) as f64).collect();
            ds.push(&row);
        }
        ds
    }

    #[test]
    fn view_of_dataset_spans_everything_at_base_zero() {
        let ds = seq_dataset(5, 3);
        let v: DatasetView = (&ds).into();
        assert_eq!(v.len(), 5);
        assert_eq!(v.dims(), 3);
        assert_eq!(v.base(), 0);
        assert_eq!(v.global_id(4), 4);
        assert_eq!(v.point(2), ds.point(2));
        assert_eq!(v.as_flat(), ds.as_flat());
        assert_eq!(v.iter().count(), 5);
    }

    #[test]
    fn slicing_preserves_global_ids() {
        let ds = seq_dataset(10, 2);
        let v = ds.view().slice(3, 7);
        assert_eq!(v.len(), 4);
        assert_eq!(v.base(), 3);
        assert_eq!(v.global_id(0), 3);
        assert_eq!(v.point(0), ds.point(3));
        let w = v.slice(1, 3);
        assert_eq!(w.base(), 4);
        assert_eq!(w.point(1), ds.point(5));
        assert!(w.slice(0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid slice")]
    fn slice_out_of_range_panics() {
        let ds = seq_dataset(4, 2);
        let _ = ds.view().slice(2, 5);
    }

    #[test]
    fn partition_round_trips_through_concat() {
        let ds = seq_dataset(11, 3);
        for n in 1..=8 {
            let sh = ShardedDataset::partition(&ds, n);
            assert_eq!(sh.num_shards(), n.min(11));
            assert_eq!(sh.len(), 11);
            assert_eq!(sh.concat(), ds, "partition into {n} lost rows");
            // Bases are cumulative and the shard views agree with the
            // monolithic rows at their global ids.
            for i in 0..sh.num_shards() {
                let v = sh.shard_view(i);
                assert_eq!(v.base(), sh.base(i));
                for r in 0..v.len() {
                    assert_eq!(v.point(r), ds.point(v.global_id(r)));
                }
            }
        }
    }

    #[test]
    fn partition_clamps_shard_count_to_rows() {
        let ds = seq_dataset(3, 2);
        let sh = ShardedDataset::partition(&ds, 8);
        assert_eq!(sh.num_shards(), 3);
        assert_eq!(sh.concat(), ds);
    }

    #[test]
    fn global_point_lookup_crosses_shards() {
        let ds = seq_dataset(9, 2);
        let sh = ShardedDataset::partition(&ds, 4);
        for g in 0..9 {
            assert_eq!(sh.point(g), ds.point(g));
        }
    }

    #[test]
    fn push_shard_arc_shares_data() {
        let a = Arc::new(seq_dataset(4, 2));
        let mut sh = ShardedDataset::new(2);
        sh.push_shard_arc(Arc::clone(&a));
        let mut grown = sh.clone();
        grown.push_shard(seq_dataset(2, 2));
        assert_eq!(sh.num_shards(), 1);
        assert_eq!(grown.num_shards(), 2);
        assert_eq!(grown.len(), 6);
        assert_eq!(grown.base(1), 4);
        // The first shard is shared, not copied.
        assert!(Arc::ptr_eq(sh.shard_arc(0), grown.shard_arc(0)));
    }

    #[test]
    #[should_panic(expected = "shard dimensionality mismatch")]
    fn mismatched_dims_panic() {
        let mut sh = ShardedDataset::new(2);
        sh.push_shard(seq_dataset(2, 3));
    }
}
