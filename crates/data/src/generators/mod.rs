//! Synthetic workload generators.
//!
//! The paper evaluates on independent (`IND`) and anticorrelated (`ANT`)
//! data "using the methodology presented in \[4\]" (Börzsönyi et al., *The
//! Skyline Operator*). This module reproduces those generators plus the
//! correlated and clustered distributions commonly used in the skyline
//! literature, all deterministically seeded.

mod rng;
mod synthetic;

pub use rng::NormalSampler;
pub use synthetic::{anticorrelated, clustered, correlated, independent};
