//! Minimal distribution samplers on top of `rand`.
//!
//! `rand_distr` is not part of the approved offline dependency set, so the
//! Gaussian sampler (Box–Muller) lives here. It is more than adequate for
//! workload generation.

use rand::Rng;

/// Box–Muller Gaussian sampler with a one-value cache.
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one `N(mean, sd²)` variate.
    pub fn sample<R: Rng>(&mut self, rng: &mut R, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard(rng)
    }

    /// Draws one standard normal variate.
    pub fn standard<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms → two independent standard normals.
        let u1: f64 = loop {
            let u = rng.gen::<f64>();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws an `N(mean, sd²)` variate clamped to `[lo, hi]`.
    pub fn sample_clamped<R: Rng>(
        &mut self,
        rng: &mut R,
        mean: f64,
        sd: f64,
        lo: f64,
        hi: f64,
    ) -> f64 {
        self.sample(rng, mean, sd).clamp(lo, hi)
    }

    /// Draws one log-normal variate with the given parameters of the
    /// underlying normal.
    pub fn sample_lognormal<R: Rng>(&mut self, rng: &mut R, mu: f64, sigma: f64) -> f64 {
        self.sample(rng, mu, sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ns = NormalSampler::new();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| ns.standard(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn clamped_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ns = NormalSampler::new();
        for _ in 0..1000 {
            let v = ns.sample_clamped(&mut rng, 0.5, 10.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ns = NormalSampler::new();
        for _ in 0..1000 {
            assert!(ns.sample_lognormal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let draw = || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut ns = NormalSampler::new();
            (0..10).map(|_| ns.standard(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
