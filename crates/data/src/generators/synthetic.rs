//! The IND / ANT / COR / clustered distributions of the skyline
//! literature, in `[0, 1]^d`.

use rand::{rngs::StdRng, Rng, SeedableRng};

use super::rng::NormalSampler;
use crate::dataset::Dataset;

/// Independent (`IND`): every attribute i.i.d. uniform on `[0, 1]`.
///
/// Expected skyline cardinality is `O((ln n)^{d-1})`.
pub fn independent(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(d > 0, "dimensionality must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coords = Vec::with_capacity(n * d);
    for _ in 0..n * d {
        coords.push(rng.gen::<f64>());
    }
    Dataset::from_flat(d, coords)
}

/// Anticorrelated (`ANT`): points concentrated around the hyperplane
/// `Σᵢ xᵢ ≈ c`, so a point that is good in one dimension tends to be bad
/// in the others. Produces the largest skylines of the three classic
/// distributions.
///
/// Following the Börzsönyi et al. methodology, each point's coordinate
/// *sum* is drawn from a clamped normal and then split across the `d`
/// dimensions with uniform proportions.
pub fn anticorrelated(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(d > 0, "dimensionality must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    let mut coords = Vec::with_capacity(n * d);
    let mut parts = vec![0.0f64; d];
    for _ in 0..n {
        // Sum of coordinates for this point, tightly concentrated.
        let total = normal.sample_clamped(&mut rng, 0.5, 0.05, 0.0, 1.0) * d as f64;
        // Split `total` across dimensions with uniform proportions.
        let mut s = 0.0;
        for p in parts.iter_mut() {
            *p = rng.gen::<f64>() + 1e-9;
            s += *p;
        }
        for p in parts.iter_mut() {
            // Clamp guards the (rare) case where one share exceeds 1.
            coords.push((*p / s * total).clamp(0.0, 1.0));
        }
    }
    Dataset::from_flat(d, coords)
}

/// Correlated (`COR`): attributes move together — a point good in one
/// dimension is likely good in all. Produces the smallest skylines.
pub fn correlated(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(d > 0, "dimensionality must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    let mut coords = Vec::with_capacity(n * d);
    for _ in 0..n {
        let base: f64 = rng.gen();
        for _ in 0..d {
            coords.push(normal.sample_clamped(&mut rng, base, 0.05, 0.0, 1.0));
        }
    }
    Dataset::from_flat(d, coords)
}

/// Clustered: `clusters` Gaussian blobs with centres uniform in
/// `[0.1, 0.9]^d` and the given `spread` (standard deviation).
///
/// Used to exercise R-tree locality: nearby points are dominated by the
/// same skyline subsets, which is exactly what `SigGen-IB` exploits.
pub fn clustered(n: usize, d: usize, clusters: usize, spread: f64, seed: u64) -> Dataset {
    assert!(d > 0, "dimensionality must be positive");
    assert!(clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    let centres: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..d).map(|_| rng.gen_range(0.1..0.9)).collect())
        .collect();
    let mut coords = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = &centres[i % clusters];
        for &cj in c.iter() {
            coords.push(normal.sample_clamped(&mut rng, cj, spread, 0.0, 1.0));
        }
    }
    Dataset::from_flat(d, coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        cov / (vx.sqrt() * vy.sqrt())
    }

    fn column(ds: &Dataset, j: usize) -> Vec<f64> {
        ds.iter().map(|p| p[j]).collect()
    }

    #[test]
    fn independent_shape_and_range() {
        let ds = independent(5000, 3, 1);
        assert_eq!(ds.len(), 5000);
        assert_eq!(ds.dims(), 3);
        assert!(ds.iter().all(|p| p.iter().all(|&v| (0.0..=1.0).contains(&v))));
        let r = pearson(&column(&ds, 0), &column(&ds, 1));
        assert!(r.abs() < 0.05, "IND correlation {r}");
    }

    #[test]
    fn anticorrelated_has_negative_correlation() {
        let ds = anticorrelated(5000, 2, 2);
        let r = pearson(&column(&ds, 0), &column(&ds, 1));
        assert!(r < -0.5, "ANT correlation {r} not negative enough");
        assert!(ds.iter().all(|p| p.iter().all(|&v| (0.0..=1.0).contains(&v))));
    }

    #[test]
    fn correlated_has_positive_correlation() {
        let ds = correlated(5000, 2, 3);
        let r = pearson(&column(&ds, 0), &column(&ds, 1));
        assert!(r > 0.8, "COR correlation {r} not positive enough");
    }

    #[test]
    fn clustered_points_near_centres() {
        let ds = clustered(1000, 2, 4, 0.02, 4);
        assert_eq!(ds.len(), 1000);
        // With tiny spread, the overall variance is dominated by the
        // 4 centres; just sanity-check range and determinism.
        let ds2 = clustered(1000, 2, 4, 0.02, 4);
        assert_eq!(ds, ds2);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(independent(100, 3, 9), independent(100, 3, 9));
        assert_eq!(anticorrelated(100, 3, 9), anticorrelated(100, 3, 9));
        assert_eq!(correlated(100, 3, 9), correlated(100, 3, 9));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(independent(100, 2, 1), independent(100, 2, 2));
    }

    #[test]
    #[should_panic(expected = "dimensionality must be positive")]
    fn zero_dims_rejected() {
        let _ = independent(10, 0, 0);
    }
}
