//! Per-attribute optimisation preferences.

/// Direction in which an attribute is preferred.
///
/// Skylines perform multi-objective optimisation where the only user input
/// is whether each attribute should be minimised (e.g. *price*) or
/// maximised (e.g. *quality*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preference {
    /// Smaller values are better.
    Min,
    /// Larger values are better.
    Max,
}

impl Preference {
    /// Returns `true` when `a` is *at least as good as* `b` under this
    /// preference (i.e. `a ≤ b` for [`Preference::Min`], `a ≥ b` for
    /// [`Preference::Max`]).
    #[inline]
    pub fn at_least_as_good(self, a: f64, b: f64) -> bool {
        match self {
            Preference::Min => a <= b,
            Preference::Max => a >= b,
        }
    }

    /// Returns `true` when `a` is *strictly better than* `b`.
    #[inline]
    pub fn strictly_better(self, a: f64, b: f64) -> bool {
        match self {
            Preference::Min => a < b,
            Preference::Max => a > b,
        }
    }

    /// Maps a raw value into "minimisation space": values compare with `<`
    /// meaning "better". Used to canonicalise data so downstream code can
    /// assume smaller-is-better, as the paper does w.l.o.g.
    #[inline]
    pub fn canonicalise(self, v: f64) -> f64 {
        match self {
            Preference::Min => v,
            Preference::Max => -v,
        }
    }

    /// `d` copies of [`Preference::Min`] — the paper's default convention.
    pub fn all_min(d: usize) -> Vec<Preference> {
        vec![Preference::Min; d]
    }

    /// `d` copies of [`Preference::Max`].
    pub fn all_max(d: usize) -> Vec<Preference> {
        vec![Preference::Max; d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_prefers_smaller() {
        assert!(Preference::Min.at_least_as_good(1.0, 2.0));
        assert!(Preference::Min.at_least_as_good(2.0, 2.0));
        assert!(!Preference::Min.at_least_as_good(3.0, 2.0));
        assert!(Preference::Min.strictly_better(1.0, 2.0));
        assert!(!Preference::Min.strictly_better(2.0, 2.0));
    }

    #[test]
    fn max_prefers_larger() {
        assert!(Preference::Max.at_least_as_good(3.0, 2.0));
        assert!(Preference::Max.at_least_as_good(2.0, 2.0));
        assert!(!Preference::Max.at_least_as_good(1.0, 2.0));
        assert!(Preference::Max.strictly_better(3.0, 2.0));
        assert!(!Preference::Max.strictly_better(2.0, 2.0));
    }

    #[test]
    fn canonicalise_flips_max() {
        assert_eq!(Preference::Min.canonicalise(5.0), 5.0);
        assert_eq!(Preference::Max.canonicalise(5.0), -5.0);
    }

    #[test]
    fn all_min_all_max() {
        assert_eq!(Preference::all_min(3), vec![Preference::Min; 3]);
        assert_eq!(Preference::all_max(2), vec![Preference::Max; 2]);
    }
}
