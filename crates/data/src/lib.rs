//! Data substrate for the SkyDiver skyline-diversification framework.
//!
//! This crate owns everything about the *input* side of the problem:
//!
//! * [`Dataset`] — a flat, cache-friendly store of `d`-dimensional points,
//! * [`dominance`] — the dominance relation (`p ≺ q`) for numeric data with
//!   per-attribute min/max [`Preference`]s, plus a generic [`DominanceOrd`]
//!   trait so skylines and diversification also work over categorical and
//!   partially-ordered domains,
//! * [`generators`] — the synthetic workloads of the paper (independent,
//!   anticorrelated, correlated, clustered),
//! * [`surrogates`] — synthetic stand-ins for the paper's real-life data
//!   sets (Forest Cover, Recipes) with matching cardinalities and
//!   correlation structure,
//! * [`io`] — CSV and binary snapshots of datasets,
//! * [`shard`] — immutable dataset shards with global row-id bases and
//!   the zero-copy [`DatasetView`] consumed by skyline, Γ and SigGen
//!   entry points.
//!
//! The crate is deliberately free of any skyline or diversification logic;
//! those live in `skydiver-skyline` and `skydiver-core`.

#![warn(missing_docs)]

pub mod categorical;
pub mod dataset;
pub mod dominance;
pub mod generators;
pub mod io;
pub mod preference;
pub mod shard;
pub mod surrogates;

pub use dataset::Dataset;
pub use dominance::{Dominance, DominanceOrd, MinMaxDominance};
pub use preference::Preference;
pub use shard::{DatasetView, ShardedDataset};
