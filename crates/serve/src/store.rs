//! The crash-safe on-disk signature store.
//!
//! The registry's in-memory fingerprint cache dies with the process;
//! this module makes the expensive artefacts durable so restarts are
//! warm. One `SKYSIG02` file per shard fold, keyed by `(dataset
//! content hash, shard id, preference hash, t, seed)` — the key *is*
//! the file name and is also written into the bundle header, so a
//! renamed, stale or foreign file can never be served under the wrong
//! coordinates.
//!
//! **Atomic writes.** Every artefact is written to a `.tmp` sibling,
//! fsynced, renamed over the final name, and the directory fsynced —
//! so a crash leaves either the old state or the new state, plus at
//! worst an orphan temp file. The bundle's length + checksum footer
//! (see [`skydiver_core::minhash::persist`]) catches the remaining
//! torn-write window (rename durable, data pages lost).
//!
//! **Write-behind.** Persistence runs on one dedicated worker thread
//! fed by a channel, never on the query path, and only *complete*
//! fingerprints are enqueued — mirroring the in-memory cache's
//! complete-only rule. The worker owns all store I/O, so no lock is
//! ever held across a disk operation.
//!
//! **Recovery sweep.** [`SignatureStore::open`] (and the `RESTORE`
//! verb) validates every artefact: corrupt, truncated, mis-keyed or
//! bit-rotted files are moved to a `quarantine/` subdirectory with a
//! logged reason and counted in `store_quarantined`; orphan temp files
//! are deleted. The store never refuses to serve — a missing or
//! unreadable artefact is a cache miss that degrades to recompute.
//!
//! **Fault injection.** [`FaultPlan`] arms a deterministic disk fault
//! (torn write, short read, bit flip, ENOSPC, rename failure) at the
//! n-th write; the property suite in `tests/store.rs` drives every
//! fault and asserts the store serves either a bit-identical
//! fingerprint or a clean cold recompute — never a wrong answer.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use skydiver_core::minhash::persist;
use skydiver_core::ShardFingerprint;
use skydiver_data::ShardedDataset;

use crate::metrics::Metrics;

const QUARANTINE: &str = "quarantine";

/// The durable coordinates of one shard fold. The dataset is named by
/// its *content hash* (not its registry name), so re-`LOAD`ing
/// different data under the same name — or the same data under a
/// different name — can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// [`content_hash`] of the whole sharded dataset (partition
    /// included — a shard fold is only valid for its exact shard map).
    pub dataset_hash: u64,
    /// Shard index within that dataset.
    pub shard: usize,
    /// [`prefs_hash`] of the canonical preference key.
    pub prefs_hash: u64,
    /// Signature size.
    pub t: usize,
    /// Hash-family seed.
    pub seed: u64,
}

impl StoreKey {
    /// The four header tags bound into the `SKYSIG02` bundle (`t` is
    /// carried by the matrix shape itself).
    pub fn tags(&self) -> [u64; 4] {
        [self.dataset_hash, self.shard as u64, self.prefs_hash, self.seed]
    }

    /// The artefact's file name — the key, spelled out.
    pub fn file_name(&self) -> String {
        format!(
            "sig-{:016x}-s{}-p{:016x}-t{}-r{}.sig2",
            self.dataset_hash, self.shard, self.prefs_hash, self.t, self.seed
        )
    }
}

/// FNV-1a 64 content hash of a sharded dataset: dimensionality, shard
/// boundaries and every coordinate bit. Partition-sensitive by design —
/// a shard fold describes "rows `base..base+len` of *this* layout".
pub fn content_hash(data: &ShardedDataset) -> u64 {
    let mut h = persist::Fnv64::new();
    h.update(&(data.dims() as u64).to_le_bytes());
    h.update(&(data.num_shards() as u64).to_le_bytes());
    for i in 0..data.num_shards() {
        // lint: allow(R2) -- one bounded pass over resident data at
        // LOAD/APPEND time, off the query path; no dominance work
        let shard = data.shard(i);
        h.update(&(shard.len() as u64).to_le_bytes());
        for &v in shard.as_flat() {
            h.update(&v.to_bits().to_le_bytes());
        }
    }
    h.finish()
}

/// FNV-1a 64 of the canonical preference key (`"min,max,..."`).
pub fn prefs_hash(prefs_key: &str) -> u64 {
    persist::fnv1a64(prefs_key.as_bytes())
}

/// One deterministic disk fault, for the durability property suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Only the first `keep` bytes of the bundle reach the temp file,
    /// but the rename still lands — models a power cut that made the
    /// rename durable while data pages were still in the page cache.
    TornWrite {
        /// Bytes that survive.
        keep: usize,
    },
    /// The artefact is truncated to `keep` bytes *after* a successful
    /// write — a later load sees a short read.
    ShortRead {
        /// Bytes that survive.
        keep: usize,
    },
    /// One bit of the at-rest artefact flips (index taken modulo the
    /// file length) — silent media corruption.
    BitFlip {
        /// Byte whose lowest bit flips.
        byte: usize,
    },
    /// The write fails half-way with an out-of-space error.
    Enospc,
    /// The temp file is written and fsynced but the rename fails.
    RenameFail,
}

/// Arms `fault` at the `at_write`-th persistence attempt (1-based).
/// The write-behind worker is a single thread draining an ordered
/// queue, so "the n-th write" is deterministic for a fixed request
/// sequence.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// 1-based index of the write the fault strikes.
    pub at_write: u64,
    /// The fault to inject.
    pub fault: DiskFault,
}

/// What a recovery sweep found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Artefacts that decoded and matched their file name.
    pub valid: usize,
    /// Artefacts moved to `quarantine/` (corrupt or mis-keyed).
    pub quarantined: usize,
    /// Orphan `.tmp` files deleted (interrupted writes).
    pub removed_temps: usize,
}

enum Job {
    Persist { key: StoreKey, fp: Arc<ShardFingerprint> },
    Flush(mpsc::Sender<u64>),
}

/// The durable signature store: a directory of `SKYSIG02` artefacts
/// plus one write-behind worker thread.
pub struct SignatureStore {
    dir: PathBuf,
    metrics: Arc<Metrics>,
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    persisted_total: Arc<AtomicU64>,
}

impl SignatureStore {
    /// Opens (creating if needed) the store at `dir`: runs the recovery
    /// sweep, then starts the write-behind worker. `faults` arms the
    /// deterministic fault injector — pass `&[]` in production.
    pub fn open(
        dir: impl Into<PathBuf>,
        metrics: Arc<Metrics>,
        faults: &[FaultPlan],
    ) -> io::Result<(SignatureStore, SweepReport)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        fs::create_dir_all(dir.join(QUARANTINE))?;
        let report = sweep_dir(&dir, &metrics)?;
        let (tx, rx) = mpsc::channel::<Job>();
        let persisted_total = Arc::new(AtomicU64::new(0));
        let worker = spawn_writer(
            dir.clone(),
            Arc::clone(&metrics),
            faults.to_vec(),
            Arc::clone(&persisted_total),
            rx,
        )?;
        Ok((
            SignatureStore {
                dir,
                metrics,
                tx: Mutex::new(Some(tx)),
                worker: Mutex::new(Some(worker)),
                persisted_total,
            },
            report,
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Artefacts persisted by the worker since open.
    pub fn persisted(&self) -> u64 {
        self.persisted_total.load(Ordering::Relaxed)
    }

    /// Loads one shard fold, verifying checksum and key binding. A
    /// missing file is a plain miss; a corrupt or mis-keyed file is
    /// quarantined (never served) and reported as a miss — the caller
    /// falls back to recompute.
    pub fn load(&self, key: &StoreKey) -> Option<Arc<ShardFingerprint>> {
        let path = self.dir.join(key.file_name());
        match persist::read_shard_signatures(&path) {
            Ok((fp, tags)) => {
                if tags == key.tags() && fp.t() == key.t {
                    self.metrics.bump(&self.metrics.store_hits);
                    Some(Arc::new(fp))
                } else {
                    quarantine_file(&self.dir, &path, "header tags do not match the requested key", &self.metrics);
                    None
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => {
                quarantine_file(&self.dir, &path, &e.to_string(), &self.metrics);
                None
            }
        }
    }

    /// Queues one complete shard fold for write-behind persistence.
    /// Never blocks on disk; a closed store drops the request.
    pub fn enqueue_persist(&self, key: StoreKey, fp: Arc<ShardFingerprint>) {
        let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tx) = tx.as_ref() {
            let _ = tx.send(Job::Persist { key, fp });
        }
    }

    /// Drains the write-behind queue (the `SNAPSHOT` verb): blocks
    /// until every previously queued artefact hit disk (or failed and
    /// was counted), bounded by `FLUSH_ACK_WAIT`. Returns the total
    /// artefacts persisted since open — the running count when the
    /// store is closed or the worker stays silent past the bound.
    pub fn flush(&self) -> u64 {
        let (ack_tx, ack_rx) = mpsc::channel();
        let sent = {
            let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
            match tx.as_ref() {
                Some(tx) => tx.send(Job::Flush(ack_tx)).is_ok(),
                None => false,
            }
        };
        if !sent {
            return self.persisted_total.load(Ordering::Relaxed);
        }
        wait_ack(&ack_rx, FLUSH_ACK_WAIT, || self.persisted_total.load(Ordering::Relaxed))
    }

    /// Re-runs the recovery sweep (the `RESTORE` verb): re-validates
    /// every artefact on disk, quarantining what no longer decodes.
    pub fn sweep(&self) -> io::Result<SweepReport> {
        sweep_dir(&self.dir, &self.metrics)
    }
}

/// Upper bound on the `flush` ack wait. `SNAPSHOT` runs on an
/// event-loop thread: a wedged worker (a disk write that never
/// completes) may stall that loop for a bounded time, never forever.
const FLUSH_ACK_WAIT: Duration = Duration::from_secs(10);

/// Bounded ack wait: the acked total, or `fallback()` when the worker
/// goes away *or stays alive but silent past `wait`*. A plain `recv()`
/// here hangs the calling event-loop thread — and every connection it
/// owns — for as long as the writer is wedged.
fn wait_ack(rx: &mpsc::Receiver<u64>, wait: Duration, fallback: impl Fn() -> u64) -> u64 {
    match rx.recv_timeout(wait) {
        Ok(total) => total,
        Err(_) => fallback(),
    }
}

impl Drop for SignatureStore {
    fn drop(&mut self) {
        // Closing the channel is the worker's shutdown signal; join so
        // queued writes land before the process believes the store is
        // closed.
        *self.tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let worker = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = worker {
            let _ = handle.join();
        }
    }
}

/// The write-behind worker: single thread, owns all store writes.
fn spawn_writer(
    dir: PathBuf,
    metrics: Arc<Metrics>,
    faults: Vec<FaultPlan>,
    persisted_total: Arc<AtomicU64>,
    rx: mpsc::Receiver<Job>,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name("skydiver-store".into()).spawn(move || {
        let mut writes = 0u64;
        let mut persisted = 0u64;
        // lint: allow(R2) -- the channel closing (store drop / server
        // shutdown) is this loop's cancellation signal; each iteration
        // is one bounded artefact write, and the worker thread owns all
        // store I/O so nothing upstream ever blocks on it
        while let Ok(job) = rx.recv() {
            match job {
                Job::Persist { key, fp } => {
                    let final_path = dir.join(key.file_name());
                    if final_path.exists() {
                        // Already durable (warm-loaded or re-enqueued);
                        // sweep guarantees existing artefacts are valid.
                        continue;
                    }
                    writes += 1;
                    let fault =
                        faults.iter().find(|p| p.at_write == writes).map(|p| p.fault);
                    match write_artifact(&dir, &final_path, &key, &fp, fault) {
                        Ok(()) => {
                            persisted += 1;
                            persisted_total.store(persisted, Ordering::Relaxed);
                        }
                        Err(e) => {
                            metrics.bump(&metrics.store_write_failures);
                            eprintln!(
                                "skydiver-store: failed to persist {}: {e}",
                                final_path.display()
                            );
                        }
                    }
                }
                Job::Flush(ack) => {
                    let _ = ack.send(persisted);
                }
            }
        }
    })
}

/// Writes one artefact with the atomic protocol: encode → temp file →
/// fsync → rename → directory fsync. `fault` injects one deterministic
/// failure mode; the temp file is cleaned up on any error path.
fn write_artifact(
    dir: &Path,
    final_path: &Path,
    key: &StoreKey,
    fp: &ShardFingerprint,
    fault: Option<DiskFault>,
) -> io::Result<()> {
    let bytes = persist::encode_shard_signatures(fp, &key.tags());
    let tmp = dir.join(format!("{}.tmp", key.file_name()));
    let result = write_atomic(dir, &tmp, final_path, &bytes, fault);
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn write_atomic(
    dir: &Path,
    tmp: &Path,
    final_path: &Path,
    bytes: &[u8],
    fault: Option<DiskFault>,
) -> io::Result<()> {
    let payload: &[u8] = match fault {
        Some(DiskFault::TornWrite { keep }) => &bytes[..keep.min(bytes.len())],
        _ => bytes,
    };
    let mut f = File::create(tmp)?;
    if matches!(fault, Some(DiskFault::Enospc)) {
        f.write_all(&payload[..payload.len() / 2])?;
        return Err(io::Error::other("injected ENOSPC: no space left on device"));
    }
    f.write_all(payload)?;
    f.sync_all()?;
    drop(f);
    if matches!(fault, Some(DiskFault::RenameFail)) {
        return Err(io::Error::other("injected rename failure"));
    }
    fs::rename(tmp, final_path)?;
    // Make the rename itself durable; best-effort — some filesystems
    // refuse to fsync a directory handle.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    // At-rest corruption modes strike after the protocol succeeded.
    match fault {
        Some(DiskFault::BitFlip { byte }) => {
            let mut data = fs::read(final_path)?;
            if !data.is_empty() {
                let at = byte % data.len();
                data[at] ^= 0x01;
                fs::write(final_path, &data)?;
            }
        }
        Some(DiskFault::ShortRead { keep }) => {
            OpenOptions::new().write(true).open(final_path)?.set_len(keep as u64)?;
        }
        _ => {}
    }
    Ok(())
}

/// Validates every artefact under `dir`: quarantines what fails to
/// decode or whose file name disagrees with its header tags, deletes
/// orphan temp files, leaves everything else untouched.
fn sweep_dir(dir: &Path, metrics: &Metrics) -> io::Result<SweepReport> {
    let mut report = SweepReport::default();
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        // lint: allow(R2) -- bounded by the artefact count on disk;
        // runs at open/RESTORE time, never on the query path
        if !path.is_file() {
            continue;
        }
        match path.extension().and_then(|e| e.to_str()) {
            Some("sig2") => match persist::read_shard_signatures(&path) {
                Ok((fp, tags)) => {
                    let expected = StoreKey {
                        dataset_hash: tags[0],
                        shard: tags[1] as usize,
                        prefs_hash: tags[2],
                        t: fp.t(),
                        seed: tags[3],
                    }
                    .file_name();
                    if path.file_name().and_then(|n| n.to_str()) == Some(expected.as_str()) {
                        report.valid += 1;
                    } else {
                        quarantine_file(dir, &path, "file name does not match its header tags", metrics);
                        report.quarantined += 1;
                    }
                }
                Err(e) => {
                    quarantine_file(dir, &path, &e.to_string(), metrics);
                    report.quarantined += 1;
                }
            },
            Some("tmp") => {
                // lint: allow(R8) -- sweep runs under the operator-issued RESTORE verb; reaping leftover tmp files is its contract
                let _ = fs::remove_file(&path);
                report.removed_temps += 1;
            }
            _ => {}
        }
    }
    Ok(report)
}

/// Moves a bad artefact into `quarantine/` (falling back to deletion if
/// even the rename fails) with a logged reason. Quarantined files are
/// kept for post-mortem, never read again by the store.
fn quarantine_file(dir: &Path, path: &Path, reason: &str, metrics: &Metrics) {
    metrics.bump(&metrics.store_quarantined);
    eprintln!("skydiver-store: quarantining {} ({reason})", path.display());
    let dest = match path.file_name() {
        Some(name) => dir.join(QUARANTINE).join(name),
        None => {
            // lint: allow(R8) -- corruption path only: a keyless artefact cannot be renamed, so delete it
            let _ = fs::remove_file(path);
            return;
        }
    };
    // lint: allow(R8) -- corruption path only: the bad artefact must leave the store namespace before any re-read
    if fs::rename(path, &dest).is_err() {
        // lint: allow(R8) -- fallback delete when the corruption-path rename itself fails
        let _ = fs::remove_file(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_core::SignatureAccumulator;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skydiver-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn sample_fp(tweak: u64) -> Arc<ShardFingerprint> {
        let mut acc = SignatureAccumulator::new(4, 2);
        acc.matrix.set_column(0, &[tweak, 1, 9, 2]);
        acc.matrix.set_column(1, &[7, tweak, 0, 3]);
        acc.scores = vec![3, 1];
        acc.rows_consumed = 17;
        Arc::new(ShardFingerprint { columns: vec![0, 4], acc })
    }

    fn key(shard: usize) -> StoreKey {
        StoreKey { dataset_hash: 0xabc, shard, prefs_hash: 0xdef, t: 4, seed: 7 }
    }

    #[test]
    fn write_behind_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let metrics = Arc::new(Metrics::new());
        let (store, report) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        assert_eq!(report, SweepReport::default());
        let fp = sample_fp(5);
        store.enqueue_persist(key(0), Arc::clone(&fp));
        assert_eq!(store.flush(), 1);
        let back = store.load(&key(0)).expect("artefact must load");
        assert_eq!(back.columns, fp.columns);
        assert_eq!(back.acc, fp.acc);
        // A different key coordinate is a plain miss.
        assert!(store.load(&key(1)).is_none());
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(metrics.store_hits.load(Relaxed), 1);
        assert_eq!(metrics.store_quarantined.load(Relaxed), 0);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_ack_wait_is_bounded_when_worker_stays_silent() {
        // Regression: `flush` used a plain `recv()`, so a wedged-but-
        // alive worker (sender held, ack never sent) hung the calling
        // event-loop thread forever. The bounded wait must fall back.
        let (ack_tx, ack_rx) = mpsc::channel::<u64>();
        let start = std::time::Instant::now();
        let total = wait_ack(&ack_rx, Duration::from_millis(50), || 42);
        assert_eq!(total, 42, "silent worker falls back to the running count");
        assert!(start.elapsed() < Duration::from_secs(5), "wait must be bounded");
        drop(ack_tx);
    }

    #[test]
    fn flush_ack_wait_returns_the_acked_total() {
        let (ack_tx, ack_rx) = mpsc::channel::<u64>();
        ack_tx.send(7).unwrap();
        assert_eq!(wait_ack(&ack_rx, Duration::from_secs(5), || 0), 7);
    }

    #[test]
    fn reopen_survives_and_revalidates() {
        let dir = tmp_dir("reopen");
        let metrics = Arc::new(Metrics::new());
        {
            let (store, _) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
            store.enqueue_persist(key(0), sample_fp(5));
            // Drop without an explicit flush: Drop joins the worker, so
            // the queued write still lands.
        }
        let (store, report) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        assert_eq!(report.valid, 1, "{report:?}");
        assert!(store.load(&key(0)).is_some());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_quarantined_not_served() {
        let dir = tmp_dir("corrupt");
        let metrics = Arc::new(Metrics::new());
        let (store, _) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        store.enqueue_persist(key(0), sample_fp(5));
        store.flush();
        // Flip one byte at rest.
        let path = dir.join(key(0).file_name());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key(0)).is_none(), "corrupt artefact must not load");
        assert!(!path.exists(), "corrupt artefact must leave the store dir");
        assert!(dir.join(QUARANTINE).join(key(0).file_name()).exists());
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(metrics.store_quarantined.load(Relaxed), 1);
        assert_eq!(metrics.store_hits.load(Relaxed), 0);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn renamed_artifact_fails_key_binding() {
        let dir = tmp_dir("renamed");
        let metrics = Arc::new(Metrics::new());
        let (store, _) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        store.enqueue_persist(key(0), sample_fp(5));
        store.flush();
        // Masquerade the shard-0 artefact as shard 1.
        fs::rename(dir.join(key(0).file_name()), dir.join(key(1).file_name())).unwrap();
        assert!(store.load(&key(1)).is_none(), "mis-keyed artefact must not serve");
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(metrics.store_quarantined.load(Relaxed), 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_quarantines_garbage_and_removes_temps() {
        let dir = tmp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("sig-junk.sig2"), b"not a bundle at all").unwrap();
        fs::write(dir.join("orphan.sig2.tmp"), b"half a write").unwrap();
        fs::write(dir.join("README.txt"), b"unrelated, untouched").unwrap();
        let metrics = Arc::new(Metrics::new());
        let (store, report) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        assert_eq!(
            report,
            SweepReport { valid: 0, quarantined: 1, removed_temps: 1 },
            "{report:?}"
        );
        assert!(dir.join("README.txt").exists(), "foreign files stay");
        assert!(!dir.join("orphan.sig2.tmp").exists());
        assert!(dir.join(QUARANTINE).join("sig-junk.sig2").exists());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn existing_artifact_is_not_rewritten() {
        let dir = tmp_dir("dedupe");
        let metrics = Arc::new(Metrics::new());
        let (store, _) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        store.enqueue_persist(key(0), sample_fp(5));
        assert_eq!(store.flush(), 1);
        store.enqueue_persist(key(0), sample_fp(5));
        assert_eq!(store.flush(), 1, "second enqueue of a durable key is a no-op");
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_survives_a_poisoned_sender_lock() {
        let dir = tmp_dir("poison");
        let metrics = Arc::new(Metrics::new());
        let (store, _) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        let store = Arc::new(store);
        let s2 = Arc::clone(&store);
        // Panic while holding the sender lock to poison it.
        let _ = std::thread::spawn(move || {
            let _guard = s2.tx.lock().unwrap();
            panic!("poison the store sender lock");
        })
        .join();
        store.enqueue_persist(key(0), sample_fp(5));
        assert_eq!(store.flush(), 1, "store must keep persisting after poison");
        assert!(store.load(&key(0)).is_some());
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }
}
